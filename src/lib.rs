//! Wi-Vi — see through walls with Wi-Fi.
//!
//! A from-scratch Rust reproduction of *"See Through Walls with WiFi!"*
//! (Adib & Katabi, ACM SIGCOMM 2013): MIMO interference nulling to remove
//! the wall's "flash", inverse-SAR tracking of moving humans with the
//! smoothed MUSIC algorithm, spatial-variance human counting, and a
//! through-wall gesture communication channel — all running against a
//! simulated 2.4 GHz MIMO software radio (the hardware substitution is
//! documented in `DESIGN.md`).
//!
//! This umbrella crate re-exports the whole stack:
//!
//! * [`num`] — complex arithmetic, FFT plans, Hermitian eigendecomposition,
//!   the deterministic RNG.
//! * [`rf`] — the through-wall propagation simulator and motion models.
//! * [`sdr`] — the OFDM MIMO front-end (USRP N210 stand-in) with its
//!   batched observation stream.
//! * [`core`] — nulling, ISAR, MUSIC, the streaming stages, counting,
//!   gestures, the device.
//! * [`track`] — multi-target tracking over the spectrogram: ridge
//!   detection, optimal data association, per-track Kalman filters, and
//!   the entry/exit/crossing/count event stream
//!   ([`TrackTargets`](track::TrackTargets) extends the device).
//! * [`image`] — through-wall 2-D imaging: near-field holographic
//!   backprojection of the nulled residual onto a room grid, CA-CFAR
//!   detection of per-window (x, y) fixes, and position tracking
//!   ([`ImageThroughWall`](image::ImageThroughWall) extends the
//!   device).
//! * [`serve`] — the sharded multi-session serving engine: many
//!   concurrent sessions hash-routed to worker shards, streamed in
//!   batches with backpressure, their tracker events merged into one
//!   timestamp-ordered stream — bitwise identical to running each
//!   session standalone. Sensing modes are pluggable
//!   ([`SensingMode`](serve::SensingMode) + a keyed engine registry),
//!   and fleet sessions share scenes copy-on-write through
//!   [`SceneStore`](rf::SceneStore).
//! * [`obs`] — zero-dependency observability: lock-light metrics
//!   (counters, gauges, log-linear histograms), span tracing into
//!   per-thread flight-recorder rings, kernel-level probes, and JSON /
//!   Prometheus exporters. Off by default; `WIVI_OBS=1` turns it on,
//!   and enabling it is bitwise invisible to every result (DESIGN.md
//!   §13).
//!
//! ```no_run
//! use wivi::prelude::*;
//!
//! let room = Scene::conference_room_small();
//! let scene = Scene::new(Material::HollowWall6In)
//!     .with_office_clutter(room)
//!     .with_mover(Mover::human(ConfinedRandomWalk::new(room, 7, 1.0, 30.0)));
//! let mut device = WiViDevice::new(scene, WiViConfig::paper_default(), 42);
//! device.calibrate();
//! let spectrogram = device.track(7.0);
//! println!("{}", spectrogram.render_ascii(19, 72));
//! ```
//!
//! The device also runs in its real-time shape — observations stream in
//! fixed-size batches and spectrogram columns appear as analysis windows
//! complete, bitwise identical to the offline pass:
//!
//! ```no_run
//! # use wivi::prelude::*;
//! # let scene = Scene::new(Material::HollowWall6In);
//! # let mut device = WiViDevice::new(scene, WiViConfig::paper_default(), 42);
//! # device.calibrate();
//! let spectrogram = device.track_streaming(7.0, 16);
//! ```

pub use wivi_core as core;
pub use wivi_image as image;
pub use wivi_num as num;
pub use wivi_obs as obs;
pub use wivi_rf as rf;
pub use wivi_sdr as sdr;
pub use wivi_serve as serve;
pub use wivi_track as track;

/// The most common imports for working with Wi-Vi.
pub mod prelude {
    pub use wivi_core::counting::{mean_spatial_variance, StreamingVariance, VarianceClassifier};
    pub use wivi_core::{
        AngleSpectrogram, Stage, StreamingBeamform, StreamingMusic, WiViConfig, WiViDevice,
    };
    pub use wivi_image::{ImageConfig, ImageThroughWall, ImagingReport};
    pub use wivi_rf::{
        ConfinedRandomWalk, GestureScript, GestureStyle, Material, Mover, Point, Rect, Scene,
        SceneHandle, SceneStore, Vec2, WaypointWalker,
    };
    pub use wivi_serve::{
        modes, ModeOutput, ModeRef, ModeRegistry, SensingMode, ServeConfig, ServeEngine,
        ServeReport, SessionSpec,
    };
    pub use wivi_track::{
        MultiTargetTracker, TrackEvent, TrackTargets, TrackerConfig, TrackingReport,
    };
}
