//! Copy-on-write scene sharing: [`SceneHandle`] and [`SceneStore`].
//!
//! A fleet-style deployment opens many sensing sessions observing the
//! *same* room. Scenes are pure values — every mutating operation the
//! simulator performs during a recording is `&self` (trajectories are
//! deterministic functions of time) — so sessions have no reason to each
//! own a private copy of the room: a [`SceneHandle`] is an
//! `Arc`-shared immutable [`Scene`], cheap to clone into every session
//! spec, and the [`SceneStore`] is the registry fleet code inserts rooms
//! into once and hands handles out of thereafter.
//!
//! Mutation still works — [`SceneHandle::make_mut`] is copy-on-write:
//! while the scene is shared it clones a private copy first (the other
//! holders keep observing the original), and once unique it mutates in
//! place with no copy at all. This is exactly `Arc::make_mut`, surfaced
//! so the radio front-end's `scene_mut()` keeps its historical
//! "mutate my scene" semantics whether or not the scene came from a
//! store.

use std::ops::Deref;
use std::sync::Arc;

use crate::scene::Scene;

/// A shared, immutable view of a [`Scene`]. Cloning is an `Arc` bump —
/// the whole point: N sessions observing one room hold N handles to one
/// scene, not N scenes.
#[derive(Clone)]
pub struct SceneHandle(Arc<Scene>);

impl SceneHandle {
    /// Wraps an owned scene into a (so far unshared) handle.
    pub fn new(scene: Scene) -> Self {
        Self(Arc::new(scene))
    }

    /// The shared scene.
    pub fn scene(&self) -> &Scene {
        &self.0
    }

    /// Mutable access, copy-on-write: clones the scene first iff other
    /// handles still share it, so mutation never alters what the other
    /// holders observe.
    pub fn make_mut(&mut self) -> &mut Scene {
        Arc::make_mut(&mut self.0)
    }

    /// `true` if `a` and `b` are views of the *same* allocation (not
    /// merely equal-looking scenes).
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Number of handles currently sharing this scene (including this
    /// one) — the store's sharing degree for telemetry.
    pub fn shared_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl From<Scene> for SceneHandle {
    fn from(scene: Scene) -> Self {
        Self::new(scene)
    }
}

impl Deref for SceneHandle {
    type Target = Scene;

    fn deref(&self) -> &Scene {
        &self.0
    }
}

impl std::fmt::Debug for SceneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SceneHandle")
            .field("clutter", &self.clutter.len())
            .field("movers", &self.movers.len())
            .field("shared_count", &self.shared_count())
            .finish()
    }
}

/// A named registry of shared scenes — the fleet-serving pattern: insert
/// each observed room once, clone handles out per session. Linear scan
/// over names: deployments watch a handful of rooms, not thousands.
#[derive(Default)]
pub struct SceneStore {
    entries: Vec<(String, SceneHandle)>,
}

impl SceneStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `scene` under `name`, returning its handle.
    ///
    /// # Panics
    /// Panics if `name` is already present — a store maps each room name
    /// to one scene for its lifetime, so sessions can never silently
    /// observe different rooms under one name.
    pub fn insert(&mut self, name: impl Into<String>, scene: Scene) -> SceneHandle {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "scene '{name}' already in the store"
        );
        let handle = SceneHandle::new(scene);
        self.entries.push((name, handle.clone()));
        handle
    }

    /// The handle registered under `name`, if any (an `Arc` bump, never
    /// a scene copy).
    pub fn get(&self, name: &str) -> Option<SceneHandle> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
    }

    /// The handle under `name`, inserting `build()` first if absent.
    pub fn get_or_insert_with(&mut self, name: &str, build: impl FnOnce() -> Scene) -> SceneHandle {
        match self.get(name) {
            Some(h) => h,
            None => self.insert(name, build()),
        }
    }

    /// Registered scene names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of registered scenes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::materials::Material;
    use crate::motion::{Mover, WaypointWalker};

    fn scene() -> Scene {
        Scene::new(Material::HollowWall6In)
            .with_office_clutter(Scene::conference_room_small())
            .with_mover(Mover::human(WaypointWalker::new(
                vec![Point::new(-2.0, 2.5), Point::new(2.0, 2.5)],
                1.0,
            )))
    }

    #[test]
    fn handles_share_one_scene() {
        let mut store = SceneStore::new();
        let a = store.insert("room", scene());
        let b = store.get("room").expect("registered");
        assert!(SceneHandle::ptr_eq(&a, &b));
        // Store + two handles.
        assert_eq!(a.shared_count(), 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.names().collect::<Vec<_>>(), vec!["room"]);
    }

    #[test]
    fn make_mut_copies_only_while_shared() {
        let mut store = SceneStore::new();
        let mut a = store.insert("room", scene());
        let n_movers = a.movers.len();

        // Shared: mutation clones; the stored original is untouched.
        a.make_mut().movers.push(Mover::human(WaypointWalker::new(
            vec![Point::new(0.0, 1.0), Point::new(0.0, 3.0)],
            0.5,
        )));
        assert_eq!(a.movers.len(), n_movers + 1);
        let original = store.get("room").unwrap();
        assert_eq!(original.movers.len(), n_movers);
        assert!(!SceneHandle::ptr_eq(&a, &original));

        // Unique: mutation is in place (same allocation before/after).
        let mut lone = SceneHandle::new(scene());
        let before = Arc::as_ptr(&lone.0);
        lone.make_mut().clutter.clear();
        assert_eq!(before, Arc::as_ptr(&lone.0));
    }

    #[test]
    fn cloned_scene_is_deterministically_identical() {
        let a = scene();
        let b = a.clone();
        assert_eq!(a.clutter.len(), b.clutter.len());
        for t in [0.0, 0.7, 2.3] {
            for (ma, mb) in a.movers.iter().zip(&b.movers) {
                assert_eq!(ma.position(t), mb.position(t));
            }
        }
    }

    #[test]
    fn get_or_insert_builds_once() {
        let mut store = SceneStore::new();
        let a = store.get_or_insert_with("room", scene);
        let b = store.get_or_insert_with("room", || panic!("must not rebuild"));
        assert!(SceneHandle::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already in the store")]
    fn duplicate_names_are_rejected() {
        let mut store = SceneStore::new();
        store.insert("room", scene());
        store.insert("room", scene());
    }
}
