//! Directional antenna model.
//!
//! The paper's prototype uses LP0965 log-periodic directional antennas
//! (6 dBi gain), oriented toward the wall "to focus the energy toward the
//! wall or room of interest" and, crucially, *away* from the direct
//! TX→RX path (§3.1, §4.1). We model the pattern as a raised-cosine-power
//! main lobe with a constant back/side-lobe floor:
//!
//! ```text
//! G(θ) = G₀ · max(cos θ, 0)^(2p)   clamped below by  G₀·floor
//! ```
//!
//! with `θ` the angle off boresight. `p = 1` and a −20 dB floor give a
//! half-power beamwidth of ≈ 66°, close to an LP0965's E-plane beamwidth.

use crate::geometry::Vec2;

/// A directional antenna: position-independent gain pattern + boresight.
#[derive(Clone, Copy, Debug)]
pub struct Antenna {
    /// Boresight direction (unit vector).
    boresight: Vec2,
    /// Peak *power* gain (linear). 6 dBi ⇒ ≈ 3.98.
    peak_gain: f64,
    /// Cosine exponent of the amplitude pattern (power pattern uses `2p`).
    exponent: f64,
    /// Back/side-lobe floor as a fraction of peak power gain.
    floor: f64,
}

impl Antenna {
    /// The LP0965-like directional antenna used throughout the paper:
    /// 6 dBi peak gain, cos² power pattern, −20 dB back lobe.
    pub fn directional_6dbi(boresight: Vec2) -> Self {
        Self::new(boresight, 10.0_f64.powf(6.0 / 10.0), 1.0, 0.01)
    }

    /// An isotropic antenna (0 dBi, uniform) — the "typical MIMO system"
    /// contrast case of §4.1.
    pub fn isotropic() -> Self {
        Self::new(Vec2::UNIT_Y, 1.0, 0.0, 1.0)
    }

    /// Creates an antenna with an explicit pattern.
    ///
    /// # Panics
    /// Panics if `peak_gain <= 0`, `floor` outside `(0, 1]`, or the
    /// boresight is the zero vector.
    pub fn new(boresight: Vec2, peak_gain: f64, exponent: f64, floor: f64) -> Self {
        assert!(peak_gain > 0.0, "peak gain must be positive");
        assert!(floor > 0.0 && floor <= 1.0, "floor must be in (0, 1]");
        Self {
            boresight: boresight.normalized(),
            peak_gain,
            exponent,
            floor,
        }
    }

    /// Boresight direction.
    pub fn boresight(&self) -> Vec2 {
        self.boresight
    }

    /// Peak power gain (linear).
    pub fn peak_gain(&self) -> f64 {
        self.peak_gain
    }

    /// Power gain toward `dir` (need not be normalized).
    pub fn power_gain(&self, dir: Vec2) -> f64 {
        let cos = self.boresight.dot(dir) / dir.norm();
        let main = if cos > 0.0 {
            cos.powf(2.0 * self.exponent)
        } else {
            0.0
        };
        self.peak_gain * main.max(self.floor)
    }

    /// Amplitude gain toward `dir` (`√` of the power gain) — what channel
    /// coefficients multiply by.
    pub fn amplitude_gain(&self, dir: Vec2) -> f64 {
        self.power_gain(dir).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_gain_is_peak() {
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        let g = a.power_gain(Vec2::UNIT_Y);
        assert!((g - 3.981).abs() < 0.01, "boresight gain {g}");
    }

    #[test]
    fn pattern_is_symmetric_and_monotone_off_axis() {
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        let mut prev = a.power_gain(Vec2::UNIT_Y);
        for deg in [15.0f64, 30.0, 45.0, 60.0, 75.0] {
            let th = deg.to_radians();
            let g_pos = a.power_gain(Vec2::UNIT_Y.rotated(th));
            let g_neg = a.power_gain(Vec2::UNIT_Y.rotated(-th));
            assert!((g_pos - g_neg).abs() < 1e-12, "asymmetric at {deg}°");
            assert!(g_pos <= prev, "gain must fall off axis at {deg}°");
            prev = g_pos;
        }
    }

    #[test]
    fn back_lobe_is_floor() {
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        let back = a.power_gain(-Vec2::UNIT_Y);
        let peak = a.power_gain(Vec2::UNIT_Y);
        let rejection_db = 10.0 * (peak / back).log10();
        assert!(
            (rejection_db - 20.0).abs() < 0.5,
            "rejection {rejection_db} dB"
        );
    }

    #[test]
    fn sideways_direction_suppressed() {
        // The direct TX→RX path is lateral (90° off boresight): the paper
        // relies on it being "significantly attenuated" (§4.1).
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        assert!(a.power_gain(Vec2::UNIT_X) <= a.peak_gain() * 0.011);
    }

    #[test]
    fn isotropic_is_uniform() {
        let a = Antenna::isotropic();
        for deg in 0..36 {
            let d = Vec2::from_angle(deg as f64 * 10.0_f64.to_radians());
            assert!((a.power_gain(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_independent_of_direction_magnitude() {
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        let d = Vec2::new(0.3, 0.8);
        assert!((a.power_gain(d) - a.power_gain(d * 7.5)).abs() < 1e-12);
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let a = Antenna::directional_6dbi(Vec2::UNIT_Y);
        let d = Vec2::new(0.2, 1.0);
        assert!((a.amplitude_gain(d).powi(2) - a.power_gain(d)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "peak gain")]
    fn rejects_nonpositive_gain() {
        let _ = Antenna::new(Vec2::UNIT_Y, 0.0, 1.0, 0.01);
    }
}
