//! Multipath channel computation.
//!
//! For each transmit antenna the channel to the receive antenna is a
//! linear superposition of ray paths (Ch. 4: "wireless signals (including
//! reflections) combine linearly over the medium"):
//!
//! 1. **Direct** TX→RX leakage — strongly attenuated by the directional
//!    antennas but still far above through-wall reflections.
//! 2. **Flash** — the specular reflection off the wall surface, the
//!    dominant term for any real material.
//! 3. **Static clutter** — furniture and fixtures on both sides of the
//!    wall (bistatic scattering, wall attenuation per crossing).
//! 4. **Movers** — the body scatterers of each human at the evaluation
//!    time, the only *time-varying* contribution.
//!
//! Geometry is frequency-independent, so paths are traced once per
//! (TX antenna, time) as `(amplitude, length)` pairs ([`Path`]) and then
//! evaluated at each OFDM subcarrier frequency by phase rotation
//! ([`gain_from_paths`]); the per-subcarrier loop in `wivi-sdr` reuses the
//! traced set.

use wivi_num::Complex64;

use crate::geometry::Point;
use crate::scene::{Scatterer, Scene};
use crate::SPEED_OF_LIGHT;

/// Which physical mechanism produced a path (for diagnostics and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathKind {
    /// Direct TX→RX leakage.
    Direct,
    /// Specular wall reflection (the flash).
    Flash,
    /// Static clutter scatterer `i`.
    Clutter(usize),
    /// Scatterer `part` of mover `mover`.
    Mover { mover: usize, part: usize },
}

/// A traced ray path: real amplitude (all gains, spreading and wall
/// attenuation applied) plus geometric length. The complex gain at
/// frequency `f` is `amplitude · e^{−j2πf·length/c}`.
#[derive(Clone, Copy, Debug)]
pub struct Path {
    pub amplitude: f64,
    pub length_m: f64,
    pub kind: PathKind,
}

/// A path evaluated at a specific frequency.
#[derive(Clone, Copy, Debug)]
pub struct PathContribution {
    pub gain: Complex64,
    pub kind: PathKind,
}

impl Path {
    /// Complex gain of this path at `freq_hz`.
    pub fn gain(&self, freq_hz: f64) -> Complex64 {
        let phase = -std::f64::consts::TAU * freq_hz * self.length_m / SPEED_OF_LIGHT;
        Complex64::from_polar(self.amplitude, phase)
    }
}

/// Sums a traced path set at one frequency.
pub fn gain_from_paths(paths: &[Path], freq_hz: f64) -> Complex64 {
    paths.iter().map(|p| p.gain(freq_hz)).sum()
}

/// Number of wall crossings of the straight segment `a → b` (0 or 1: the
/// wall is the full line `y = 0`).
fn wall_crossings(a: Point, b: Point) -> u32 {
    u32::from(a.y.signum() != b.y.signum() && a.y != 0.0 && b.y != 0.0)
}

impl Scene {
    /// Traces every path from TX antenna `tx_idx` to the RX antenna at
    /// scene time `t` (static paths plus the movers' body scatterers at
    /// their time-`t` positions).
    ///
    /// # Panics
    /// Panics if `tx_idx >= 2`.
    pub fn trace_paths(&self, tx_idx: usize, t: f64) -> Vec<Path> {
        let mut out = Vec::with_capacity(2 + self.clutter.len());
        self.trace_paths_into(tx_idx, t, &mut out);
        out
    }

    /// Traces every path into a caller-provided buffer (cleared first).
    /// The streaming front-end calls this at the channel rate; reusing one
    /// buffer keeps the per-sample radio path allocation-free.
    ///
    /// # Panics
    /// Panics if `tx_idx >= 2`.
    pub fn trace_paths_into(&self, tx_idx: usize, t: f64, out: &mut Vec<Path>) {
        out.clear();
        self.append_static_paths(tx_idx, out);
        self.append_mover_paths(tx_idx, t, out);
    }

    /// Only the static paths (direct + flash + clutter). These are what
    /// MIMO nulling cancels; tests use this to verify the residual.
    pub fn trace_static_paths(&self, tx_idx: usize) -> Vec<Path> {
        let mut out = Vec::with_capacity(2 + self.clutter.len());
        self.append_static_paths(tx_idx, &mut out);
        out
    }

    fn append_static_paths(&self, tx_idx: usize, out: &mut Vec<Path>) {
        assert!(tx_idx < 2, "Wi-Vi has exactly two transmit antennas");
        let tx = self.device.tx[tx_idx];
        let rx = self.device.rx;
        let lambda = crate::carrier_wavelength();

        // 1. Direct leakage.
        {
            let d = tx.distance(rx).max(lambda);
            let g_tx = self.device.tx_antenna.amplitude_gain(rx - tx);
            let g_rx = self.device.rx_antenna.amplitude_gain(tx - rx);
            out.push(Path {
                amplitude: g_tx * g_rx * lambda / (4.0 * std::f64::consts::PI * d),
                length_m: d,
                kind: PathKind::Direct,
            });
        }

        // 2. Specular flash off the wall: image of RX across y = 0.
        let gamma = self.wall.material.reflection_amplitude();
        if gamma > 0.0 {
            let rx_img = rx.mirror_y();
            let tx_img = tx.mirror_y();
            let d = tx.distance(rx_img).max(lambda);
            // Departure: toward the image of RX. Arrival: from the
            // reflection point, i.e. along (rx − tx_img).
            let g_tx = self.device.tx_antenna.amplitude_gain(rx_img - tx);
            let g_rx = self.device.rx_antenna.amplitude_gain(tx_img - rx);
            out.push(Path {
                amplitude: gamma * g_tx * g_rx * lambda / (4.0 * std::f64::consts::PI * d),
                length_m: d,
                kind: PathKind::Flash,
            });
        }

        // 3. Static clutter.
        for (i, s) in self.clutter.iter().enumerate() {
            out.push(self.scatter_path(tx, rx, s, PathKind::Clutter(i)));
        }
    }

    /// Only the movers' paths at time `t`.
    pub fn trace_mover_paths(&self, tx_idx: usize, t: f64) -> Vec<Path> {
        let mut out = Vec::new();
        self.append_mover_paths(tx_idx, t, &mut out);
        out
    }

    fn append_mover_paths(&self, tx_idx: usize, t: f64, out: &mut Vec<Path>) {
        assert!(tx_idx < 2, "Wi-Vi has exactly two transmit antennas");
        let tx = self.device.tx[tx_idx];
        let rx = self.device.rx;
        for (mi, mover) in self.movers.iter().enumerate() {
            let mut pi = 0;
            mover.for_each_scatterer(t, |s| {
                out.push(self.scatter_path(
                    tx,
                    rx,
                    s,
                    PathKind::Mover {
                        mover: mi,
                        part: pi,
                    },
                ));
                pi += 1;
            });
        }
    }

    /// Bistatic scattering path TX → scatterer → RX with wall attenuation
    /// applied once per crossing of each leg.
    fn scatter_path(&self, tx: Point, rx: Point, s: &Scatterer, kind: PathKind) -> Path {
        let lambda = crate::carrier_wavelength();
        let d1 = tx.distance(s.position).max(lambda);
        let d2 = s.position.distance(rx).max(lambda);
        let crossings = wall_crossings(tx, s.position) + wall_crossings(s.position, rx);
        let wall_amp = self
            .wall
            .material
            .transmission_amplitude()
            .powi(crossings as i32);
        let g_tx = self.device.tx_antenna.amplitude_gain(s.position - tx);
        let g_rx = self.device.rx_antenna.amplitude_gain(s.position - rx);
        // Bistatic radar amplitude: λ·√σ / ((4π)^{3/2}·d₁·d₂).
        let four_pi = 4.0 * std::f64::consts::PI;
        let amplitude =
            g_tx * g_rx * wall_amp * lambda * s.sqrt_rcs / (four_pi.powf(1.5) * d1 * d2);
        Path {
            amplitude,
            length_m: d1 + d2,
            kind,
        }
    }

    /// Complex channel gain from TX antenna `tx_idx` at `freq_hz`, time `t`
    /// — the convenience entry point (traces paths internally).
    pub fn channel_gain(&self, tx_idx: usize, freq_hz: f64, t: f64) -> Complex64 {
        gain_from_paths(&self.trace_paths(tx_idx, t), freq_hz)
    }

    /// Per-path breakdown at one frequency, for diagnostics.
    pub fn path_contributions(&self, tx_idx: usize, freq_hz: f64, t: f64) -> Vec<PathContribution> {
        self.trace_paths(tx_idx, t)
            .iter()
            .map(|p| PathContribution {
                gain: p.gain(freq_hz),
                kind: p.kind,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Point, Vec2};
    use crate::materials::Material;
    use crate::motion::{Mover, Stationary, WaypointWalker};
    use crate::{Scene, CARRIER_HZ};

    fn human_at(p: Point) -> Mover {
        Mover::human(Stationary(p))
    }

    #[test]
    fn flash_dominates_behind_wall_reflections() {
        // Ch. 4: the flash is orders of magnitude above anything behind the
        // wall. Place a human 3 m behind a hollow wall and compare.
        let scene = Scene::new(Material::HollowWall6In).with_mover(human_at(Point::new(0.0, 3.0)));
        let paths = scene.trace_paths(0, 0.0);
        let flash = paths
            .iter()
            .find(|p| p.kind == PathKind::Flash)
            .unwrap()
            .amplitude;
        let human: f64 = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::Mover { .. }))
            .map(|p| p.amplitude)
            .fold(0.0, f64::max);
        let ratio_db = 20.0 * (flash / human).log10();
        assert!(
            (18.0..60.0).contains(&ratio_db),
            "flash/human ratio {ratio_db:.1} dB outside the paper's regime"
        );
    }

    #[test]
    fn direct_path_is_strong_but_attenuated_by_directionality() {
        let directional = Scene::new(Material::HollowWall6In);
        let isotropic = {
            let mut s = Scene::new(Material::HollowWall6In);
            s.device = crate::DeviceLayout::standard_isotropic(1.0);
            s
        };
        let d_amp = directional.trace_static_paths(0)[0].amplitude;
        let i_amp = isotropic.trace_static_paths(0)[0].amplitude;
        // §4.1: directional antennas attenuate the direct channel relative
        // to a typical MIMO system.
        assert!(
            d_amp < i_amp / 2.0,
            "directional {d_amp} vs isotropic {i_amp}"
        );
    }

    #[test]
    fn through_wall_round_trip_attenuation_applied() {
        // Same geometry, free space vs hollow wall: the mover's path must
        // differ by exactly the two-crossing attenuation (18 dB).
        let free = Scene::new(Material::FreeSpace).with_mover(human_at(Point::new(0.5, 3.0)));
        let wall = Scene::new(Material::HollowWall6In).with_mover(human_at(Point::new(0.5, 3.0)));
        let get = |s: &Scene| {
            s.trace_mover_paths(0, 0.0)
                .iter()
                .find(|p| matches!(p.kind, PathKind::Mover { part: 0, .. }))
                .unwrap()
                .amplitude
        };
        let ratio_db = 20.0 * (get(&free) / get(&wall)).log10();
        assert!(
            (ratio_db - 18.0).abs() < 1e-9,
            "round trip attenuation {ratio_db} dB != 18 dB"
        );
    }

    #[test]
    fn clutter_in_front_of_wall_suffers_no_wall_loss() {
        let mut scene = Scene::new(Material::ConcreteWall18In);
        scene.clutter.push(Scatterer {
            position: Point::new(0.5, -0.5),
            sqrt_rcs: 0.5,
        });
        let mut free = Scene::new(Material::FreeSpace);
        free.clutter.push(Scatterer {
            position: Point::new(0.5, -0.5),
            sqrt_rcs: 0.5,
        });
        let amp = |s: &Scene| {
            s.trace_static_paths(0)
                .iter()
                .find(|p| matches!(p.kind, PathKind::Clutter(_)))
                .unwrap()
                .amplitude
        };
        assert!((amp(&scene) - amp(&free)).abs() < 1e-15);
    }

    #[test]
    fn static_paths_are_time_invariant_and_mover_paths_are_not() {
        let scene = Scene::new(Material::HollowWall6In)
            .with_office_clutter(Scene::conference_room_small())
            .with_mover(Mover::human(WaypointWalker::new(
                vec![Point::new(-2.0, 3.0), Point::new(2.0, 3.0)],
                1.0,
            )));
        let f = CARRIER_HZ;
        let s0 = gain_from_paths(&scene.trace_static_paths(0), f);
        let s1 = gain_from_paths(&scene.trace_static_paths(0), f);
        assert_eq!(s0, s1);
        let m0 = gain_from_paths(&scene.trace_mover_paths(0, 0.0), f);
        let m1 = gain_from_paths(&scene.trace_mover_paths(0, 1.0), f);
        assert!((m0 - m1).abs() > 1e-9, "mover path did not change channel");
    }

    #[test]
    fn moving_scatterer_rotates_phase_at_spatial_rate() {
        // A body moving radially by Δd lengthens the round-trip by 2Δd and
        // must rotate the path phase by 2π·2Δd/λ — the ISAR foundation.
        let scene = Scene::new(Material::FreeSpace).with_mover(Mover::with_body(
            WaypointWalker::new(vec![Point::new(0.0, 3.0), Point::new(0.0, 2.0)], 1.0),
            crate::BodyConfig::rigid(0.7),
            0.0,
        ));
        let lambda = crate::carrier_wavelength();
        let dt = 0.01; // 1 cm of motion toward the device
        let p0 = scene.trace_mover_paths(0, 0.0)[0];
        let p1 = scene.trace_mover_paths(0, dt)[0];
        let dlen = p0.length_m - p1.length_m;
        // Round-trip shortening ≈ 2 cm (monostatic approximation: the TX
        // and RX are nearly co-located relative to a 3 m range).
        assert!((dlen - 0.02).abs() < 0.002, "Δlength {dlen}");
        let phase_turns =
            (p0.gain(CARRIER_HZ).arg() - p1.gain(CARRIER_HZ).arg()).abs() / std::f64::consts::TAU;
        assert!((phase_turns - dlen / lambda).abs() < 1e-6);
    }

    #[test]
    fn free_space_has_no_flash() {
        let scene = Scene::new(Material::FreeSpace);
        assert!(!scene
            .trace_static_paths(0)
            .iter()
            .any(|p| p.kind == PathKind::Flash));
    }

    #[test]
    fn gain_from_paths_matches_channel_gain() {
        let scene = Scene::new(Material::HollowWall6In)
            .with_office_clutter(Scene::conference_room_small())
            .with_mover(human_at(Point::new(1.0, 2.0)));
        let f = CARRIER_HZ + 1.25e6;
        let a = scene.channel_gain(1, f, 0.5);
        let b = gain_from_paths(&scene.trace_paths(1, 0.5), f);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn channels_from_the_two_tx_antennas_differ() {
        // MIMO nulling needs two distinguishable channels.
        let scene =
            Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small());
        let h1 = scene.channel_gain(0, CARRIER_HZ, 0.0);
        let h2 = scene.channel_gain(1, CARRIER_HZ, 0.0);
        assert!((h1 - h2).abs() > 1e-9);
    }

    #[test]
    fn subcarrier_channels_decorrelate_with_delay_spread() {
        // 5 MHz apart on a ~10 m path set should visibly rotate phases.
        let scene = Scene::new(Material::HollowWall6In).with_mover(human_at(Point::new(2.0, 4.0)));
        let h_lo = scene.channel_gain(0, CARRIER_HZ - 2.5e6, 0.0);
        let h_hi = scene.channel_gain(0, CARRIER_HZ + 2.5e6, 0.0);
        assert!((h_lo - h_hi).abs() > 1e-9);
    }

    #[test]
    #[should_panic(expected = "two transmit antennas")]
    fn rejects_bad_tx_index() {
        let scene = Scene::new(Material::FreeSpace);
        let _ = scene.trace_paths(2, 0.0);
    }

    #[test]
    fn antenna_boresight_favours_flash_over_direct_geometrically() {
        // The flash departs near boresight (toward the wall); the direct
        // path departs sideways. Gains must reflect that.
        let scene = Scene::new(Material::ConcreteWall8In);
        let paths = scene.trace_static_paths(0);
        let direct = paths.iter().find(|p| p.kind == PathKind::Direct).unwrap();
        let flash = paths.iter().find(|p| p.kind == PathKind::Flash).unwrap();
        // Despite the reflection loss, the flash should beat the direct
        // leakage here thanks to the directional antennas (§4.1).
        assert!(flash.amplitude > direct.amplitude);
        let _ = Vec2::UNIT_Y; // geometry convention documented above
    }
}
