//! Building materials and their RF behaviour at 2.4 GHz.
//!
//! One-way power attenuations follow Table 4.1 of the paper (sourced there
//! from the City of Cumberland report, ref.\[1\]). Two values the evaluation needs
//! are not in the table and are derived:
//!
//! * **8″ concrete** (the Fairchild-building wall of §7.2/§7.6): Table 4.1
//!   lists 18″ concrete at 18 dB. Attenuation grows super-linearly near the
//!   low end because of surface reflection, so we use 15 dB rather than a
//!   naive pro-rata 8 dB; this keeps the paper's material ordering
//!   (free space < glass < wood < hollow wall < 8″ concrete) and the
//!   observed "works, but with reduced SNR" behaviour of Fig. 7-6.
//! * **Tinted glass** uses the plain-glass 3 dB figure (the metal-oxide
//!   tint is what makes it visible at 2.4 GHz at all).
//!
//! The amplitude reflection coefficients drive the *flash* strength. They
//! are not given numerically in the paper (which only says the wall
//! reflection dominates everything behind it); values here are chosen so
//! the simulated flash sits 18–36 dB above the through-wall reflections,
//! the range quoted in Ch. 4.

/// A wall/obstruction material, as used in the paper's experiments (§7.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Material {
    /// No obstruction between device and subject (§7.6 control case).
    FreeSpace,
    /// Tinted glass pane.
    TintedGlass,
    /// 1.75″ solid wooden door.
    SolidWoodDoor,
    /// 6″ interior hollow wall, steel studs + sheet rock (the Stata walls).
    HollowWall6In,
    /// 8″ concrete wall (the Fairchild building wall).
    ConcreteWall8In,
    /// 18″ concrete wall (Table 4.1 row; beyond Wi-Vi's reach per §1.2).
    ConcreteWall18In,
    /// Reinforced concrete (Table 4.1 row; explicitly out of reach, §7.6).
    ReinforcedConcrete,
}

impl Material {
    /// All materials of the §7.6 building-material sweep, in the order of
    /// Fig. 7-6.
    pub const SURVEY: [Material; 5] = [
        Material::FreeSpace,
        Material::TintedGlass,
        Material::SolidWoodDoor,
        Material::HollowWall6In,
        Material::ConcreteWall8In,
    ];

    /// One-way RF power attenuation in dB at 2.4 GHz (Table 4.1).
    pub fn one_way_attenuation_db(self) -> f64 {
        match self {
            Material::FreeSpace => 0.0,
            Material::TintedGlass => 3.0,
            Material::SolidWoodDoor => 6.0,
            Material::HollowWall6In => 9.0,
            Material::ConcreteWall8In => 15.0,
            Material::ConcreteWall18In => 18.0,
            Material::ReinforcedConcrete => 40.0,
        }
    }

    /// Amplitude transmission coefficient for a single wall crossing:
    /// `10^(−A_dB / 20)`.
    pub fn transmission_amplitude(self) -> f64 {
        10.0_f64.powf(-self.one_way_attenuation_db() / 20.0)
    }

    /// Amplitude reflection coefficient of the wall surface — the source of
    /// the flash effect. Denser materials reflect more.
    pub fn reflection_amplitude(self) -> f64 {
        match self {
            Material::FreeSpace => 0.0,
            Material::TintedGlass => 0.25,
            Material::SolidWoodDoor => 0.35,
            Material::HollowWall6In => 0.45,
            Material::ConcreteWall8In => 0.60,
            Material::ConcreteWall18In => 0.65,
            Material::ReinforcedConcrete => 0.85,
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Material::FreeSpace => "Free Space",
            Material::TintedGlass => "Tinted Glass",
            Material::SolidWoodDoor => "1.75\" Solid Wood Door",
            Material::HollowWall6In => "6\" Hollow Wall",
            Material::ConcreteWall8In => "8\" Concrete",
            Material::ConcreteWall18In => "18\" Concrete",
            Material::ReinforcedConcrete => "Reinforced Concrete",
        }
    }

    /// Round-trip (two-crossing) power attenuation in dB — what a
    /// through-wall reflection suffers (Ch. 4: "the one-way attenuation
    /// doubles").
    pub fn round_trip_attenuation_db(self) -> f64 {
        2.0 * self.one_way_attenuation_db()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_1_values() {
        assert_eq!(Material::TintedGlass.one_way_attenuation_db(), 3.0);
        assert_eq!(Material::SolidWoodDoor.one_way_attenuation_db(), 6.0);
        assert_eq!(Material::HollowWall6In.one_way_attenuation_db(), 9.0);
        assert_eq!(Material::ConcreteWall18In.one_way_attenuation_db(), 18.0);
        assert_eq!(Material::ReinforcedConcrete.one_way_attenuation_db(), 40.0);
    }

    #[test]
    fn attenuation_strictly_increases_with_density() {
        let seq = [
            Material::FreeSpace,
            Material::TintedGlass,
            Material::SolidWoodDoor,
            Material::HollowWall6In,
            Material::ConcreteWall8In,
            Material::ConcreteWall18In,
            Material::ReinforcedConcrete,
        ];
        for w in seq.windows(2) {
            assert!(
                w[1].one_way_attenuation_db() > w[0].one_way_attenuation_db(),
                "{:?} should attenuate more than {:?}",
                w[1],
                w[0]
            );
        }
    }

    #[test]
    fn transmission_amplitude_matches_db() {
        // 9 dB one-way → amplitude 10^(-9/20) ≈ 0.3548.
        let t = Material::HollowWall6In.transmission_amplitude();
        assert!((t - 0.354_813).abs() < 1e-6);
        // Free space is lossless.
        assert_eq!(Material::FreeSpace.transmission_amplitude(), 1.0);
    }

    #[test]
    fn round_trip_doubles_one_way() {
        for m in Material::SURVEY {
            assert_eq!(
                m.round_trip_attenuation_db(),
                2.0 * m.one_way_attenuation_db()
            );
        }
    }

    #[test]
    fn flash_dominates_round_trip_for_real_walls() {
        // Ch. 4: the wall reflection is 18–36 dB above through-wall
        // reflections in typical indoor scenarios. Verify the material
        // parameters put the flash above the round-trip return.
        for m in [
            Material::SolidWoodDoor,
            Material::HollowWall6In,
            Material::ConcreteWall8In,
        ] {
            let flash_db = 20.0 * m.reflection_amplitude().log10();
            let through_db = -m.round_trip_attenuation_db();
            assert!(
                flash_db - through_db > 2.0,
                "{m:?}: flash {flash_db:.1} dB vs through {through_db:.1} dB"
            );
        }
    }

    #[test]
    fn free_space_does_not_reflect() {
        assert_eq!(Material::FreeSpace.reflection_amplitude(), 0.0);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Material::HollowWall6In.label(), "6\" Hollow Wall");
        assert_eq!(Material::ConcreteWall8In.label(), "8\" Concrete");
    }
}
