//! Human (and robot) motion models.
//!
//! Wi-Vi's tracking chain treats a moving body as an inverse synthetic
//! aperture (paper Ch. 5): every centimetre of motion re-samples the
//! channel at a new spatial position. Reproducing the paper's figures
//! therefore needs trajectories with the right structure:
//!
//! * people walking "at will" in a confined conference room
//!   ([`ConfinedRandomWalk`]) — produces the wavy angle traces of Fig. 7-2;
//! * scripted step-forward / step-backward gestures ([`GestureScript`]) —
//!   the modulation alphabet of Ch. 6;
//! * a multi-scatterer body ([`BodyConfig`], [`Mover`]) — torso plus
//!   counter-swinging limbs, which is what makes the paper's traces fuzzy
//!   ("a human is not just one object ... body parts moving in a loosely
//!   coupled way", §5.2);
//! * the iRobot Create footnote of §5 ([`RobotMover`]).
//!
//! All trajectories are deterministic functions of time (random walks
//! pre-generate their path from a seed), so every experiment is exactly
//! reproducible.

use wivi_num::rng::Rng64;

use crate::geometry::{Point, Rect, Vec2};
use crate::scene::Scatterer;

/// A deterministic trajectory: position of the body's reference point
/// (torso) as a function of time.
///
/// `MotionClone` is a supertrait so boxed trajectories — and therefore
/// [`Mover`]s and whole [`Scene`](crate::Scene)s — are `Clone`: the
/// copy-on-write [`SceneStore`](crate::SceneStore) relies on cloning a
/// shared scene the moment someone mutates it. Any `Motion` type that is
/// itself `Clone` (every one in this crate) gets the impl for free via
/// the blanket below.
pub trait Motion: Send + Sync + MotionClone {
    /// Torso position at time `t` seconds.
    fn position(&self, t: f64) -> Point;

    /// Instantaneous heading (unit vector), or `None` when (nearly)
    /// stationary. Default implementation differentiates [`Self::position`].
    fn heading(&self, t: f64) -> Option<Vec2> {
        const DT: f64 = 0.01;
        let v = (self.position(t + DT) - self.position(t - DT)) / (2.0 * DT);
        if v.norm() < 0.05 {
            None
        } else {
            Some(v.normalized())
        }
    }

    /// Instantaneous speed in m/s (finite difference).
    fn speed(&self, t: f64) -> f64 {
        const DT: f64 = 0.01;
        ((self.position(t + DT) - self.position(t - DT)) / (2.0 * DT)).norm()
    }
}

/// Object-safe cloning for boxed trajectories (the classic `dyn`-clone
/// pattern): implemented automatically for every `Motion + Clone` type.
pub trait MotionClone {
    /// Clones `self` into a fresh box.
    fn clone_box(&self) -> Box<dyn Motion>;
}

impl<T: Motion + Clone + 'static> MotionClone for T {
    fn clone_box(&self) -> Box<dyn Motion> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Motion> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A body that never moves. Nulled away entirely by Wi-Vi — used to test
/// that stationary people are invisible (paper §4.1: "if no object moves,
/// the channel will continue being nulled").
#[derive(Clone, Copy, Debug)]
pub struct Stationary(pub Point);

impl Motion for Stationary {
    fn position(&self, _t: f64) -> Point {
        self.0
    }
}

/// Constant-speed motion along a polyline of waypoints; stays at the final
/// waypoint after reaching it.
#[derive(Clone, Debug)]
pub struct WaypointWalker {
    waypoints: Vec<Point>,
    speed: f64,
    /// Cumulative arc length to each waypoint.
    cum_len: Vec<f64>,
}

impl WaypointWalker {
    /// Creates a walker traversing `waypoints` at `speed` m/s.
    ///
    /// # Panics
    /// Panics if fewer than 2 waypoints or `speed <= 0`.
    pub fn new(waypoints: Vec<Point>, speed: f64) -> Self {
        assert!(waypoints.len() >= 2, "need at least two waypoints");
        assert!(speed > 0.0, "speed must be positive");
        let mut cum_len = vec![0.0];
        for w in waypoints.windows(2) {
            let last = *cum_len.last().unwrap();
            cum_len.push(last + w[0].distance(w[1]));
        }
        Self {
            waypoints,
            speed,
            cum_len,
        }
    }

    /// Total path length, metres.
    pub fn path_length(&self) -> f64 {
        *self.cum_len.last().unwrap()
    }

    /// Time to traverse the whole polyline, seconds.
    pub fn duration(&self) -> f64 {
        self.path_length() / self.speed
    }
}

impl Motion for WaypointWalker {
    fn position(&self, t: f64) -> Point {
        let s = (t.max(0.0) * self.speed).min(self.path_length());
        // Find the segment containing arc length s.
        let idx = match self
            .cum_len
            .binary_search_by(|c| c.partial_cmp(&s).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.waypoints.len() {
            return *self.waypoints.last().unwrap();
        }
        let seg_len = self.cum_len[idx + 1] - self.cum_len[idx];
        if seg_len <= f64::EPSILON {
            return self.waypoints[idx];
        }
        let frac = (s - self.cum_len[idx]) / seg_len;
        self.waypoints[idx].lerp(self.waypoints[idx + 1], frac)
    }
}

/// A person moving "at will" inside a room: a seeded random sequence of
/// straight walks to random interior targets with occasional pauses
/// (§7.2: "we asked the subjects to enter a room, close the door, and move
/// at will").
#[derive(Clone, Debug)]
pub struct ConfinedRandomWalk {
    /// Sampled positions at `SAMPLE_DT` intervals (piecewise-linear lookup).
    samples: Vec<Point>,
}

impl ConfinedRandomWalk {
    const SAMPLE_DT: f64 = 0.02;

    /// Generates a walk confined to `room` lasting at least `duration`
    /// seconds, walking near `speed` m/s (per-leg jitter ±20 %), pausing
    /// with probability 0.25 between legs. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `duration <= 0` or `speed <= 0`.
    pub fn new(room: Rect, seed: u64, speed: f64, duration: f64) -> Self {
        assert!(duration > 0.0 && speed > 0.0);
        let mut rng = Rng64::seed_from_u64(seed);
        let inner = room.shrunk((0.3_f64).min(room.width().min(room.height()) / 4.0));
        let mut pos = Point::new(
            rng.gen_range(inner.min.x, inner.max.x),
            rng.gen_range(inner.min.y, inner.max.y),
        );
        let n = (duration / Self::SAMPLE_DT).ceil() as usize + 2;
        let mut samples = Vec::with_capacity(n);
        samples.push(pos);

        while samples.len() < n {
            // Occasionally stand still for a moment.
            if rng.gen_bool(0.25) {
                let pause_steps = (rng.gen_range(0.3, 1.2) / Self::SAMPLE_DT).ceil() as usize;
                for _ in 0..pause_steps {
                    samples.push(pos);
                }
                continue;
            }
            // Pick a target a comfortable leg away, inside the room.
            let target = Point::new(
                rng.gen_range(inner.min.x, inner.max.x),
                rng.gen_range(inner.min.y, inner.max.y),
            );
            let leg = target - pos;
            if leg.norm() < 0.5 {
                continue;
            }
            let leg_speed = speed * rng.gen_range(0.8, 1.2);
            let steps = (leg.norm() / (leg_speed * Self::SAMPLE_DT)).ceil() as usize;
            for k in 1..=steps {
                samples.push(pos.lerp(target, k as f64 / steps as f64));
            }
            pos = target;
        }
        Self { samples }
    }
}

impl Motion for ConfinedRandomWalk {
    fn position(&self, t: f64) -> Point {
        let ft = (t.max(0.0) / Self::SAMPLE_DT).min((self.samples.len() - 1) as f64);
        let i = ft.floor() as usize;
        if i + 1 >= self.samples.len() {
            return *self.samples.last().unwrap();
        }
        self.samples[i].lerp(self.samples[i + 1], ft - i as f64)
    }
}

/// The two body gestures of the paper's communication alphabet (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GestureKind {
    /// One step toward the device, then hold.
    StepForward,
    /// One step away from the device, then hold.
    StepBackward,
}

impl GestureKind {
    /// The gesture pair encoding one bit: '0' = forward then backward,
    /// '1' = backward then forward (§6.1's Manchester-like code).
    pub fn encode_bit(bit: bool) -> [GestureKind; 2] {
        if bit {
            [GestureKind::StepBackward, GestureKind::StepForward]
        } else {
            [GestureKind::StepForward, GestureKind::StepBackward]
        }
    }
}

/// Per-subject gait parameters for gesture experiments. The defaults
/// reproduce the paper's measured behaviour: ≈ 2.2 s per gesture (§7.5),
/// typical step sizes 2–3 feet, and *shorter backward steps* ("taking a
/// step backward is naturally harder for humans; hence, they tend to take
/// smaller steps", §7.5 — one of the two reasons bit '0' outruns bit '1'
/// in SNR).
#[derive(Clone, Copy, Debug)]
pub struct GestureStyle {
    /// Forward step length, metres (2–3 ft ≈ 0.6–0.9 m).
    pub forward_step_m: f64,
    /// Backward step length, metres.
    pub backward_step_m: f64,
    /// Duration of one gesture (out-and-hold), seconds.
    pub gesture_duration_s: f64,
    /// Pause between gestures, seconds.
    pub pause_s: f64,
}

impl Default for GestureStyle {
    fn default() -> Self {
        Self {
            forward_step_m: 0.75,
            backward_step_m: 0.60,
            gesture_duration_s: 2.2,
            pause_s: 0.6,
        }
    }
}

impl GestureStyle {
    /// A randomized per-subject style (deterministic in `seed`), matching
    /// the variability of the paper's 8 volunteers (2.2 ± 0.4 s).
    pub fn subject(seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let forward_step_m = rng.gen_range(0.60, 0.90);
        Self {
            forward_step_m,
            // Backward steps are a fraction of the subject's forward step.
            backward_step_m: forward_step_m * rng.gen_range(0.70, 0.92),
            gesture_duration_s: rng.gen_range(1.8, 2.6),
            pause_s: rng.gen_range(0.4, 0.8),
        }
    }
}

/// A scripted gesture performer: stands at `base`, faces `facing`
/// (typically toward the device, or slanted as in Fig. 6-2(c)), and
/// executes a gesture sequence.
///
/// Within each gesture the displacement follows a raised-cosine ease
/// (smooth start/stop, peak speed mid-step) out over the first 40 % of the
/// gesture window and back to rest position *of that gesture* — a step
/// forward ends displaced forward and holds there until the next gesture
/// returns, exactly the paper's composable encoding where each *bit*
/// (gesture pair) returns the subject to the initial state.
#[derive(Clone, Debug)]
pub struct GestureScript {
    base: Point,
    facing: Vec2,
    style: GestureStyle,
    /// Start time of the first gesture, seconds.
    start: f64,
    gestures: Vec<GestureKind>,
}

impl GestureScript {
    /// Creates a script from an explicit gesture list.
    ///
    /// # Panics
    /// Panics if `facing` is the zero vector.
    pub fn new(
        base: Point,
        facing: Vec2,
        style: GestureStyle,
        start: f64,
        gestures: Vec<GestureKind>,
    ) -> Self {
        Self {
            base,
            facing: facing.normalized(),
            style,
            start,
            gestures,
        }
    }

    /// Creates a script that transmits `bits` (two gestures per bit).
    pub fn for_bits(
        base: Point,
        facing: Vec2,
        style: GestureStyle,
        start: f64,
        bits: &[bool],
    ) -> Self {
        let gestures = bits
            .iter()
            .flat_map(|&b| GestureKind::encode_bit(b))
            .collect();
        Self::new(base, facing, style, start, gestures)
    }

    /// Time occupied by one gesture including the inter-gesture pause.
    pub fn slot_duration(&self) -> f64 {
        self.style.gesture_duration_s + self.style.pause_s
    }

    /// Total script duration from `start`, seconds.
    pub fn duration(&self) -> f64 {
        self.gestures.len() as f64 * self.slot_duration()
    }

    /// The scripted gesture sequence.
    pub fn gestures(&self) -> &[GestureKind] {
        &self.gestures
    }

    /// Raised-cosine ease: 0 → 1 over `[0, 1]` with zero end-slope.
    fn ease(x: f64) -> f64 {
        0.5 * (1.0 - (std::f64::consts::PI * x.clamp(0.0, 1.0)).cos())
    }

    /// Signed displacement along `facing` at time `t` (gesture state
    /// machine). Positive = toward the facing direction.
    fn displacement(&self, t: f64) -> f64 {
        let move_frac = 0.4; // fraction of the gesture spent actually moving
        let mut offset = 0.0; // current rest displacement
        let mut time = self.start;
        for g in &self.gestures {
            let step = match g {
                GestureKind::StepForward => self.style.forward_step_m,
                GestureKind::StepBackward => -self.style.backward_step_m,
            };
            let move_dur = self.style.gesture_duration_s * move_frac;
            if t < time {
                return offset;
            }
            if t < time + move_dur {
                return offset + step * Self::ease((t - time) / move_dur);
            }
            offset += step;
            time += self.slot_duration();
        }
        offset
    }
}

impl Motion for GestureScript {
    fn position(&self, t: f64) -> Point {
        self.base + self.facing * self.displacement(t)
    }
}

/// A constant-velocity rigid mover with a small radar cross-section — the
/// iRobot Create of the §5 footnote ("we have successfully experimented
/// with tracking an iRobot Create robot").
#[derive(Clone, Copy, Debug)]
pub struct RobotMover {
    pub start: Point,
    pub velocity: Vec2,
}

impl Motion for RobotMover {
    fn position(&self, t: f64) -> Point {
        self.start + self.velocity * t
    }
}

/// Radar model of a human body: a strong torso scatterer plus two weaker
/// limb scatterers that counter-swing along the direction of motion at
/// gait frequency. The loosely-coupled limbs are what blur the MUSIC
/// traces (§7.3: "a human can move his body parts differently as he
/// moves... waving while moving makes the lines significantly fuzzier").
#[derive(Clone, Copy, Debug)]
pub struct BodyConfig {
    /// Torso amplitude reflectivity, √RCS in metres (σ ≈ 0.5 m² → 0.7).
    pub torso_reflectivity: f64,
    /// Per-limb amplitude reflectivity.
    pub limb_reflectivity: f64,
    /// Peak limb swing about the torso, metres.
    pub limb_swing_m: f64,
    /// Gait (stride) frequency while walking, Hz.
    pub gait_hz: f64,
}

impl Default for BodyConfig {
    fn default() -> Self {
        Self {
            torso_reflectivity: 0.70,
            limb_reflectivity: 0.15,
            limb_swing_m: 0.15,
            gait_hz: 1.8,
        }
    }
}

impl BodyConfig {
    /// A rigid point target (no limbs) — appropriate for [`RobotMover`].
    pub fn rigid(reflectivity: f64) -> Self {
        Self {
            torso_reflectivity: reflectivity,
            limb_reflectivity: 0.0,
            limb_swing_m: 0.0,
            gait_hz: 0.0,
        }
    }
}

/// A moving body in the scene: trajectory + radar body model.
#[derive(Clone)]
pub struct Mover {
    motion: Box<dyn Motion>,
    body: BodyConfig,
    /// Per-subject gait phase offset, radians.
    gait_phase: f64,
}

impl Mover {
    /// Wraps a trajectory with the default human body model.
    pub fn human(motion: impl Motion + 'static) -> Self {
        Self::with_body(motion, BodyConfig::default(), 0.0)
    }

    /// Wraps a trajectory with an explicit body model and gait phase.
    pub fn with_body(motion: impl Motion + 'static, body: BodyConfig, gait_phase: f64) -> Self {
        Self {
            motion: Box::new(motion),
            body,
            gait_phase,
        }
    }

    /// Torso position at time `t`.
    pub fn position(&self, t: f64) -> Point {
        self.motion.position(t)
    }

    /// The trajectory's heading at `t`.
    pub fn heading(&self, t: f64) -> Option<Vec2> {
        self.motion.heading(t)
    }

    /// The instantaneous set of body scatterers at time `t`.
    pub fn scatterers(&self, t: f64) -> Vec<Scatterer> {
        let mut out = Vec::with_capacity(3);
        self.for_each_scatterer(t, |s| out.push(*s));
        out
    }

    /// Visits each body scatterer at time `t` without allocating — the
    /// channel tracer calls this at the radio's channel rate, so the hot
    /// path must not build a fresh `Vec` per sample.
    pub fn for_each_scatterer(&self, t: f64, mut f: impl FnMut(&Scatterer)) {
        let torso = self.motion.position(t);
        f(&Scatterer {
            position: torso,
            sqrt_rcs: self.body.torso_reflectivity,
        });
        if self.body.limb_reflectivity > 0.0 {
            // Limbs swing along the heading while walking; when standing
            // they rest at fixed offsets (static → nulled).
            let heading = self.motion.heading(t);
            let axis = heading.unwrap_or(Vec2::UNIT_X);
            let swing = if heading.is_some() {
                let phase = std::f64::consts::TAU * self.body.gait_hz * t + self.gait_phase;
                self.body.limb_swing_m * phase.sin()
            } else {
                self.body.limb_swing_m * 0.5
            };
            for sign in [1.0, -1.0] {
                f(&Scatterer {
                    position: torso + axis * (swing * sign),
                    sqrt_rcs: self.body.limb_reflectivity,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let s = Stationary(Point::new(1.0, 2.0));
        assert_eq!(s.position(0.0), s.position(100.0));
        assert!(s.heading(5.0).is_none());
        assert!(s.speed(5.0) < 1e-12);
    }

    #[test]
    fn waypoint_walker_constant_speed() {
        let w = WaypointWalker::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(4.0, 3.0),
            ],
            1.0,
        );
        assert_eq!(w.path_length(), 7.0);
        assert_eq!(w.duration(), 7.0);
        assert_eq!(w.position(0.0), Point::new(0.0, 0.0));
        assert_eq!(w.position(2.0), Point::new(2.0, 0.0));
        assert_eq!(w.position(5.0), Point::new(4.0, 1.0));
        // Clamps at the end.
        assert_eq!(w.position(100.0), Point::new(4.0, 3.0));
        assert!((w.speed(3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn confined_walk_stays_in_room_and_is_deterministic() {
        let room = Rect::new(Point::new(-3.5, 1.0), Point::new(3.5, 5.0));
        let a = ConfinedRandomWalk::new(room, 7, 1.0, 10.0);
        let b = ConfinedRandomWalk::new(room, 7, 1.0, 10.0);
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert_eq!(a.position(t), b.position(t), "nondeterministic at t={t}");
            assert!(room.contains(a.position(t)), "escaped room at t={t}");
        }
    }

    #[test]
    fn confined_walk_actually_moves() {
        let room = Rect::new(Point::new(-3.5, 1.0), Point::new(3.5, 5.0));
        let w = ConfinedRandomWalk::new(room, 3, 1.0, 20.0);
        let total: f64 = (0..199)
            .map(|i| {
                let t0 = i as f64 * 0.1;
                w.position(t0).distance(w.position(t0 + 0.1))
            })
            .sum();
        assert!(total > 5.0, "walker barely moved: {total} m in 20 s");
    }

    #[test]
    fn different_seeds_give_different_walks() {
        let room = Rect::new(Point::new(-3.5, 1.0), Point::new(3.5, 5.0));
        let a = ConfinedRandomWalk::new(room, 1, 1.0, 10.0);
        let b = ConfinedRandomWalk::new(room, 2, 1.0, 10.0);
        let diverged = (0..100).any(|i| {
            let t = i as f64 * 0.1;
            a.position(t).distance(b.position(t)) > 0.1
        });
        assert!(diverged);
    }

    #[test]
    fn gesture_bit_encoding_is_manchester_like() {
        assert_eq!(
            GestureKind::encode_bit(false),
            [GestureKind::StepForward, GestureKind::StepBackward]
        );
        assert_eq!(
            GestureKind::encode_bit(true),
            [GestureKind::StepBackward, GestureKind::StepForward]
        );
    }

    #[test]
    fn gesture_pair_returns_to_base() {
        // §6.1 condition 1: gestures must be composable — after each bit the
        // human is back at the initial state.
        let style = GestureStyle {
            forward_step_m: 0.75,
            backward_step_m: 0.75, // symmetric steps for exact return
            gesture_duration_s: 2.0,
            pause_s: 0.5,
        };
        let g = GestureScript::for_bits(
            Point::new(0.0, 3.0),
            Vec2::new(0.0, -1.0),
            style,
            0.0,
            &[false, true],
        );
        let end = g.position(g.duration() + 1.0);
        assert!(end.distance(Point::new(0.0, 3.0)) < 1e-9);
    }

    #[test]
    fn forward_step_moves_toward_facing() {
        let g = GestureScript::new(
            Point::new(0.0, 3.0),
            Vec2::new(0.0, -1.0), // facing the device at negative y
            GestureStyle::default(),
            0.0,
            vec![GestureKind::StepForward],
        );
        // Mid-step the subject is closer to the device (smaller y).
        let mid = g.position(0.5);
        assert!(mid.y < 3.0);
        // After the move completes the displacement holds.
        let held = g.position(2.0);
        assert!((held.y - (3.0 - GestureStyle::default().forward_step_m)).abs() < 1e-9);
    }

    #[test]
    fn backward_steps_are_shorter_than_forward() {
        // The asymmetry behind Fig. 7-5.
        let s = GestureStyle::default();
        assert!(s.backward_step_m < s.forward_step_m);
        for seed in 0..20 {
            let s = GestureStyle::subject(seed);
            assert!(s.backward_step_m < s.forward_step_m + 1e-9);
        }
    }

    #[test]
    fn subject_styles_vary_but_are_deterministic() {
        let a = GestureStyle::subject(5);
        let b = GestureStyle::subject(5);
        assert_eq!(a.gesture_duration_s, b.gesture_duration_s);
        let c = GestureStyle::subject(6);
        assert!((a.gesture_duration_s - c.gesture_duration_s).abs() > 1e-9);
    }

    #[test]
    fn robot_moves_in_straight_line() {
        let r = RobotMover {
            start: Point::new(0.0, 2.0),
            velocity: Vec2::new(0.3, 0.0),
        };
        assert_eq!(r.position(10.0), Point::new(3.0, 2.0));
        let h = r.heading(5.0).unwrap();
        assert!((h - Vec2::UNIT_X).norm() < 1e-9);
    }

    #[test]
    fn body_produces_torso_plus_limbs_when_walking() {
        let mover = Mover::human(WaypointWalker::new(
            vec![Point::new(0.0, 2.0), Point::new(5.0, 2.0)],
            1.0,
        ));
        let s = mover.scatterers(1.0);
        assert_eq!(s.len(), 3);
        assert!(s[0].sqrt_rcs > s[1].sqrt_rcs);
        // Limbs are displaced along the heading (x axis here).
        assert!((s[1].position.y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rigid_body_is_single_scatterer() {
        let mover = Mover::with_body(
            RobotMover {
                start: Point::ORIGIN,
                velocity: Vec2::new(0.2, 0.0),
            },
            BodyConfig::rigid(0.3),
            0.0,
        );
        assert_eq!(mover.scatterers(3.0).len(), 1);
    }

    #[test]
    fn limbs_counter_swing() {
        let mover = Mover::human(WaypointWalker::new(
            vec![Point::new(0.0, 2.0), Point::new(50.0, 2.0)],
            1.0,
        ));
        // At some instant the two limbs sit on opposite sides of the torso.
        let s = mover.scatterers(0.33);
        let torso_x = s[0].position.x;
        let d1 = s[1].position.x - torso_x;
        let d2 = s[2].position.x - torso_x;
        assert!(d1 * d2 <= 0.0, "limbs on same side: {d1} {d2}");
    }
}
