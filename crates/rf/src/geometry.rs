//! Planar geometry primitives.
//!
//! The simulation is two-dimensional: the paper's scenes (device in front
//! of a wall, humans moving in a room behind it) are essentially planar,
//! and the algorithms only consume path lengths and angles, both of which
//! the plane captures. The wall lies along the x-axis (`y = 0`); the device
//! sits at `y < 0` and the imaged room at `y > 0`.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in the scene plane, metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement / direction in the scene plane.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates, metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Mirror image across the wall line `y = 0` — used for the specular
    /// flash path.
    pub fn mirror_y(self) -> Point {
        Point::new(self.x, -self.y)
    }

    /// Linear interpolation `self + t·(other − self)`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }
}

impl Vec2 {
    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Unit vector along +x.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector along +y (the device boresight, into the room).
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product (signed parallelogram area).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    /// Panics on the zero vector.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Angle between two vectors, radians in `[0, π]`.
    pub fn angle_to(self, other: Vec2) -> f64 {
        let cos = (self.dot(other) / (self.norm() * other.norm())).clamp(-1.0, 1.0);
        cos.acos()
    }

    /// Unit vector at `theta` radians measured counter-clockwise from +x.
    pub fn from_angle(theta: f64) -> Vec2 {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Rotates the vector counter-clockwise by `theta` radians.
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (90° counter-clockwise).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, v: Vec2) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, other: Point) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// An axis-aligned rectangle, used for room boundaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Width along x, metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Depth along y, metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point to the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Shrinks the rectangle by `margin` on every side.
    ///
    /// # Panics
    /// Panics if the margin would invert the rectangle.
    pub fn shrunk(&self, margin: f64) -> Rect {
        assert!(
            2.0 * margin < self.width() && 2.0 * margin < self.height(),
            "margin {margin} too large for rect {self:?}"
        );
        Rect {
            min: Point::new(self.min.x + margin, self.min.y + margin),
            max: Point::new(self.max.x - margin, self.max.y - margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn mirror_flips_only_y() {
        let p = Point::new(2.0, -1.5);
        assert_eq!(p.mirror_y(), Point::new(2.0, 1.5));
        assert_eq!(p.mirror_y().mirror_y(), p);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(1.0, 2.0);
        let w = Vec2::new(-2.0, 1.0);
        assert_eq!(v.dot(w), 0.0);
        assert_eq!(v.perp(), w);
        assert_eq!((v * 2.0).norm(), 2.0 * v.norm());
        assert_eq!((-v) + v, Vec2::default());
    }

    #[test]
    fn angle_between_orthogonal_vectors_is_right() {
        let a = Vec2::UNIT_X;
        let b = Vec2::UNIT_Y;
        assert!((a.angle_to(b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(a.angle_to(a) < 1e-12);
        assert!((a.angle_to(-a) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, -1.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - v.norm()).abs() < 1e-12);
        assert!((v.rotated(std::f64::consts::TAU) - v).norm() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(3.0, -1.0));
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::new(Point::new(0.0, 1.0), Point::new(4.0, 5.0));
        assert!(r.contains(Point::new(2.0, 3.0)));
        assert!(!r.contains(Point::new(-1.0, 3.0)));
        assert_eq!(r.clamp(Point::new(-1.0, 9.0)), Point::new(0.0, 5.0));
        assert_eq!(r.center(), Point::new(2.0, 3.0));
    }

    #[test]
    fn rect_shrink() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).shrunk(1.0);
        assert_eq!(r.min, Point::new(1.0, 1.0));
        assert_eq!(r.max, Point::new(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        let _ = Vec2::default().normalized();
    }
}
