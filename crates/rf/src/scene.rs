//! Scene description: device, wall, clutter, movers.
//!
//! Geometry convention (see [`crate::geometry`]): the wall is the line
//! `y = 0`; the Wi-Vi device sits in front of it at `y < 0` with its
//! directional antennas boresighted at `+y`; the imaged room lies behind
//! the wall at `y > 0`.

use crate::antenna::Antenna;
use crate::geometry::{Point, Rect, Vec2};
use crate::materials::Material;
use crate::motion::Mover;

/// The obstruction between the device and the room. Its surface is the
/// line `y = 0`; thickness is absorbed into the material's attenuation.
#[derive(Clone, Copy, Debug)]
pub struct Wall {
    pub material: Material,
}

/// A point reflector (static clutter or a body part).
///
/// `sqrt_rcs` is the square root of the radar cross-section in metres; the
/// bistatic path amplitude is proportional to it.
#[derive(Clone, Copy, Debug)]
pub struct Scatterer {
    pub position: Point,
    pub sqrt_rcs: f64,
}

/// Physical placement of the 3-antenna MIMO device (§3.1: "two of the
/// antennas are used for transmitting and one is used for receiving").
#[derive(Clone, Copy, Debug)]
pub struct DeviceLayout {
    /// The two transmit antenna positions.
    pub tx: [Point; 2],
    /// The receive antenna position.
    pub rx: Point,
    /// Transmit antenna pattern (shared by both TX antennas).
    pub tx_antenna: Antenna,
    /// Receive antenna pattern.
    pub rx_antenna: Antenna,
}

impl DeviceLayout {
    /// The paper's standard placement: device `standoff` metres in front of
    /// the wall (§7.3 uses 1 m), TX antennas 50 cm apart with the RX
    /// antenna between them, all boresighted into the room, 6 dBi
    /// directional patterns.
    ///
    /// # Panics
    /// Panics if `standoff <= 0`.
    pub fn standard(standoff: f64) -> Self {
        assert!(standoff > 0.0, "device must be in front of the wall");
        let y = -standoff;
        Self {
            tx: [Point::new(-0.25, y), Point::new(0.25, y)],
            rx: Point::new(0.0, y),
            tx_antenna: Antenna::directional_6dbi(Vec2::UNIT_Y),
            rx_antenna: Antenna::directional_6dbi(Vec2::UNIT_Y),
        }
    }

    /// Same geometry but with isotropic antennas — the "typical MIMO
    /// system" contrast of §4.1 where the direct TX→RX signal is strong.
    pub fn standard_isotropic(standoff: f64) -> Self {
        let mut d = Self::standard(standoff);
        d.tx_antenna = Antenna::isotropic();
        d.rx_antenna = Antenna::isotropic();
        d
    }
}

/// A complete through-wall scene.
///
/// `Clone` is deliberate: scenes are plain values, and the copy-on-write
/// [`SceneStore`](crate::SceneStore) clones a shared scene only at the
/// moment a holder mutates it.
#[derive(Clone)]
pub struct Scene {
    pub device: DeviceLayout,
    pub wall: Wall,
    /// Static reflectors (furniture, floor bounce, radio case, …) on either
    /// side of the wall.
    pub clutter: Vec<Scatterer>,
    /// Moving bodies behind the wall.
    pub movers: Vec<Mover>,
}

impl Scene {
    /// Creates an empty scene: device 1 m from a wall of `material`,
    /// no clutter, no movers.
    pub fn new(material: Material) -> Self {
        Self {
            device: DeviceLayout::standard(1.0),
            wall: Wall { material },
            clutter: Vec::new(),
            movers: Vec::new(),
        }
    }

    /// Adds the standard office furniture of the paper's conference rooms
    /// (§7.2: "the rooms have standard furniture: tables, chairs, boards")
    /// plus near-device static reflections (§4.1: "the table on which the
    /// radio is mounted, the floor, the radio case itself"). All static —
    /// all of it must disappear after nulling.
    pub fn with_office_clutter(mut self, room: Rect) -> Self {
        let c = room.center();
        self.clutter.extend_from_slice(&[
            // Conference table (large, room centre).
            Scatterer {
                position: c,
                sqrt_rcs: 0.9,
            },
            // Chairs around it.
            Scatterer {
                position: Point::new(c.x - 1.0, c.y - 0.6),
                sqrt_rcs: 0.3,
            },
            Scatterer {
                position: Point::new(c.x + 1.0, c.y - 0.6),
                sqrt_rcs: 0.3,
            },
            Scatterer {
                position: Point::new(c.x - 1.0, c.y + 0.6),
                sqrt_rcs: 0.3,
            },
            // Whiteboard near the back wall.
            Scatterer {
                position: Point::new(c.x, room.max.y - 0.2),
                sqrt_rcs: 0.6,
            },
            // Radio-side reflections (in front of the wall, y < 0).
            Scatterer {
                position: Point::new(0.4, -0.8),
                sqrt_rcs: 0.25,
            }, // mounting table
            Scatterer {
                position: Point::new(-0.6, -1.4),
                sqrt_rcs: 0.2,
            }, // floor bounce
        ]);
        self
    }

    /// Adds a mover.
    pub fn with_mover(mut self, mover: Mover) -> Self {
        self.movers.push(mover);
        self
    }

    /// The paper's first conference room: 7 × 4 m behind the wall (§7.2).
    pub fn conference_room_small() -> Rect {
        Rect::new(Point::new(-3.5, 0.2), Point::new(3.5, 4.2))
    }

    /// The paper's second conference room: 11 × 7 m (§7.2).
    pub fn conference_room_large() -> Rect {
        Rect::new(Point::new(-5.5, 0.2), Point::new(5.5, 7.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_faces_the_room() {
        let d = DeviceLayout::standard(1.0);
        assert!(d.tx[0].y < 0.0 && d.tx[1].y < 0.0 && d.rx.y < 0.0);
        assert_eq!(d.tx_antenna.boresight(), Vec2::UNIT_Y);
        // RX sits between the TX antennas.
        assert!(d.tx[0].x < d.rx.x && d.rx.x < d.tx[1].x);
    }

    #[test]
    fn office_clutter_spans_both_sides() {
        let scene =
            Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small());
        assert!(scene.clutter.iter().any(|s| s.position.y > 0.0));
        assert!(scene.clutter.iter().any(|s| s.position.y < 0.0));
    }

    #[test]
    fn room_dimensions_match_paper() {
        let small = Scene::conference_room_small();
        assert!((small.width() - 7.0).abs() < 1e-9);
        assert!((small.height() - 4.0).abs() < 1e-9);
        let large = Scene::conference_room_large();
        assert!((large.width() - 11.0).abs() < 1e-9);
        assert!((large.height() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in front of the wall")]
    fn rejects_device_behind_wall() {
        let _ = DeviceLayout::standard(-1.0);
    }
}
