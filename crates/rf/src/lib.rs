//! RF propagation simulator for the Wi-Vi reproduction.
//!
//! The original system (Adib & Katabi, SIGCOMM 2013) ran on USRP N210
//! radios pointed at real walls. This crate is the simulated stand-in: a
//! 2-D geometric multipath model of the 2.4 GHz ISM band that produces, for
//! any (transmit antenna, frequency, time) triple, the complex baseband
//! channel gain the receive antenna would observe.
//!
//! The model captures exactly the physics the paper's algorithms depend on:
//!
//! * **The flash effect** (paper Ch. 4): the specular reflection off the
//!   wall and the direct TX→RX leakage are orders of magnitude stronger
//!   than anything reflected from behind the wall ([`channel`]).
//! * **Material-dependent attenuation** (Table 4.1): each wall material
//!   attenuates every through-wall crossing ([`materials`]).
//! * **Linear superposition**: all paths — direct, flash, static clutter,
//!   moving humans — add linearly, which is what makes MIMO nulling able to
//!   cancel the static part ([`scene`], [`channel`]).
//! * **Human motion as an antenna array** (paper Ch. 5): moving scatterers
//!   rotate the phase of their path at the spatial rate ISAR exploits
//!   ([`motion`]).
//!
//! Everything is deterministic given the mover trajectories; receiver noise
//! is deliberately *not* added here — that belongs to the radio front-end
//! in `wivi-sdr`, where gain staging and the ADC live.

pub mod antenna;
pub mod channel;
pub mod geometry;
pub mod materials;
pub mod motion;
pub mod scene;
pub mod store;

pub use antenna::Antenna;
pub use channel::PathContribution;
pub use geometry::{Point, Rect, Vec2};
pub use materials::Material;
pub use motion::{
    BodyConfig, ConfinedRandomWalk, GestureKind, GestureScript, GestureStyle, Motion, Mover,
    RobotMover, Stationary, WaypointWalker,
};
pub use scene::{DeviceLayout, Scatterer, Scene, Wall};
pub use store::{SceneHandle, SceneStore};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wi-Fi channel 6 center frequency, Hz (2.437 GHz — the 2.4 GHz ISM band
/// the paper operates in).
pub const CARRIER_HZ: f64 = 2.437e9;

/// Carrier wavelength, metres (≈ 12.3 cm; the paper quotes 12.5 cm).
pub fn carrier_wavelength() -> f64 {
    SPEED_OF_LIGHT / CARRIER_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_is_about_12_cm() {
        let lambda = carrier_wavelength();
        assert!((0.12..0.13).contains(&lambda), "λ = {lambda}");
    }
}
