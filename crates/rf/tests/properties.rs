//! Property-based tests for the propagation simulator's invariants.

use proptest::prelude::*;
use wivi_rf::channel::gain_from_paths;
use wivi_rf::{Material, Motion, Mover, Point, Rect, Scene, Stationary, WaypointWalker, CARRIER_HZ};

fn point_behind_wall() -> impl Strategy<Value = Point> {
    (-3.0f64..3.0, 0.5f64..6.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn channel_is_linear_in_scatterers(p1 in point_behind_wall(), p2 in point_behind_wall()) {
        // The whole nulling premise: path gains superpose linearly.
        let base = Scene::new(Material::HollowWall6In);
        let with_a = Scene::new(Material::HollowWall6In)
            .with_mover(Mover::human(Stationary(p1)));
        let with_b = Scene::new(Material::HollowWall6In)
            .with_mover(Mover::human(Stationary(p2)));
        let with_both = Scene::new(Material::HollowWall6In)
            .with_mover(Mover::human(Stationary(p1)))
            .with_mover(Mover::human(Stationary(p2)));
        let g = |s: &Scene| s.channel_gain(0, CARRIER_HZ, 0.0);
        let lhs = g(&with_both);
        let rhs = g(&with_a) + g(&with_b) - g(&base);
        prop_assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()));
    }

    #[test]
    fn farther_targets_are_weaker(x in -2.0f64..2.0, y1 in 1.0f64..3.0, dy in 0.5f64..5.0) {
        let amp = |p: Point| {
            Scene::new(Material::HollowWall6In)
                .with_mover(Mover::human(Stationary(p)))
                .trace_mover_paths(0, 0.0)[0]
                .amplitude
        };
        // Move straight back along the boresight: amplitude must drop.
        prop_assert!(amp(Point::new(x, y1 + dy)) < amp(Point::new(x, y1)));
    }

    #[test]
    fn denser_walls_attenuate_more(p in point_behind_wall()) {
        let amp = |m: Material| {
            Scene::new(m)
                .with_mover(Mover::human(Stationary(p)))
                .trace_mover_paths(0, 0.0)[0]
                .amplitude
        };
        prop_assert!(amp(Material::FreeSpace) > amp(Material::HollowWall6In));
        prop_assert!(amp(Material::HollowWall6In) > amp(Material::ReinforcedConcrete));
    }

    #[test]
    fn path_gain_magnitude_is_frequency_flat(p in point_behind_wall(), df in -2.5e6f64..2.5e6) {
        // Per-path |gain| must not depend on the subcarrier; only phase does.
        let scene = Scene::new(Material::HollowWall6In).with_mover(Mover::human(Stationary(p)));
        let paths = scene.trace_paths(0, 0.0);
        let g1 = gain_from_paths(&paths[..1], CARRIER_HZ);
        let g2 = gain_from_paths(&paths[..1], CARRIER_HZ + df);
        prop_assert!((g1.abs() - g2.abs()).abs() < 1e-15);
    }

    #[test]
    fn waypoint_walker_stays_on_polyline_extent(
        speed in 0.3f64..2.0,
        t in 0.0f64..60.0,
    ) {
        let w = WaypointWalker::new(
            vec![Point::new(-2.0, 1.0), Point::new(2.0, 1.0), Point::new(2.0, 4.0)],
            speed,
        );
        let p = w.position(t);
        prop_assert!((-2.0..=2.0).contains(&p.x));
        prop_assert!((1.0..=4.0).contains(&p.y));
    }

    #[test]
    fn confined_walk_never_escapes(seed in 0u64..500, t in 0.0f64..20.0) {
        let room = Rect::new(Point::new(-3.5, 0.2), Point::new(3.5, 4.2));
        let walk = wivi_rf::ConfinedRandomWalk::new(room, seed, 1.0, 20.0);
        prop_assert!(room.contains(walk.position(t)));
    }

    #[test]
    fn gesture_script_bit_pairs_return_home(
        bits in proptest::collection::vec(any::<bool>(), 1..5),
        step in 0.4f64..0.9,
    ) {
        use wivi_rf::{GestureScript, GestureStyle, Vec2};
        let style = GestureStyle {
            forward_step_m: step,
            backward_step_m: step, // symmetric for exact return
            gesture_duration_s: 2.0,
            pause_s: 0.5,
        };
        let base = Point::new(0.0, 3.0);
        let g = GestureScript::for_bits(base, Vec2::new(0.0, -1.0), style, 0.0, &bits);
        let end = g.position(g.duration() + 1.0);
        prop_assert!(end.distance(base) < 1e-9, "ended {end:?}");
    }

    #[test]
    fn mirror_preserves_x_and_distance_to_wall(x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let p = Point::new(x, y);
        let m = p.mirror_y();
        prop_assert_eq!(m.x, p.x);
        prop_assert_eq!(m.y, -p.y);
    }
}
