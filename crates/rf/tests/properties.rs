//! Property-style tests for the propagation simulator's invariants,
//! driven by a deterministic [`Rng64`] sample sweep (no third-party
//! property-testing crates are available offline).

use wivi_num::rng::Rng64;
use wivi_rf::channel::gain_from_paths;
use wivi_rf::{
    Material, Motion, Mover, Point, Rect, Scene, Stationary, WaypointWalker, CARRIER_HZ,
};

const CASES: u64 = 48;

fn point_behind_wall(rng: &mut Rng64) -> Point {
    Point::new(rng.gen_range(-3.0, 3.0), rng.gen_range(0.5, 6.0))
}

#[test]
fn channel_is_linear_in_scatterers() {
    let mut rng = Rng64::seed_from_u64(201);
    for _ in 0..CASES {
        let p1 = point_behind_wall(&mut rng);
        let p2 = point_behind_wall(&mut rng);
        // The whole nulling premise: path gains superpose linearly.
        let base = Scene::new(Material::HollowWall6In);
        let with_a = Scene::new(Material::HollowWall6In).with_mover(Mover::human(Stationary(p1)));
        let with_b = Scene::new(Material::HollowWall6In).with_mover(Mover::human(Stationary(p2)));
        let with_both = Scene::new(Material::HollowWall6In)
            .with_mover(Mover::human(Stationary(p1)))
            .with_mover(Mover::human(Stationary(p2)));
        let g = |s: &Scene| s.channel_gain(0, CARRIER_HZ, 0.0);
        let lhs = g(&with_both);
        let rhs = g(&with_a) + g(&with_b) - g(&base);
        assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()));
    }
}

#[test]
fn farther_targets_are_weaker() {
    let mut rng = Rng64::seed_from_u64(202);
    for _ in 0..CASES {
        let x = rng.gen_range(-2.0, 2.0);
        let y1 = rng.gen_range(1.0, 3.0);
        let dy = rng.gen_range(0.5, 5.0);
        let amp = |p: Point| {
            Scene::new(Material::HollowWall6In)
                .with_mover(Mover::human(Stationary(p)))
                .trace_mover_paths(0, 0.0)[0]
                .amplitude
        };
        // Move straight back along the boresight: amplitude must drop.
        assert!(amp(Point::new(x, y1 + dy)) < amp(Point::new(x, y1)));
    }
}

#[test]
fn denser_walls_attenuate_more() {
    let mut rng = Rng64::seed_from_u64(203);
    for _ in 0..CASES {
        let p = point_behind_wall(&mut rng);
        let amp = |m: Material| {
            Scene::new(m)
                .with_mover(Mover::human(Stationary(p)))
                .trace_mover_paths(0, 0.0)[0]
                .amplitude
        };
        assert!(amp(Material::FreeSpace) > amp(Material::HollowWall6In));
        assert!(amp(Material::HollowWall6In) > amp(Material::ReinforcedConcrete));
    }
}

#[test]
fn path_gain_magnitude_is_frequency_flat() {
    let mut rng = Rng64::seed_from_u64(204);
    for _ in 0..CASES {
        let p = point_behind_wall(&mut rng);
        let df = rng.gen_range(-2.5e6, 2.5e6);
        // Per-path |gain| must not depend on the subcarrier; only phase does.
        let scene = Scene::new(Material::HollowWall6In).with_mover(Mover::human(Stationary(p)));
        let paths = scene.trace_paths(0, 0.0);
        let g1 = gain_from_paths(&paths[..1], CARRIER_HZ);
        let g2 = gain_from_paths(&paths[..1], CARRIER_HZ + df);
        assert!((g1.abs() - g2.abs()).abs() < 1e-15);
    }
}

#[test]
fn waypoint_walker_stays_on_polyline_extent() {
    let mut rng = Rng64::seed_from_u64(205);
    for _ in 0..CASES {
        let speed = rng.gen_range(0.3, 2.0);
        let t = rng.gen_range(0.0, 60.0);
        let w = WaypointWalker::new(
            vec![
                Point::new(-2.0, 1.0),
                Point::new(2.0, 1.0),
                Point::new(2.0, 4.0),
            ],
            speed,
        );
        let p = w.position(t);
        assert!((-2.0..=2.0).contains(&p.x));
        assert!((1.0..=4.0).contains(&p.y));
    }
}

#[test]
fn confined_walk_never_escapes() {
    let mut rng = Rng64::seed_from_u64(206);
    for _ in 0..CASES {
        let seed = rng.gen_below(500);
        let t = rng.gen_range(0.0, 20.0);
        let room = Rect::new(Point::new(-3.5, 0.2), Point::new(3.5, 4.2));
        let walk = wivi_rf::ConfinedRandomWalk::new(room, seed, 1.0, 20.0);
        assert!(room.contains(walk.position(t)));
    }
}

#[test]
fn gesture_script_bit_pairs_return_home() {
    use wivi_rf::{GestureScript, GestureStyle, Vec2};
    let mut rng = Rng64::seed_from_u64(207);
    for _ in 0..CASES {
        let n_bits = 1 + rng.gen_below(4) as usize;
        let bits: Vec<bool> = (0..n_bits).map(|_| rng.gen_bool(0.5)).collect();
        let step = rng.gen_range(0.4, 0.9);
        let style = GestureStyle {
            forward_step_m: step,
            backward_step_m: step, // symmetric for exact return
            gesture_duration_s: 2.0,
            pause_s: 0.5,
        };
        let base = Point::new(0.0, 3.0);
        let g = GestureScript::for_bits(base, Vec2::new(0.0, -1.0), style, 0.0, &bits);
        let end = g.position(g.duration() + 1.0);
        assert!(end.distance(base) < 1e-9, "ended {end:?}");
    }
}

#[test]
fn mirror_preserves_x_and_distance_to_wall() {
    let mut rng = Rng64::seed_from_u64(208);
    for _ in 0..CASES {
        let p = Point::new(rng.gen_range(-10.0, 10.0), rng.gen_range(-10.0, 10.0));
        let m = p.mirror_y();
        assert_eq!(m.x, p.x);
        assert_eq!(m.y, -p.y);
    }
}
