//! Property-based tests for the Wi-Vi algorithms' invariants.

use proptest::prelude::*;
use wivi_core::gesture::matched_filter;
use wivi_core::isar::{beamform_spectrum, synthetic_target_trace, IsarConfig};
use wivi_core::music::smoothed_correlation;
use wivi_core::nulling::{iterate_nulling_ideal, precoder_from_estimates};
use wivi_num::{hermitian_eig, Complex64};

fn nonzero_complex() -> impl Strategy<Value = Complex64> {
    (0.1f64..2.0, 0.0f64..std::f64::consts::TAU).prop_map(|(r, th)| Complex64::from_polar(r, th))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn precoder_nulls_true_channels_exactly(h1 in nonzero_complex(), h2 in nonzero_complex()) {
        let p = precoder_from_estimates(&[h1], &[h2]);
        prop_assert!((h1 + p[0] * h2).abs() < 1e-12 * (1.0 + h1.abs()));
    }

    #[test]
    fn iterative_nulling_contracts_under_lemma_hypothesis(
        h1 in nonzero_complex(),
        h2 in nonzero_complex(),
        err_frac in 0.005f64..0.08,
        err_phase in 0.0f64..std::f64::consts::TAU,
    ) {
        // The lemma's proof is a *first-order* Taylor analysis: it holds
        // for Δ₂ ≪ h₂. (Outside that regime — |Δ₂/h₂| ≳ 0.25 — the
        // alternating iteration can stall in a limit cycle, which
        // property exploration demonstrates; the radio's estimate errors
        // after AGC are far inside the small-error regime.)
        let d2 = h2 * Complex64::from_polar(err_frac, err_phase);
        let d1 = h1.scale(0.005);
        let res = iterate_nulling_ideal(h1, h2, d1, d2, 6);
        // The analysis also needs a non-degenerate starting residual:
        // when Δ₁ and Δ₂ happen to cancel, |h_res⁽⁰⁾| is second-order
        // small and the geometric bound is vacuous.
        let second_order = d1.abs() * d2.abs() / h2.abs();
        prop_assume!(res[0] > 20.0 * second_order);
        // Decay at the lemma's geometric rate, with slack for the
        // second-order terms the lemma drops.
        let bound = res[0] * (2.0 * err_frac).powi(3) + 1e-12;
        prop_assert!(res[6] <= bound, "res {:?} ratio {err_frac}", res);
    }

    #[test]
    fn beamformer_finds_planted_angle(sin_theta in -0.85f64..0.85, amp in 0.5f64..2.0) {
        let cfg = IsarConfig::fast_test();
        let trace = synthetic_target_trace(&cfg, 120, amp, 4.0, sin_theta * cfg.assumed_speed);
        let spec = beamform_spectrum(&trace, &cfg);
        let expected = sin_theta.asin().to_degrees();
        let found = spec.dominant_angle(0, 0.0).unwrap();
        prop_assert!((found - expected).abs() <= 8.0,
            "planted {expected:.1}°, found {found:.1}°");
    }

    #[test]
    fn beamform_power_scales_quadratically(amp in 0.2f64..2.0) {
        let cfg = IsarConfig::fast_test();
        let t1 = synthetic_target_trace(&cfg, 60, 1.0, 4.0, 0.4);
        let t2 = synthetic_target_trace(&cfg, 60, amp, 4.0, 0.4);
        let p1 = beamform_spectrum(&t1, &cfg).power[0][40];
        let p2 = beamform_spectrum(&t2, &cfg).power[0][40];
        prop_assert!((p2 / p1 - amp * amp).abs() < 1e-6 * (1.0 + amp * amp));
    }

    #[test]
    fn smoothed_correlation_is_psd_hermitian(
        sin_theta in -0.9f64..0.9,
        noise_seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let cfg = IsarConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg, 40, 1.0, 4.0, sin_theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
        for z in trace.iter_mut() {
            *z += Complex64::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
        }
        let r = smoothed_correlation(&trace, 20);
        prop_assert!(r.hermitian_deviation() < 1e-10);
        let eig = hermitian_eig(&r);
        prop_assert!(eig.values.iter().all(|&l| l > -1e-9));
    }

    #[test]
    fn matched_filter_is_shift_equivariant(shift in 1usize..20) {
        let template: Vec<f64> = (0..9).map(|i| 1.0 - (2.0 * i as f64 / 8.0 - 1.0).abs()).collect();
        let mut signal = vec![0.0; 128];
        for (j, &t) in template.iter().enumerate() {
            signal[40 + j] = t;
        }
        let mut shifted = vec![0.0; 128];
        for (j, &t) in template.iter().enumerate() {
            shifted[40 + shift + j] = t;
        }
        let peak = |xs: &[f64]| {
            xs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        let p1 = peak(&matched_filter(&signal, &template));
        let p2 = peak(&matched_filter(&shifted, &template));
        prop_assert_eq!(p2 - p1, shift);
    }

    #[test]
    fn matched_filter_is_linear(k in 0.1f64..5.0) {
        let template = vec![0.2, 0.6, 1.0, 0.6, 0.2];
        let signal: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let scaled: Vec<f64> = signal.iter().map(|x| x * k).collect();
        let a = matched_filter(&signal, &template);
        let b = matched_filter(&scaled, &template);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((y - x * k).abs() < 1e-9 * (1.0 + x.abs() * k));
        }
    }
}
