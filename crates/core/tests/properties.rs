//! Property-style tests for the Wi-Vi algorithms' invariants, driven by a
//! deterministic [`Rng64`] sample sweep (no third-party property-testing
//! crates are available offline).

use wivi_core::gesture::matched_filter;
use wivi_core::isar::{beamform_spectrum, synthetic_target_trace, IsarConfig};
use wivi_core::music::smoothed_correlation;
use wivi_core::nulling::{iterate_nulling_ideal, precoder_from_estimates};
use wivi_num::rng::Rng64;
use wivi_num::{hermitian_eig, Complex64};

const CASES: u64 = 48;

fn nonzero_complex(rng: &mut Rng64) -> Complex64 {
    Complex64::from_polar(
        rng.gen_range(0.1, 2.0),
        rng.gen_range(0.0, std::f64::consts::TAU),
    )
}

#[test]
fn precoder_nulls_true_channels_exactly() {
    let mut rng = Rng64::seed_from_u64(401);
    for _ in 0..CASES {
        let h1 = nonzero_complex(&mut rng);
        let h2 = nonzero_complex(&mut rng);
        let p = precoder_from_estimates(&[h1], &[h2]);
        assert!((h1 + p[0] * h2).abs() < 1e-12 * (1.0 + h1.abs()));
    }
}

#[test]
fn iterative_nulling_contracts_under_lemma_hypothesis() {
    let mut rng = Rng64::seed_from_u64(402);
    let mut tested = 0;
    for _ in 0..4 * CASES {
        let h1 = nonzero_complex(&mut rng);
        let h2 = nonzero_complex(&mut rng);
        let err_frac = rng.gen_range(0.005, 0.08);
        let err_phase = rng.gen_range(0.0, std::f64::consts::TAU);
        // The lemma's proof is a *first-order* Taylor analysis: it holds
        // for Δ₂ ≪ h₂. (Outside that regime — |Δ₂/h₂| ≳ 0.25 — the
        // alternating iteration can stall in a limit cycle, which
        // property exploration demonstrates; the radio's estimate errors
        // after AGC are far inside the small-error regime.)
        let d2 = h2 * Complex64::from_polar(err_frac, err_phase);
        let d1 = h1.scale(0.005);
        let res = iterate_nulling_ideal(h1, h2, d1, d2, 6);
        // The analysis also needs a non-degenerate starting residual:
        // when Δ₁ and Δ₂ happen to cancel, |h_res⁽⁰⁾| is second-order
        // small and the geometric bound is vacuous.
        let second_order = d1.abs() * d2.abs() / h2.abs();
        if res[0] <= 20.0 * second_order {
            continue;
        }
        tested += 1;
        // Decay at the lemma's geometric rate, with slack for the
        // second-order terms the lemma drops.
        let bound = res[0] * (2.0 * err_frac).powi(3) + 1e-12;
        assert!(res[6] <= bound, "res {res:?} ratio {err_frac}");
    }
    assert!(tested as u64 >= CASES, "only {tested} non-degenerate cases");
}

#[test]
fn beamformer_finds_planted_angle() {
    let mut rng = Rng64::seed_from_u64(403);
    for _ in 0..CASES {
        let sin_theta = rng.gen_range(-0.85, 0.85);
        let amp = rng.gen_range(0.5, 2.0);
        let cfg = IsarConfig::fast_test();
        let trace = synthetic_target_trace(&cfg, 120, amp, 4.0, sin_theta * cfg.assumed_speed);
        let spec = beamform_spectrum(&trace, &cfg);
        let expected = sin_theta.asin().to_degrees();
        let found = spec.dominant_angle(0, 0.0).unwrap();
        assert!(
            (found - expected).abs() <= 8.0,
            "planted {expected:.1}°, found {found:.1}°"
        );
    }
}

#[test]
fn beamform_power_scales_quadratically() {
    let mut rng = Rng64::seed_from_u64(404);
    for _ in 0..CASES {
        let amp = rng.gen_range(0.2, 2.0);
        let cfg = IsarConfig::fast_test();
        let t1 = synthetic_target_trace(&cfg, 60, 1.0, 4.0, 0.4);
        let t2 = synthetic_target_trace(&cfg, 60, amp, 4.0, 0.4);
        let p1 = beamform_spectrum(&t1, &cfg).power[0][40];
        let p2 = beamform_spectrum(&t2, &cfg).power[0][40];
        assert!((p2 / p1 - amp * amp).abs() < 1e-6 * (1.0 + amp * amp));
    }
}

#[test]
fn smoothed_correlation_is_psd_hermitian() {
    let mut rng = Rng64::seed_from_u64(405);
    for _ in 0..CASES {
        let sin_theta = rng.gen_range(-0.9, 0.9);
        let cfg = IsarConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg, 40, 1.0, 4.0, sin_theta);
        for z in trace.iter_mut() {
            *z += Complex64::new(rng.gen_range(-0.1, 0.1), rng.gen_range(-0.1, 0.1));
        }
        let r = smoothed_correlation(&trace, 20);
        assert!(r.hermitian_deviation() < 1e-10);
        let eig = hermitian_eig(&r);
        assert!(eig.values.iter().all(|&l| l > -1e-9));
    }
}

#[test]
fn matched_filter_is_shift_equivariant() {
    let mut rng = Rng64::seed_from_u64(406);
    for _ in 0..CASES {
        let shift = 1 + rng.gen_below(19) as usize;
        let template: Vec<f64> = (0..9)
            .map(|i| 1.0 - (2.0 * i as f64 / 8.0 - 1.0).abs())
            .collect();
        let mut signal = vec![0.0; 128];
        for (j, &t) in template.iter().enumerate() {
            signal[40 + j] = t;
        }
        let mut shifted = vec![0.0; 128];
        for (j, &t) in template.iter().enumerate() {
            shifted[40 + shift + j] = t;
        }
        let peak = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let p1 = peak(&matched_filter(&signal, &template));
        let p2 = peak(&matched_filter(&shifted, &template));
        assert_eq!(p2 - p1, shift);
    }
}

#[test]
fn matched_filter_is_linear() {
    let mut rng = Rng64::seed_from_u64(407);
    for _ in 0..CASES {
        let k = rng.gen_range(0.1, 5.0);
        let template = vec![0.2, 0.6, 1.0, 0.6, 0.2];
        let signal: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let scaled: Vec<f64> = signal.iter().map(|x| x * k).collect();
        let a = matched_filter(&signal, &template);
        let b = matched_filter(&scaled, &template);
        for (x, y) in a.iter().zip(&b) {
            assert!((y - x * k).abs() < 1e-9 * (1.0 + x.abs() * k));
        }
    }
}
