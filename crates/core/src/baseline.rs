//! Baseline systems Wi-Vi is compared against.
//!
//! Two baselines from the paper's narrative are implemented so the
//! evaluation can regenerate the comparisons:
//!
//! * **Conventional beamforming** (Eq. 5.1, [`crate::isar`]) versus
//!   smoothed MUSIC — §5.2 footnote 6: beamforming "incurs significant
//!   side lobes which would otherwise mask part of signal reflected from
//!   different objects". [`peak_sharpness`] quantifies the comparison.
//! * **A narrowband Doppler detector without nulling** — the related-work
//!   approach (§2.1: systems that "ignore the flash effect and try to
//!   operate in presence of high interference ... the flash effect limits
//!   their detection capabilities"). [`doppler_motion_energy`] measures
//!   the temporal channel variation a radio sees *without* nulling: the
//!   AGC must accommodate the flash, so through-wall motion drops under
//!   the quantization floor, while the same detector works in free space.

use wivi_num::Complex64;
use wivi_sdr::MimoFrontend;

use crate::spectrogram::AngleSpectrogram;

/// Mean −3 dB peak width of a spectrogram, in angle bins (smaller =
/// sharper). Used to show MUSIC's super-resolution over beamforming.
pub fn peak_sharpness(spec: &AngleSpectrogram) -> f64 {
    let mut total = 0usize;
    for row in &spec.power {
        let peak = row.iter().copied().fold(0.0f64, f64::max);
        total += row.iter().filter(|&&p| p > peak / 2.0).count();
    }
    total as f64 / spec.n_times() as f64
}

/// Report of the no-nulling Doppler baseline.
#[derive(Clone, Copy, Debug)]
pub struct DopplerReport {
    /// Mean first-difference power of the raw channel — energy caused by
    /// motion (plus noise).
    pub motion_energy: f64,
    /// The RX gain the AGC settled on (set by the flash).
    pub rx_gain: f64,
}

/// Measures raw-channel motion energy *without nulling*: repeatedly sounds
/// TX antenna 1 at the channel rate after a single AGC pass, then computes
/// the mean power of the first difference of the channel time series
/// (static paths and DC cancel; motion and noise remain).
pub fn doppler_motion_energy(
    fe: &mut MimoFrontend,
    n_samples: usize,
    agc_target: f64,
) -> DopplerReport {
    assert!(n_samples >= 2, "need at least two samples to difference");
    assert!(agc_target > 0.0 && agc_target < 1.0);

    // AGC against the raw (un-nulled) channel: the flash dictates the gain.
    fe.set_rx_gain(1.0);
    let probe = fe.sound(0);
    if probe.outcome.peak_relative > 0.0 {
        fe.set_rx_gain(agc_target / probe.outcome.peak_relative);
    }

    let period = 1.0 / fe.cfg().channel_rate_hz;
    let dwell = fe.cfg().sounding_dwell_s;
    let mut series: Vec<Complex64> = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        series.push(fe.sound(0).combined());
        // sound() advances by its dwell; pad to the channel period.
        if period > dwell {
            fe.advance(period - dwell);
        }
    }

    let diff_power = series
        .windows(2)
        .map(|w| (w[1] - w[0]).norm_sqr())
        .sum::<f64>()
        / (n_samples - 1) as f64;

    DopplerReport {
        motion_energy: diff_power,
        rx_gain: fe.rx_gain(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isar::{beamform_spectrum, synthetic_target_trace};
    use crate::music::{music_spectrum, MusicConfig};
    use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};
    use wivi_sdr::RadioConfig;

    fn walker() -> Mover {
        Mover::human(WaypointWalker::new(
            vec![Point::new(-1.0, 3.5), Point::new(1.0, 1.5)],
            1.0,
        ))
    }

    /// Mechanism tests pin their own noise level (they probe physics, not
    /// the calibrated defaults).
    fn quiet_radio() -> RadioConfig {
        RadioConfig {
            noise_sigma: 4e-5,
            ..RadioConfig::fast_test()
        }
    }

    #[test]
    fn music_sharper_than_beamforming_on_same_trace() {
        let cfg = MusicConfig::fast_test();
        let trace = synthetic_target_trace(&cfg.isar, 160, 1.0, 4.0, 0.5);
        let bf = beamform_spectrum(&trace, &cfg.isar);
        let mu = music_spectrum(&trace, &cfg);
        assert!(
            peak_sharpness(&mu) < peak_sharpness(&bf),
            "MUSIC {:.1} bins vs beamforming {:.1} bins",
            peak_sharpness(&mu),
            peak_sharpness(&bf)
        );
    }

    #[test]
    fn doppler_baseline_sees_motion_in_free_space() {
        let with_human = {
            let scene = Scene::new(Material::FreeSpace).with_mover(walker());
            let mut fe = MimoFrontend::new(scene, quiet_radio(), 5);
            doppler_motion_energy(&mut fe, 48, 0.25).motion_energy
        };
        let empty = {
            let scene = Scene::new(Material::FreeSpace);
            let mut fe = MimoFrontend::new(scene, quiet_radio(), 5);
            doppler_motion_energy(&mut fe, 48, 0.25).motion_energy
        };
        assert!(
            with_human > 5.0 * empty,
            "free-space Doppler failed: human {with_human:.3e} vs empty {empty:.3e}"
        );
    }

    #[test]
    fn flash_degrades_unnulled_doppler_detection_margin() {
        // §2.1's story: without nulling, the flash forces a low AGC gain,
        // crushing the through-wall motion signature toward the
        // quantization/noise floor. Compare detection margins
        // (human/empty energy ratio) in free space vs through a wall.
        let margin = |material: Material, seed: u64| {
            let h = {
                let scene = Scene::new(material).with_mover(walker());
                let mut fe = MimoFrontend::new(scene, quiet_radio(), seed);
                doppler_motion_energy(&mut fe, 48, 0.25).motion_energy
            };
            let e = {
                let scene = Scene::new(material);
                let mut fe = MimoFrontend::new(scene, quiet_radio(), seed);
                doppler_motion_energy(&mut fe, 48, 0.25).motion_energy
            };
            h / e
        };
        let free = margin(Material::FreeSpace, 6);
        let wall = margin(Material::ConcreteWall8In, 6);
        assert!(
            wall < free / 3.0,
            "flash did not degrade the baseline: free {free:.1}× vs wall {wall:.1}×"
        );
    }

    #[test]
    fn agc_gain_lower_with_flash_present() {
        // The flash eats dynamic range: the AGC settles on a smaller gain
        // through a reflective wall than in free space.
        let gain = |material: Material| {
            let scene = Scene::new(material);
            let mut fe = MimoFrontend::new(scene, RadioConfig::fast_test(), 7);
            doppler_motion_energy(&mut fe, 4, 0.25).rx_gain
        };
        assert!(gain(Material::ConcreteWall8In) < gain(Material::FreeSpace));
    }
}
