//! The keyed engine registry serving shards hold their per-window
//! scratch in.
//!
//! A serving shard multiplexes many sessions, and all sessions with the
//! same configuration share one resident engine — one steering table,
//! one correlation matrix, one eigendecomposition workspace (the PR-1
//! zero-allocation design extended from per-device to per-shard). The
//! original cache hard-coded one accessor per engine type, which made
//! the serving layer a closed shop: a new sensing mode with its own
//! engine meant editing the cache. [`EngineCache`] is the open
//! replacement — a registry keyed by *engine type* and *configuration
//! value*, so any crate can teach shards to host its engine by
//! implementing [`ShardEngine`] and calling
//! [`EngineCache::engine::<E>(&cfg)`](EngineCache::engine).
//!
//! Engines must hold no cross-window state (the serving determinism
//! contract): an engine borrowed per batch by interleaved sessions must
//! produce, for each session, exactly what a privately owned engine
//! would. Every engine registered here honours that.

use std::any::{Any, TypeId};

use crate::isar::{BeamformEngine, IsarConfig};
use crate::music::{MusicConfig, MusicEngine};

/// A heavy per-window engine that serving shards may host and share
/// across same-configuration sessions.
///
/// Implementors promise the engine is a pure function of
/// (configuration, window contents, per-call runtime parameters): no
/// state survives from one window to the next, so borrowing one engine
/// from many interleaved sessions is bitwise-invisible.
pub trait ShardEngine: Send + 'static {
    /// The configuration that fully determines the engine. Engines are
    /// cached per distinct configuration *value*.
    type Config: PartialEq + Clone + Send + 'static;

    /// Builds the engine for `cfg` (the expensive step the cache
    /// amortizes across sessions).
    fn build(cfg: &Self::Config) -> Self;
}

impl ShardEngine for MusicEngine {
    type Config = MusicConfig;

    fn build(cfg: &MusicConfig) -> Self {
        MusicEngine::new(*cfg)
    }
}

impl ShardEngine for BeamformEngine {
    type Config = IsarConfig;

    fn build(cfg: &IsarConfig) -> Self {
        BeamformEngine::new(*cfg)
    }
}

/// One cache slot: every engine of a single concrete type, keyed by
/// configuration. Object-safe so the cache can hold slots for engine
/// types it has never heard of.
trait EngineSlot: Send {
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Engines resident in this slot.
    fn count(&self) -> usize;
}

/// The typed storage behind a slot: a linear scan over configuration
/// keys (shards see a handful of distinct configurations at most).
struct SlotVec<E: ShardEngine>(Vec<(E::Config, E)>);

impl<E: ShardEngine> EngineSlot for SlotVec<E> {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn count(&self) -> usize {
        self.0.len()
    }
}

/// Configuration-keyed engine pool, one per serving shard: any number
/// of engine types, any number of configurations per type, each engine
/// built on first use and shared by every session that asks for the
/// same `(type, configuration)` pair thereafter.
#[derive(Default)]
pub struct EngineCache {
    slots: Vec<(TypeId, Box<dyn EngineSlot>)>,
}

impl EngineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resident engine of type `E` for `cfg`, building it on first
    /// use. Same-configuration callers share one engine — N
    /// same-config sessions on a shard mean one steering table, not N.
    pub fn engine<E: ShardEngine>(&mut self, cfg: &E::Config) -> &mut E {
        let tid = TypeId::of::<E>();
        let slot = match self.slots.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                self.slots.push((tid, Box::new(SlotVec::<E>(Vec::new()))));
                self.slots.len() - 1
            }
        };
        let vec = &mut self.slots[slot]
            .1
            .as_any_mut()
            .downcast_mut::<SlotVec<E>>()
            .expect("slot type pinned by TypeId")
            .0;
        match vec.iter().position(|(c, _)| c == cfg) {
            Some(i) => {
                hooks::cache_hit();
                &mut vec[i].1
            }
            None => {
                hooks::cache_miss();
                vec.push((cfg.clone(), E::build(cfg)));
                &mut vec.last_mut().unwrap().1
            }
        }
    }

    /// Number of distinct engines currently resident, across all engine
    /// types — the shard's sharing-degree telemetry (N same-config
    /// sessions still mean one engine).
    pub fn len(&self) -> usize {
        self.slots.iter().map(|(_, s)| s.count()).sum()
    }

    /// `true` if no engine has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hit/miss counters on the global obs registry, `WIVI_OBS`-gated.
/// Handles are built once (registration takes a lock) and the gated
/// fast path is a static load + branch when observability is off.
mod hooks {
    use std::sync::OnceLock;
    use wivi_obs::Counter;

    fn counter(which: &str) -> wivi_obs::Counter {
        wivi_obs::global().counter(&format!("core.engine_cache.{which}"))
    }

    #[inline]
    pub(super) fn cache_hit() {
        if !wivi_obs::enabled() {
            return;
        }
        static HITS: OnceLock<Counter> = OnceLock::new();
        HITS.get_or_init(|| counter("hits")).inc();
    }

    #[inline]
    pub(super) fn cache_miss() {
        if !wivi_obs::enabled() {
            return;
        }
        static MISSES: OnceLock<Counter> = OnceLock::new();
        MISSES.get_or_init(|| counter("misses")).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy engine: proves the registry is open to engine types this
    /// crate has never heard of.
    struct Counter {
        built_for: u32,
    }

    impl ShardEngine for Counter {
        type Config = u32;

        fn build(cfg: &u32) -> Self {
            Counter { built_for: *cfg }
        }
    }

    #[test]
    fn same_config_shares_one_engine() {
        let mut cache = EngineCache::new();
        assert!(cache.is_empty());
        let cfg = MusicConfig::fast_test();
        let a = cache.engine::<MusicEngine>(&cfg) as *mut MusicEngine;
        let b = cache.engine::<MusicEngine>(&cfg) as *mut MusicEngine;
        assert_eq!(a, b, "same configuration must yield the same engine");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_types_get_distinct_engines() {
        let mut cache = EngineCache::new();
        let cfg = MusicConfig::fast_test();
        cache.engine::<MusicEngine>(&cfg);
        cache.engine::<BeamformEngine>(&cfg.isar);
        cache.engine::<Counter>(&7);
        assert_eq!(cache.engine::<Counter>(&7).built_for, 7);
        assert_eq!(cache.engine::<Counter>(&9).built_for, 9);
        assert_eq!(cache.len(), 4);
    }
}
