//! Wi-Vi core: the paper's primary contribution.
//!
//! This crate implements the complete Wi-Vi pipeline of *"See Through
//! Walls with Wi-Fi!"* (Adib & Katabi, SIGCOMM 2013) on top of the
//! simulated radio front-end in `wivi-sdr`:
//!
//! * [`nulling`] — MIMO interference nulling (Algorithm 1): initial
//!   nulling, power boosting, and iterative nulling with the exponential
//!   convergence of Lemma 4.1.1. This removes the "flash" — reflections
//!   from the wall and every other static object — so the minute
//!   reflections of moving bodies become measurable.
//! * [`isar`] — inverse synthetic aperture processing (§5.1): consecutive
//!   channel samples are treated as an emulated antenna array and
//!   beamformed in time rather than space.
//! * [`music`] — the smoothed MUSIC direction estimator (§5.2), the
//!   super-resolution variant used for all the paper's figures.
//! * [`spectrogram`] — the `A′[θ, n]` angle–time representation shared by
//!   the trackers, plus ASCII heatmap rendering of the paper's figures.
//! * [`counting`] — spatial-variance human counting (Eq. 5.4–5.5,
//!   Table 7.1).
//! * [`gesture`] — the through-wall gesture channel (Ch. 6): matched
//!   filters, peak detection with the 3 dB SNR rule, and bit decoding
//!   with erasures.
//! * [`stage`] — the composable streaming pipeline: trackers as
//!   [`Stage`]s that consume channel-sample batches incrementally and
//!   emit `A′[θ, n]` columns as analysis windows complete, bitwise
//!   identical to the offline entry points.
//! * [`cache`] — the keyed engine registry serving shards share their
//!   per-window engines through: any crate registers its engine type via
//!   [`ShardEngine`], and same-configuration sessions share one resident
//!   engine.
//! * [`device`] — [`WiViDevice`], the end-to-end device tying all stages
//!   together in the paper's two operating modes, with both one-shot and
//!   batch-streaming entry points.
//! * [`baseline`] — comparison systems: conventional beamforming (what
//!   MUSIC is shown to beat in §5.2) and a narrowband Doppler detector
//!   without nulling (the related-work approach the flash defeats, §2.1).

pub mod baseline;
pub mod cache;
pub mod counting;
pub mod device;
pub mod gesture;
pub mod isar;
pub mod music;
pub mod nulling;
pub mod spectrogram;
pub mod stage;

pub use cache::{EngineCache, ShardEngine};
pub use device::{WiViConfig, WiViDevice};
pub use isar::{BeamformEngine, IsarConfig};
pub use music::{MusicConfig, MusicEngine};
pub use nulling::{NullingConfig, NullingReport};
pub use spectrogram::AngleSpectrogram;
pub use stage::{
    SharedStreamingBeamform, SharedStreamingMusic, Stage, StreamingBeamform, StreamingMusic,
    WindowBuffer,
};
