//! The smoothed MUSIC super-resolution direction estimator (paper §5.2).
//!
//! With several humans moving at once the received trace is a
//! superposition of their emulated arrays, and — because everyone reflects
//! the *same* transmitted signal — the components are mutually correlated.
//! Plain MUSIC fails on coherent sources, so Wi-Vi uses *spatially
//! smoothed* MUSIC (Shan, Wax & Kailath, ref.\[32\]):
//!
//! 1. split each length-`w` window into overlapping subarrays of size
//!    `w′ < w`;
//! 2. average the subarray correlation matrices: `R = Σ_s h_s·h_s^H`
//!    (Eq. 5.2) — the different spatial shifts de-correlate the bodies;
//! 3. eigendecompose `R`, split signal subspace (large eigenvalues: the
//!    movers plus the DC) from noise subspace;
//! 4. score each direction by the inverse of its projection onto the
//!    noise subspace (Eq. 5.3) — steering vectors orthogonal to the noise
//!    space (i.e. real sources) spike sharply.
//!
//! Implementation note: the noise-space norm is computed via the signal
//! space, `‖U_N^H e‖² = ‖e‖² − ‖U_S^H e‖²`, which needs only
//! `k_signal ≪ w′` inner products per angle.

use wivi_num::eig::{hermitian_eig_in, EigWorkspace};
use wivi_num::{simd, CMatrix, Complex64};

use crate::isar::IsarConfig;
use crate::spectrogram::AngleSpectrogram;
use crate::stage::{Stage, StreamingMusic};

/// Smoothed-MUSIC parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MusicConfig {
    /// The emulated-array parameters (window `w`, hop, spacing, angles).
    pub isar: IsarConfig,
    /// Subarray size `w′` (< window). The paper does not state its value;
    /// `w/2` is the standard smoothing choice and resolves up to `w/2 − 1`
    /// coherent sources.
    pub subarray: usize,
    /// Upper bound on the signal-subspace dimension (movers × body parts
    /// + DC). Eigenvalues beyond this count are noise regardless of size.
    pub max_sources: usize,
    /// An eigenvalue is "signal" if it exceeds the noise floor by this
    /// many dB.
    pub signal_threshold_db: f64,
    /// The trace's per-sample noise power `E|n|²` (the thermal floor of
    /// the subcarrier-combined channel samples), when known. A real
    /// receiver measures this once with a terminated input; the device
    /// layer computes it from the radio configuration. With the floor
    /// known, signal/noise subspace separation is an *absolute* test —
    /// noise eigenvalues of the smoothed correlation concentrate at the
    /// floor (±2.5 dB empirically) while bodies sit 6–30 dB above.
    /// Without it (`None`), a lower-quartile heuristic is used, which is
    /// markedly less reliable for the large `w′ = 50` windows.
    pub noise_floor_power: Option<f64>,
}

impl MusicConfig {
    /// The paper's configuration: w = 100, w′ = 50.
    pub fn wivi_default() -> Self {
        Self {
            isar: IsarConfig::wivi_default(),
            subarray: 50,
            max_sources: 12,
            signal_threshold_db: 5.0,
            noise_floor_power: None,
        }
    }

    /// Reduced configuration for fast unit tests (w = 40, w′ = 20).
    pub fn fast_test() -> Self {
        Self {
            isar: IsarConfig::fast_test(),
            subarray: 20,
            max_sources: 8,
            signal_threshold_db: 6.0,
            noise_floor_power: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        self.isar.validate();
        assert!(
            self.subarray >= 2 && self.subarray < self.isar.window,
            "subarray w′ must satisfy 2 <= w' < w"
        );
        assert!(self.max_sources >= 1 && self.max_sources < self.subarray);
        assert!(self.signal_threshold_db > 0.0);
    }
}

/// One analysis window's eigen-structure (exposed for diagnostics and the
/// ablation benches).
#[derive(Clone, Debug)]
pub struct WindowEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Estimated signal-subspace dimension.
    pub n_signal: usize,
}

/// Computes the smoothed correlation matrix of one window (Eq. 5.2 with
/// the §5.2 smoothing step).
pub fn smoothed_correlation(window: &[Complex64], subarray: usize) -> CMatrix {
    let mut r = CMatrix::zeros(subarray, subarray);
    smoothed_correlation_into(window, subarray, &mut r);
    r
}

/// [`smoothed_correlation`] into a caller-provided (reused) matrix — the
/// allocation-free accumulation step of the streaming tracker. The matrix
/// is zeroed first, so a reused buffer is indistinguishable from a fresh
/// one.
///
/// # Panics
/// Panics if `subarray > window.len()` or the matrix is not
/// `subarray × subarray`.
pub fn smoothed_correlation_into(window: &[Complex64], subarray: usize, r: &mut CMatrix) {
    assert!(subarray <= window.len(), "subarray larger than window");
    assert_eq!(
        (r.rows(), r.cols()),
        (subarray, subarray),
        "correlation buffer shape mismatch"
    );
    let n_sub = window.len() - subarray + 1;
    r.fill_zero();
    for s in 0..n_sub {
        r.add_outer(&window[s..s + subarray], 1.0 / n_sub as f64);
    }
}

/// The reusable per-window smoothed-MUSIC processor: precomputed steering
/// vectors plus correlation/eigendecomposition scratch. One engine serves
/// both the offline [`music_spectrum`] path and the incremental
/// [`StreamingMusic`] stage, so the two are
/// bitwise identical by construction; window-rate processing performs no
/// heap allocation beyond the emitted row itself.
pub struct MusicEngine {
    cfg: MusicConfig,
    thetas: Vec<f64>,
    /// The steering table transposed to antenna-major order: row `i`
    /// holds element `i` of every angle's steering vector
    /// (`sub × n_angles`). Angle-contiguous rows let the projection run
    /// as one [`simd::caxpy`] per (eigenvector, antenna) pair instead of
    /// an angle-at-a-time scalar dot; the per-angle accumulation order
    /// (over `i`, then over signal index `j`) is unchanged, so the row
    /// is bitwise identical to the historical nested loop.
    steer_flat: Vec<Complex64>,
    /// `‖e‖²` for the unit-modulus steering vectors.
    e_norm_sqr: f64,
    corr: CMatrix,
    eig_ws: EigWorkspace,
    /// Per-angle complex projection accumulator (one eigenvector at a
    /// time), reused across windows.
    proj: Vec<Complex64>,
    /// Per-angle `Σ_j |u_j^H e|²` accumulator, reused across windows.
    sig_proj: Vec<f64>,
}

impl MusicEngine {
    /// Builds an engine for `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`MusicConfig::validate`]).
    pub fn new(cfg: MusicConfig) -> Self {
        cfg.validate();
        let thetas = cfg.isar.thetas_deg();
        let steering: Vec<Vec<Complex64>> = thetas
            .iter()
            .map(|&th| cfg.isar.steering_vector(th, cfg.subarray))
            .collect();
        // Transpose to antenna-major (see the field docs).
        let n_angles = thetas.len();
        let mut steer_flat = vec![Complex64::ZERO; cfg.subarray * n_angles];
        for (ang, e) in steering.iter().enumerate() {
            for (i, &ei) in e.iter().enumerate() {
                steer_flat[i * n_angles + ang] = ei;
            }
        }
        Self {
            cfg,
            thetas,
            steer_flat,
            e_norm_sqr: cfg.subarray as f64,
            corr: CMatrix::zeros(cfg.subarray, cfg.subarray),
            eig_ws: EigWorkspace::new(cfg.subarray),
            proj: vec![Complex64::ZERO; n_angles],
            sig_proj: vec![0.0; n_angles],
        }
    }

    /// The engine's configuration.
    pub fn cfg(&self) -> &MusicConfig {
        &self.cfg
    }

    /// The angle grid shared by every emitted row.
    pub fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }

    /// Processes one analysis window into a pseudospectrum row (Eq. 5.3)
    /// plus its eigen-structure.
    ///
    /// # Panics
    /// Panics if `window.len()` differs from the configured window.
    pub fn process_window(&mut self, window: &[Complex64]) -> (Vec<f64>, WindowEigen) {
        assert_eq!(window.len(), self.cfg.isar.window, "window length mismatch");
        let _span = wivi_obs::span("music.window");
        smoothed_correlation_into(window, self.cfg.subarray, &mut self.corr);
        hermitian_eig_in(&self.corr, &mut self.eig_ws);
        let n_signal = signal_subspace_dim(
            self.eig_ws.values(),
            self.cfg.signal_threshold_db,
            self.cfg.max_sources,
            self.cfg.noise_floor_power,
        );

        let u = self.eig_ws.vectors();
        let e_norm_sqr = self.e_norm_sqr;
        // ‖U_N^H e‖² = ‖e‖² − Σ_signal |u_j^H e|², with the inner
        // product accumulated angle-parallel: one caxpy per
        // (eigenvector, antenna) pair over the angle-contiguous steering
        // row. Each angle still sums its terms in the historical
        // `i`-then-`j` order, so the row is bitwise unchanged.
        let n_angles = self.thetas.len();
        let sub = self.cfg.subarray;
        self.sig_proj.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n_signal {
            self.proj.iter_mut().for_each(|p| *p = Complex64::ZERO);
            for i in 0..sub {
                let x = &self.steer_flat[i * n_angles..(i + 1) * n_angles];
                simd::caxpy(&mut self.proj, x, u[(i, j)].conj());
            }
            for (sp, pj) in self.sig_proj.iter_mut().zip(&self.proj) {
                *sp += pj.norm_sqr();
            }
        }
        // One aggregated probe flush for the whole projection loop.
        wivi_num::probe::count_kernel(wivi_num::probe::Kernel::Caxpy, (n_signal * sub) as u64);
        let row: Vec<f64> = self
            .sig_proj
            .iter()
            .map(|&sig_proj| {
                let noise_norm = (e_norm_sqr - sig_proj).max(e_norm_sqr * 1e-12);
                // Normalized so that a steering vector with *no* signal
                // alignment scores exactly 1: the pseudospectrum has an
                // absolute floor, which downstream statistics (ridge
                // thresholds, spatial variance) rely on.
                e_norm_sqr / noise_norm
            })
            .collect();

        let eigen = WindowEigen {
            eigenvalues: self.eig_ws.values().to_vec(),
            n_signal,
        };
        (row, eigen)
    }
}

/// Estimates the signal-subspace dimension from a descending eigenvalue
/// sequence: eigenvalues more than `threshold_db` above the noise floor,
/// capped at `max_sources`, and at least 1 (the DC component is always
/// present).
///
/// The floor is `noise_floor_power` when the receiver knows it (see
/// [`MusicConfig::noise_floor_power`]); otherwise it falls back to the
/// lower-quartile eigenvalue.
pub fn signal_subspace_dim(
    eigenvalues: &[f64],
    threshold_db: f64,
    max_sources: usize,
    noise_floor_power: Option<f64>,
) -> usize {
    let floor = noise_floor_power.unwrap_or_else(|| {
        let mut sorted = eigenvalues.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 4]
    });
    let cut = floor.max(1e-300) * 10f64.powf(threshold_db / 10.0);
    eigenvalues
        .iter()
        .take(max_sources)
        .filter(|&&l| l > cut)
        .count()
        .max(1)
}

/// Runs smoothed MUSIC over a nulled-channel trace, producing the paper's
/// `A′[θ, n]` (Eq. 5.3) as an [`AngleSpectrogram`], plus the per-window
/// eigen-structure.
///
/// This is the *offline* entry point; it drives the same
/// [`StreamingMusic`] stage the incremental pipeline uses, fed in one
/// push, so batch-incremental and one-shot processing agree bit-for-bit.
pub fn music_spectrum_with_eigen(
    trace: &[Complex64],
    cfg: &MusicConfig,
) -> (AngleSpectrogram, Vec<WindowEigen>) {
    cfg.validate();
    assert!(
        trace.len() >= cfg.isar.window,
        "trace shorter ({}) than the analysis window ({})",
        trace.len(),
        cfg.isar.window
    );
    let mut stage = StreamingMusic::new(*cfg);
    stage.push(trace);
    stage.finish_with_eigen()
}

/// Runs smoothed MUSIC over a nulled-channel trace (the common entry
/// point; discards the eigen diagnostics).
pub fn music_spectrum(trace: &[Complex64], cfg: &MusicConfig) -> AngleSpectrogram {
    music_spectrum_with_eigen(trace, cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isar::synthetic_target_trace;
    use wivi_num::hermitian_eig;
    use wivi_num::rng::{complex_gaussian, Rng64};

    fn add_noise(trace: &mut [Complex64], sigma: f64, seed: u64) {
        let mut rng = Rng64::seed_from_u64(seed);
        for z in trace.iter_mut() {
            *z += complex_gaussian(&mut rng, sigma);
        }
    }

    fn add_traces(a: &mut [Complex64], b: &[Complex64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    }

    #[test]
    fn single_target_spikes_at_true_angle() {
        let cfg = MusicConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg.isar, 200, 1.0, 4.0, 0.5);
        add_noise(&mut trace, 0.05, 1);
        let spec = music_spectrum(&trace, &cfg);
        let th = spec.dominant_angle(0, 0.0).unwrap();
        assert!(
            (th - 30.0).abs() <= 6.0,
            "MUSIC peak at {th}° (expected 30°)"
        );
    }

    #[test]
    fn dc_plus_target_shows_both() {
        let cfg = MusicConfig::fast_test();
        let mut trace = vec![Complex64::new(0.8, -0.2); 200]; // DC
        let target = synthetic_target_trace(&cfg.isar, 200, 0.6, 4.0, -0.6);
        add_traces(&mut trace, &target);
        add_noise(&mut trace, 0.02, 2);
        let spec = music_spectrum(&trace, &cfg);
        let db = spec.db_floor_normalized();
        let dc_bin = spec.angle_index(0.0);
        let tgt_bin = spec.angle_index(-36.9); // sinθ = −0.6
        let floor_bin = spec.angle_index(60.0);
        assert!(db[0][dc_bin] > db[0][floor_bin] + 3.0, "no DC ridge");
        assert!(db[0][tgt_bin] > db[0][floor_bin] + 3.0, "no target ridge");
    }

    #[test]
    fn two_coherent_targets_resolved_by_smoothing() {
        // Two bodies reflecting the same signal: correlated returns. The
        // smoothing step must still resolve both angles.
        let cfg = MusicConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg.isar, 240, 1.0, 4.0, 0.7);
        let second = synthetic_target_trace(&cfg.isar, 240, 1.0, 6.0, -0.45);
        add_traces(&mut trace, &second);
        add_noise(&mut trace, 0.03, 3);
        let spec = music_spectrum(&trace, &cfg);
        let db = spec.db_floor_normalized();
        let floor = spec.angle_index(10.0);
        let b1 = spec.angle_index(44.4); // sinθ = 0.7
        let b2 = spec.angle_index(-26.7); // sinθ = −0.45
        let mut hits = 0;
        for row in &db {
            if row[b1] > row[floor] + 3.0 && row[b2] > row[floor] + 3.0 {
                hits += 1;
            }
        }
        assert!(
            hits * 2 >= spec.n_times(),
            "both targets visible in only {hits}/{} windows",
            spec.n_times()
        );
    }

    #[test]
    fn eigen_count_tracks_source_count() {
        let cfg = MusicConfig::fast_test();
        // One clean synthetic target: signal dimension should stay small.
        let mut one = synthetic_target_trace(&cfg.isar, 200, 1.0, 4.0, 0.5);
        add_noise(&mut one, 0.01, 4);
        let (_, eig1) = music_spectrum_with_eigen(&one, &cfg);
        let mean1: f64 = eig1.iter().map(|e| e.n_signal as f64).sum::<f64>() / eig1.len() as f64;

        let mut three = synthetic_target_trace(&cfg.isar, 200, 1.0, 4.0, 0.5);
        add_traces(
            &mut three,
            &synthetic_target_trace(&cfg.isar, 200, 1.0, 5.0, -0.4),
        );
        add_traces(
            &mut three,
            &synthetic_target_trace(&cfg.isar, 200, 1.0, 6.0, 0.9),
        );
        add_noise(&mut three, 0.01, 5);
        let (_, eig3) = music_spectrum_with_eigen(&three, &cfg);
        let mean3: f64 = eig3.iter().map(|e| e.n_signal as f64).sum::<f64>() / eig3.len() as f64;

        assert!(
            mean3 > mean1,
            "signal dimension did not grow: {mean1:.2} vs {mean3:.2}"
        );
    }

    #[test]
    fn music_peaks_sharper_than_beamforming() {
        // §5.2: "MUSIC achieves sharper peaks ... often termed a
        // super-resolution technique". Compare half-power widths.
        let cfg = MusicConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg.isar, 200, 1.0, 4.0, 0.5);
        add_noise(&mut trace, 0.02, 6);

        let width = |spec: &AngleSpectrogram| {
            let row = &spec.power[0];
            let peak = row.iter().copied().fold(0.0f64, f64::max);
            row.iter().filter(|&&p| p > peak / 2.0).count()
        };
        let bf = crate::isar::beamform_spectrum(&trace, &cfg.isar);
        let mu = music_spectrum(&trace, &cfg);
        assert!(
            width(&mu) < width(&bf),
            "MUSIC ({}) not sharper than beamforming ({})",
            width(&mu),
            width(&bf)
        );
    }

    #[test]
    fn signal_dim_estimator_quartile_fallback() {
        // Lower quartile of [100, 50, 0.01 ×4] is 0.01: both large
        // eigenvalues clear a 9 dB cut above it.
        assert_eq!(
            signal_subspace_dim(&[100.0, 50.0, 0.01, 0.01, 0.01, 0.01], 9.0, 8, None),
            2
        );
        // Flat (pure-noise) spectrum: nothing clears the cut → DC minimum.
        assert_eq!(
            signal_subspace_dim(&[1.1, 1.05, 1.0, 0.95, 0.9], 9.0, 8, None),
            1
        );
        // Always at least 1.
        assert_eq!(signal_subspace_dim(&[0.0], 9.0, 8, None), 1);
    }

    #[test]
    fn signal_dim_estimator_absolute_floor() {
        // With a known noise floor the cut is absolute: floor 1.0, 6 dB
        // cut → eigenvalues above ~4.0 are signal, even if half of them
        // are strong.
        let eig = [100.0, 90.0, 80.0, 70.0, 1.3, 1.1, 0.9, 0.8];
        assert_eq!(signal_subspace_dim(&eig, 6.0, 8, Some(1.0)), 4);
        // Cap respected.
        assert_eq!(signal_subspace_dim(&eig, 6.0, 3, Some(1.0)), 3);
        // Nothing above the floor → DC minimum of 1.
        assert_eq!(signal_subspace_dim(&[0.5, 0.4], 6.0, 8, Some(1.0)), 1);
    }

    #[test]
    fn smoothed_correlation_is_hermitian_psd() {
        let cfg = MusicConfig::fast_test();
        let mut trace = synthetic_target_trace(&cfg.isar, 64, 1.0, 3.0, 0.4);
        add_noise(&mut trace, 0.1, 7);
        let r = smoothed_correlation(&trace[..cfg.isar.window], cfg.subarray);
        assert!(r.hermitian_deviation() < 1e-12);
        let eig = hermitian_eig(&r);
        assert!(eig.values.iter().all(|&l| l > -1e-10));
    }

    #[test]
    #[should_panic(expected = "w' < w")]
    fn rejects_subarray_not_smaller_than_window() {
        let mut cfg = MusicConfig::fast_test();
        cfg.subarray = cfg.isar.window;
        cfg.validate();
    }
}
