//! Through-wall gesture decoding (paper Ch. 6).
//!
//! The encoder side lives in `wivi-rf::motion` ([`wivi_rf::GestureScript`]:
//! a '0' bit is a step forward then a step backward; a '1' bit the
//! reverse — a Manchester-like code). This module is the receiver:
//!
//! 1. collapse the angle–time spectrum into a signed angle-energy track
//!    (forward steps drive it positive, backward steps negative —
//!    Fig. 6-1's triangles above/below the zero line);
//! 2. apply the two matched filters — "a triangle above the zero line,
//!    and an inverted triangle below the zero line" — and sum their
//!    outputs (Fig. 6-3(a));
//! 3. detect peaks; a gesture is accepted only if its matched-filter SNR
//!    exceeds 3 dB ("Wi-Vi decodes a gesture only when its SNR is greater
//!    than 3 dB", Fig. 7-4), which makes failures *erasures*, never bit
//!    flips (§7.5);
//! 4. pair consecutive gestures into bits: (+, −) → '0', (−, +) → '1'
//!    (Fig. 6-3(b)).

use crate::spectrogram::AngleSpectrogram;

/// Decoder tuning.
#[derive(Clone, Copy, Debug)]
pub struct GestureDecoderConfig {
    /// Matched-filter template duration, seconds — the duration of one
    /// step's motion (≈ 40 % of the ≈ 2.2 s gesture slot).
    pub template_duration_s: f64,
    /// Minimum matched-filter SNR to accept a gesture, dB (paper: 3 dB).
    pub snr_threshold_db: f64,
    /// Minimum temporal separation between detected gestures, seconds.
    pub min_separation_s: f64,
    /// Angle guard around the DC line, degrees (energy within ±guard is
    /// ignored; must exceed the beamformer's mainlobe half-width so the
    /// DC ridge cannot leak into the track).
    pub dc_guard_deg: f64,
    /// Length of the gesture-free lead-in used as the noise reference,
    /// seconds. The subject stands still for this long before signalling;
    /// the peak matched-filter output over the lead-in defines the 0 dB
    /// reference, so pure noise can never clear the 3 dB threshold —
    /// which is what makes Wi-Vi's failures erasures rather than bit
    /// flips (§7.5).
    pub noise_reference_s: f64,
}

impl Default for GestureDecoderConfig {
    fn default() -> Self {
        Self {
            template_duration_s: 0.9,
            snr_threshold_db: 3.0,
            min_separation_s: 1.4,
            dc_guard_deg: 20.0,
            noise_reference_s: 1.5,
        }
    }
}

/// One detected gesture.
#[derive(Clone, Copy, Debug)]
pub struct DetectedGesture {
    /// Peak time, seconds.
    pub time_s: f64,
    /// `+1` = step forward (toward the device), `−1` = step backward.
    pub polarity: i8,
    /// Matched-filter SNR of this gesture, dB.
    pub snr_db: f64,
}

/// Full decoder output.
#[derive(Clone, Debug)]
pub struct GestureDecode {
    /// The signed angle-energy track fed to the matched filter.
    pub track: Vec<f64>,
    /// Summed matched-filter output (Fig. 6-3(a)).
    pub matched: Vec<f64>,
    /// Window centre times, seconds.
    pub times_s: Vec<f64>,
    /// Gestures that passed the SNR threshold, in time order.
    pub gestures: Vec<DetectedGesture>,
    /// Decoded bits; each is `Some(bit)` or `None` for an erasure.
    pub bits: Vec<Option<bool>>,
}

impl GestureDecode {
    /// SNR of the weakest accepted gesture (the bit-level SNR the paper's
    /// Fig. 7-5 reports), or `None` if nothing was detected.
    pub fn min_gesture_snr_db(&self) -> Option<f64> {
        self.gestures
            .iter()
            .map(|g| g.snr_db)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

/// Symmetric triangle template of `len` taps, unit peak, zero mean is NOT
/// enforced (the track is already floor-referenced).
fn triangle(len: usize) -> Vec<f64> {
    assert!(len >= 3);
    (0..len)
        .map(|i| 1.0 - (2.0 * i as f64 / (len - 1) as f64 - 1.0).abs())
        .collect()
}

/// Normalized cross-correlation of `signal` with `template`, same-length
/// output (zero-padded edges).
pub fn matched_filter(signal: &[f64], template: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let m = template.len();
    let norm: f64 = template
        .iter()
        .map(|t| t * t)
        .sum::<f64>()
        .sqrt()
        .max(1e-12);
    (0..n)
        .map(|center| {
            let mut acc = 0.0;
            for (j, &t) in template.iter().enumerate() {
                // Template centred on `center`.
                let idx = center as isize + j as isize - (m / 2) as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += signal[idx as usize] * t;
                }
            }
            acc / norm
        })
        .collect()
}

/// Robust noise scale of a matched-filter output: median absolute value /
/// 0.6745 (consistent with σ for Gaussian noise, insensitive to the
/// gesture peaks themselves).
pub fn robust_noise_sigma(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut mags: Vec<f64> = xs.iter().map(|x| x.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = mags[mags.len() / 2];
    (median / 0.6745).max(1e-12)
}

/// The 0 dB detection reference: the peak matched-filter magnitude over
/// the gesture-free lead-in (`noise_reference_s`). Falls back to 3× the
/// robust sigma of the whole output when the lead-in is too short to be
/// meaningful.
fn noise_reference(matched: &[f64], times: &[f64], cfg: &GestureDecoderConfig) -> f64 {
    let lead: Vec<f64> = matched
        .iter()
        .zip(times)
        .take_while(|(_, &t)| t <= times[0] + cfg.noise_reference_s)
        .map(|(&m, _)| m.abs())
        .collect();
    let robust_floor = 3.0 * robust_noise_sigma(matched);
    if lead.len() >= 5 {
        lead.iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(robust_floor)
            .max(1e-12)
    } else {
        robust_floor
    }
}

/// Finds alternating-sign peaks above the SNR threshold with a minimum
/// separation, greedily from the strongest down. `reference` is the 0 dB
/// level (see [`noise_reference`]).
fn detect_peaks(
    matched: &[f64],
    times: &[f64],
    reference: f64,
    cfg: &GestureDecoderConfig,
) -> Vec<DetectedGesture> {
    let thresh = reference * 10f64.powf(cfg.snr_threshold_db / 20.0);
    // Candidate local extrema.
    let mut candidates: Vec<usize> = (1..matched.len().saturating_sub(1))
        .filter(|&i| {
            let m = matched[i].abs();
            m >= thresh && m >= matched[i - 1].abs() && m >= matched[i + 1].abs()
        })
        .collect();
    candidates.sort_by(|&a, &b| matched[b].abs().partial_cmp(&matched[a].abs()).unwrap());

    let mut picked: Vec<usize> = Vec::new();
    for c in candidates {
        if picked
            .iter()
            .all(|&p| (times[p] - times[c]).abs() >= cfg.min_separation_s)
        {
            picked.push(c);
        }
    }
    picked.sort_unstable();
    picked
        .into_iter()
        .map(|i| DetectedGesture {
            time_s: times[i],
            polarity: if matched[i] >= 0.0 { 1 } else { -1 },
            snr_db: 20.0 * (matched[i].abs() / reference).log10(),
        })
        .collect()
}

/// Pairs consecutive gestures into bits: (+, −) → '0', (−, +) → '1';
/// same-polarity pairs or a trailing unpaired gesture are erasures.
fn pair_bits(gestures: &[DetectedGesture]) -> Vec<Option<bool>> {
    let mut bits = Vec::new();
    let mut iter = gestures.chunks_exact(2);
    for pair in &mut iter {
        bits.push(match (pair[0].polarity, pair[1].polarity) {
            (1, -1) => Some(false),
            (-1, 1) => Some(true),
            _ => None,
        });
    }
    if !iter.remainder().is_empty() {
        bits.push(None);
    }
    bits
}

/// The signed *amplitude* track for gesture decoding: per window,
/// `Σ_{θ > guard} |A[θ]| − Σ_{θ < −guard} |A[θ]|`.
///
/// Unlike the MUSIC pseudospectrum (whose peak heights measure subspace
/// alignment, not signal strength), the Bartlett amplitude `|A[θ, n]|`
/// scales with the received reflection, so the matched-filter SNR falls
/// off with distance and wall attenuation the way Figs. 7-4/7-5/7-6
/// require. The DC ridge's sidelobes are symmetric about θ = 0 and cancel
/// in the signed sum; its mainlobe is excluded by the guard.
pub fn signed_amplitude_track(spec: &AngleSpectrogram, dc_guard_deg: f64) -> Vec<f64> {
    spec.power
        .iter()
        .map(|row| {
            let mut s = 0.0;
            for (a, &th) in spec.thetas_deg.iter().enumerate() {
                if th > dc_guard_deg {
                    s += row[a].sqrt();
                } else if th < -dc_guard_deg {
                    s -= row[a].sqrt();
                }
            }
            s
        })
        .collect()
}

/// Decodes the gesture message carried by a *beamformed* (Bartlett,
/// Eq. 5.1) angle–time spectrogram — see [`signed_amplitude_track`] for
/// why the amplitude-bearing spectrum, rather than the MUSIC
/// pseudospectrum, feeds the matched filter.
pub fn decode(spec: &AngleSpectrogram, cfg: &GestureDecoderConfig) -> GestureDecode {
    assert!(spec.n_times() >= 3, "spectrogram too short to decode");
    let track = signed_amplitude_track(spec, cfg.dc_guard_deg);
    let dt = if spec.times_s.len() >= 2 {
        spec.times_s[1] - spec.times_s[0]
    } else {
        1.0
    };
    let len = ((cfg.template_duration_s / dt).round() as usize).clamp(3, track.len());
    let matched = matched_filter(&track, &triangle(len));
    let reference = noise_reference(&matched, &spec.times_s, cfg);
    let gestures = detect_peaks(&matched, &spec.times_s, reference, cfg);
    let bits = pair_bits(&gestures);
    GestureDecode {
        track,
        matched,
        times_s: spec.times_s.clone(),
        gestures,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic spectrogram with gesture-like blobs: each
    /// (time-window range, +1/−1) paints energy at ±45°.
    fn gesture_spec(n_windows: usize, blobs: &[(usize, usize, i8)]) -> AngleSpectrogram {
        let thetas: Vec<f64> = (0..37).map(|i| -90.0 + 5.0 * i as f64).collect();
        let dt = 0.05;
        let times: Vec<f64> = (0..n_windows).map(|i| i as f64 * dt).collect();
        let mut power = vec![vec![1.0; 37]; n_windows];
        for &(start, end, pol) in blobs {
            for (t, row) in power
                .iter_mut()
                .enumerate()
                .take(end.min(n_windows))
                .skip(start)
            {
                // Triangular envelope over the blob.
                let frac = (t - start) as f64 / (end - start) as f64;
                let env = 1.0 - (2.0 * frac - 1.0).abs();
                let idx = if pol > 0 { 27 } else { 9 }; // ±45°
                row[idx] = 1.0 + 100.0 * env;
            }
        }
        AngleSpectrogram::new(thetas, times, power)
    }

    #[test]
    fn triangle_template_shape() {
        let t = triangle(5);
        assert_eq!(t, vec![0.0, 0.5, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn matched_filter_peaks_at_pattern_center() {
        let mut signal = vec![0.0; 64];
        // Plant a triangle at 20..29.
        for (j, v) in triangle(9).iter().enumerate() {
            signal[20 + j] = *v;
        }
        let out = matched_filter(&signal, &triangle(9));
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((peak as isize - 24).abs() <= 1, "peak at {peak}");
    }

    #[test]
    fn decodes_bit_zero_forward_then_backward() {
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        // Forward blob at windows 10..25, backward at 40..55.
        let spec = gesture_spec(80, &[(10, 25, 1), (40, 55, -1)]);
        let d = decode(&spec, &cfg);
        assert_eq!(d.gestures.len(), 2, "gestures: {:?}", d.gestures);
        assert_eq!(d.gestures[0].polarity, 1);
        assert_eq!(d.gestures[1].polarity, -1);
        assert_eq!(d.bits, vec![Some(false)]);
    }

    #[test]
    fn decodes_bit_one_backward_then_forward() {
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        let spec = gesture_spec(80, &[(10, 25, -1), (40, 55, 1)]);
        let d = decode(&spec, &cfg);
        assert_eq!(d.bits, vec![Some(true)]);
    }

    #[test]
    fn decodes_multibit_message() {
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        // 0 then 1: (+,−), (−,+).
        let spec = gesture_spec(
            160,
            &[(10, 25, 1), (40, 55, -1), (80, 95, -1), (115, 130, 1)],
        );
        let d = decode(&spec, &cfg);
        assert_eq!(d.bits, vec![Some(false), Some(true)]);
    }

    #[test]
    fn flat_spectrogram_yields_no_gestures() {
        let spec = gesture_spec(60, &[]);
        let d = decode(&spec, &GestureDecoderConfig::default());
        assert!(d.gestures.is_empty());
        assert!(d.bits.is_empty());
    }

    #[test]
    fn single_orphan_gesture_is_an_erasure() {
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        let spec = gesture_spec(80, &[(30, 45, 1)]);
        let d = decode(&spec, &cfg);
        assert_eq!(d.gestures.len(), 1);
        assert_eq!(d.bits, vec![None]);
    }

    #[test]
    fn erasures_not_bit_flips_under_weak_signal() {
        // §7.5: "Wi-Vi never mistook a '0' bit for a '1' bit or the
        // inverse. When it failed to decode a bit, it was because it could
        // not register enough energy." Weak blobs must vanish, not flip.
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        let thetas: Vec<f64> = (0..37).map(|i| -90.0 + 5.0 * i as f64).collect();
        let times: Vec<f64> = (0..80).map(|i| i as f64 * 0.05).collect();
        // Noise-only spectrogram with tiny fluctuations.
        let power: Vec<Vec<f64>> = (0..80)
            .map(|t| {
                (0..37)
                    .map(|a| 1.0 + 0.01 * ((t * 7 + a * 13) % 11) as f64)
                    .collect()
            })
            .collect();
        let spec = AngleSpectrogram::new(thetas, times, power);
        let d = decode(&spec, &cfg);
        for b in &d.bits {
            assert!(b.is_none(), "weak signal produced a hard bit {b:?}");
        }
    }

    #[test]
    fn snr_reported_above_threshold() {
        let cfg = GestureDecoderConfig {
            template_duration_s: 0.5,
            min_separation_s: 0.8,
            noise_reference_s: 0.3,
            ..Default::default()
        };
        let spec = gesture_spec(80, &[(10, 25, 1), (40, 55, -1)]);
        let d = decode(&spec, &cfg);
        for g in &d.gestures {
            assert!(g.snr_db >= cfg.snr_threshold_db);
        }
        assert!(d.min_gesture_snr_db().unwrap() >= cfg.snr_threshold_db);
    }

    #[test]
    fn robust_sigma_ignores_outliers() {
        let mut xs = vec![1.0; 100];
        xs[3] = 1000.0;
        let s = robust_noise_sigma(&xs);
        assert!(s < 2.0, "sigma {s} corrupted by outlier");
    }

    #[test]
    fn same_polarity_pair_is_erasure() {
        let g = |p: i8| DetectedGesture {
            time_s: 0.0,
            polarity: p,
            snr_db: 10.0,
        };
        assert_eq!(pair_bits(&[g(1), g(1)]), vec![None]);
        assert_eq!(pair_bits(&[g(-1), g(-1)]), vec![None]);
    }
}
