//! MIMO interference nulling — Algorithm 1 of the paper (Ch. 4).
//!
//! The nulling pipeline has three phases:
//!
//! 1. **Initial nulling** — sound each TX antenna in turn (`ĥ₁`, `ĥ₂`),
//!    install the per-subcarrier precoder `p = −ĥ₁/ĥ₂`; the received
//!    channel becomes `h_res = h₁ − (ĥ₁/ĥ₂)·h₂ ≈ 0` (Eq. 4.1).
//! 2. **Power boosting** — with the channel nulled the ADC no longer
//!    saturates, so TX power (+12 dB, bounded by the PA's linear range)
//!    and RX gain can be raised, lifting through-wall reflections out of
//!    the quantization floor.
//! 3. **Iterative nulling** — boosting exposes residual static reflections
//!    that were below the quantization level. The combined residual is
//!    re-measured and attributed alternately to `ĥ₁` (even iterations:
//!    `ĥ₁ ← h_res + ĥ₁`, Eq. 4.2) and `ĥ₂` (odd: `ĥ₂ ← (1 − h_res/ĥ₁)·ĥ₂`,
//!    Eq. 4.3) until convergence. Lemma 4.1.1 shows the residual decays
//!    geometrically with ratio `|Δ₂/h₂|`; [`iterate_nulling_ideal`]
//!    reproduces that lemma in exact arithmetic for tests and benches.

use wivi_num::Complex64;
use wivi_sdr::MimoFrontend;

/// Tuning for the nulling pipeline.
#[derive(Clone, Copy, Debug)]
pub struct NullingConfig {
    /// TX power boost after initial nulling, dB (§4.1.2 footnote: 12 dB,
    /// "limited by the need to stay within the linear range").
    pub tx_boost_db: f64,
    /// ADC input target as a fraction of full scale when setting RX gain.
    pub agc_target: f64,
    /// Maximum RX gain boost after nulling, dB ("after nulling, we can
    /// also boost the receive gain without saturating the receiver's
    /// ADC").
    pub max_rx_boost_db: f64,
    /// Iteration cap for iterative nulling.
    pub max_iterations: usize,
    /// Stop once the residual power improves by less than this factor
    /// between iterations (convergence plateau at the noise floor).
    pub convergence_ratio: f64,
}

impl Default for NullingConfig {
    fn default() -> Self {
        Self {
            tx_boost_db: 12.0,
            agc_target: 0.25,
            max_rx_boost_db: 30.0,
            max_iterations: 12,
            convergence_ratio: 0.8,
        }
    }
}

/// Outcome of a nulling run.
#[derive(Clone, Debug)]
pub struct NullingReport {
    /// Mean per-subcarrier power of the un-nulled combined channel
    /// `|ĥ₁ + ĥ₂|²` — what the receiver would face without nulling.
    pub unnulled_power: f64,
    /// Mean residual power after the initial null (before iterating).
    pub initial_residual_power: f64,
    /// Mean residual power after each iterative-nulling step.
    pub residual_history: Vec<f64>,
    /// Final channel estimates.
    pub h1: Vec<Complex64>,
    pub h2: Vec<Complex64>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// `true` if the ADC saturated at any point during nulling.
    pub saturated: bool,
}

impl NullingReport {
    /// Final residual power (after the last iteration).
    pub fn final_residual_power(&self) -> f64 {
        self.residual_history
            .last()
            .copied()
            .unwrap_or(self.initial_residual_power)
    }

    /// Achieved nulling in dB: reduction from the un-nulled static channel
    /// to the final residual (the quantity whose CDF is Fig. 7-7).
    pub fn nulling_db(&self) -> f64 {
        10.0 * (self.unnulled_power / self.final_residual_power().max(1e-300)).log10()
    }
}

/// Per-subcarrier precoder `p = −ĥ₁/ĥ₂` (Algorithm 1's pre-coding step).
pub fn precoder_from_estimates(h1: &[Complex64], h2: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(h1.len(), h2.len(), "estimate length mismatch");
    h1.iter().zip(h2).map(|(a, b)| -(*a) / *b).collect()
}

fn mean_power(h: &[Complex64]) -> f64 {
    h.iter().map(|z| z.norm_sqr()).sum::<f64>() / h.len() as f64
}

/// Runs the full nulling pipeline (Algorithm 1) on a front-end, leaving it
/// nulled, boosted, and ready for `observe()` trace recording.
pub fn run_nulling(fe: &mut MimoFrontend, cfg: &NullingConfig) -> NullingReport {
    assert!(cfg.agc_target > 0.0 && cfg.agc_target < 1.0);
    let mut saturated = false;

    // --- AGC against the un-nulled channel (the flash sets the gain). ---
    fe.set_rx_gain(1.0);
    let probe = fe.sound(0);
    saturated |= probe.saturated();
    if probe.outcome.peak_relative > 0.0 {
        fe.set_rx_gain(cfg.agc_target / probe.outcome.peak_relative);
    }

    // --- Initial nulling: estimate both channels, install p = −ĥ₁/ĥ₂. ---
    let s1 = fe.sound(0);
    let s2 = fe.sound(1);
    saturated |= s1.saturated() || s2.saturated();
    let mut h1 = s1.h.clone();
    let mut h2 = s2.h.clone();
    let unnulled: Vec<Complex64> = h1.iter().zip(&h2).map(|(a, b)| *a + *b).collect();
    let unnulled_power = mean_power(&unnulled);
    fe.set_precoder(precoder_from_estimates(&h1, &h2));

    let initial = fe.observe();
    saturated |= initial.saturated();
    let initial_residual_power = mean_power(&initial.h);

    // --- Power boosting (TX within the PA linear range, RX within the
    //     ADC's now-freed dynamic range). ---
    fe.set_tx_boost_db(cfg.tx_boost_db);
    let headroom = fe.observe();
    saturated |= headroom.saturated();
    if headroom.outcome.peak_relative > 0.0 {
        let boost_db = 20.0 * (cfg.agc_target / headroom.outcome.peak_relative).log10();
        fe.boost_rx_gain_db(boost_db.clamp(0.0, cfg.max_rx_boost_db));
    }

    // --- Iterative nulling (Eq. 4.2 / 4.3, alternating). ---
    let mut history = Vec::with_capacity(cfg.max_iterations);
    let mut prev_power = initial_residual_power;
    let mut iterations = 0;
    for i in 0..cfg.max_iterations {
        let obs = fe.observe();
        saturated |= obs.saturated();
        let hres = &obs.h;
        if i % 2 == 0 {
            for (a, r) in h1.iter_mut().zip(hres) {
                *a += *r;
            }
        } else {
            for ((b, r), a) in h2.iter_mut().zip(hres).zip(&h1) {
                *b = (Complex64::ONE - *r / *a) * *b;
            }
        }
        fe.set_precoder(precoder_from_estimates(&h1, &h2));

        let check = fe.observe();
        saturated |= check.saturated();
        let power = mean_power(&check.h);
        history.push(power);
        iterations = i + 1;
        if power >= prev_power * cfg.convergence_ratio {
            break; // plateaued at the noise floor
        }
        prev_power = power;
    }

    NullingReport {
        unnulled_power,
        initial_residual_power,
        residual_history: history,
        h1,
        h2,
        iterations,
        saturated,
    }
}

/// Exact-arithmetic model of iterative nulling for Lemma 4.1.1: given true
/// channels `h1`, `h2` and initial estimate errors `d1`, `d2`, returns
/// `|h_res|` before iterating and after each of `iters` alternating
/// refinement steps. No radio, no noise — pure algebra, so the geometric
/// decay ratio `|Δ₂/h₂|` is exactly observable.
pub fn iterate_nulling_ideal(
    h1: Complex64,
    h2: Complex64,
    d1: Complex64,
    d2: Complex64,
    iters: usize,
) -> Vec<f64> {
    let mut e1 = h1 + d1;
    let mut e2 = h2 + d2;
    let residual = |e1: Complex64, e2: Complex64| h1 - e1 / e2 * h2;
    let mut out = vec![residual(e1, e2).abs()];
    for i in 0..iters {
        let hres = residual(e1, e2);
        if i % 2 == 0 {
            e1 = hres + e1;
        } else {
            e2 = (Complex64::ONE - hres / e1) * e2;
        }
        out.push(residual(e1, e2).abs());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};
    use wivi_sdr::RadioConfig;

    fn scene() -> Scene {
        Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small())
    }

    #[test]
    fn precoder_nulls_exactly_on_true_channels() {
        let h1 = vec![Complex64::new(0.3, -0.1), Complex64::new(-0.2, 0.5)];
        let h2 = vec![Complex64::new(0.1, 0.2), Complex64::new(0.4, -0.3)];
        let p = precoder_from_estimates(&h1, &h2);
        for i in 0..2 {
            let res = h1[i] + p[i] * h2[i];
            assert!(res.abs() < 1e-15);
        }
    }

    #[test]
    fn full_pipeline_achieves_deep_null_on_static_scene() {
        let mut fe = MimoFrontend::new(scene(), RadioConfig::fast_test(), 42);
        let report = run_nulling(&mut fe, &NullingConfig::default());
        assert!(!report.saturated, "nulling should avoid ADC saturation");
        let null_db = report.nulling_db();
        assert!(
            (25.0..75.0).contains(&null_db),
            "achieved nulling {null_db:.1} dB outside plausible range"
        );
    }

    #[test]
    fn iterative_refinement_improves_on_initial_null() {
        let mut fe = MimoFrontend::new(scene(), RadioConfig::fast_test(), 43);
        let report = run_nulling(&mut fe, &NullingConfig::default());
        assert!(
            report.final_residual_power() <= report.initial_residual_power,
            "iteration made the residual worse: {:.3e} -> {:.3e}",
            report.initial_residual_power,
            report.final_residual_power()
        );
        assert!(report.iterations >= 1);
    }

    /// Mechanism tests pin their own noise level (they probe physics, not
    /// the calibrated defaults).
    fn quiet_radio() -> RadioConfig {
        RadioConfig {
            noise_sigma: 4e-5,
            ..RadioConfig::fast_test()
        }
    }

    #[test]
    fn nulling_leaves_moving_reflections_visible() {
        // §4.1: "if some object moves, its reflections will start showing
        // up in the channel value".
        let s = scene().with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-2.0, 3.0), Point::new(2.0, 3.0)],
            1.0,
        )));
        let mut fe = MimoFrontend::new(s, quiet_radio(), 44);
        let _ = run_nulling(&mut fe, &NullingConfig::default());
        let trace = fe.record_trace(80);
        let mean: Complex64 = trace.iter().copied().sum::<Complex64>() / trace.len() as f64;
        let rms_var =
            (trace.iter().map(|z| (*z - mean).norm_sqr()).sum::<f64>() / trace.len() as f64).sqrt();
        // Compare against a static scene's post-null trace.
        let mut fe2 = MimoFrontend::new(scene(), quiet_radio(), 44);
        let _ = run_nulling(&mut fe2, &NullingConfig::default());
        let quiet = fe2.record_trace(80);
        let qmean: Complex64 = quiet.iter().copied().sum::<Complex64>() / quiet.len() as f64;
        let q_rms = (quiet.iter().map(|z| (*z - qmean).norm_sqr()).sum::<f64>()
            / quiet.len() as f64)
            .sqrt();
        assert!(
            rms_var > 3.0 * q_rms,
            "moving human not visible: {rms_var:.3e} vs static floor {q_rms:.3e}"
        );
    }

    #[test]
    fn lemma_4_1_1_geometric_decay() {
        // |h_res^(i)| = |h_res^(0)|·|Δ₂/h₂|^i for alternating iterations
        // (the appendix derives ratio Δ₂/h₂ for *each* half-step given the
        // first-order approximation; verify the decay ratio to first
        // order).
        let h1 = Complex64::new(0.8, -0.3);
        let h2 = Complex64::new(0.5, 0.4);
        let d1 = Complex64::new(0.01, -0.02);
        let d2 = Complex64::new(-0.015, 0.01);
        let ratio = (d2 / h2).abs();
        let res = iterate_nulling_ideal(h1, h2, d1, d2, 6);
        for i in 1..res.len() {
            let predicted = res[0] * ratio.powi(i as i32);
            // First-order prediction: allow generous relative slack.
            assert!(
                res[i] < predicted * 3.0 + 1e-12,
                "iteration {i}: |hres| = {:.3e} vs predicted {predicted:.3e}",
                res[i]
            );
        }
        // And the decay really is fast: 6 iterations, ≥ 4 orders.
        assert!(res[6] < res[0] * 1e-4);
    }

    #[test]
    fn large_errors_can_stall_in_a_limit_cycle() {
        // A finding from property exploration: the lemma's geometric decay
        // is a *first-order* result. With a large (but still |Δ₂/h₂| < 1)
        // error, the alternating iteration can stop contracting — the
        // dropped second-order terms dominate. The radio operates far
        // inside the small-error regime (post-AGC estimate errors are a
        // few percent), but the boundary is worth pinning down.
        let h = Complex64::from_re(0.1);
        let d2 = h.scale(-0.27); // err_phase ≈ π, ratio 0.27
        let d1 = h.scale(0.01);
        let res = iterate_nulling_ideal(h, h, d1, d2, 6);
        // Decays initially, then stalls well above the first-order
        // prediction res[0]·0.27⁶ ≈ 1.5e-5.
        assert!(res[1] < res[0]);
        assert!(res[6] > res[0] * 0.27f64.powi(6) * 100.0);
    }

    #[test]
    fn lemma_precondition_matters() {
        // If |Δ₂/h₂| ≥ 1 the lemma's hypothesis fails and the iteration
        // need not contract per-step.
        let h1 = Complex64::new(0.8, -0.3);
        let h2 = Complex64::new(0.01, 0.0);
        let d2 = Complex64::new(0.05, 0.0); // |Δ₂/h₂| = 5
        let res = iterate_nulling_ideal(h1, h2, Complex64::ZERO, d2, 4);
        assert!(
            res[1] >= res[0] * 0.5,
            "unexpectedly contracted despite violated precondition"
        );
    }

    #[test]
    fn rx_gain_is_boosted_after_nulling() {
        let mut fe = MimoFrontend::new(scene(), RadioConfig::fast_test(), 45);
        let _ = run_nulling(&mut fe, &NullingConfig::default());
        // After the pipeline the RX gain should exceed the pre-null AGC
        // level: the nulled channel frees dynamic range.
        assert!(
            fe.rx_gain() > 1.0,
            "rx gain {} did not increase",
            fe.rx_gain()
        );
        assert!((fe.tx_boost_db() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn unnulled_power_dwarfs_residual() {
        let mut fe = MimoFrontend::new(scene(), RadioConfig::fast_test(), 46);
        let report = run_nulling(&mut fe, &NullingConfig::default());
        assert!(report.unnulled_power > 100.0 * report.final_residual_power());
    }
}
