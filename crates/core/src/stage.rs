//! Composable streaming stages.
//!
//! The real Wi-Vi device is a *streaming* system: the paper drops the OFDM
//! bandwidth from 20 MHz to 5 MHz precisely so that nulling and tracking
//! keep up with the channel rate (§7.1). The seed reproduction instead
//! materialized a whole trial's trace and processed it in one offline
//! pass. This module restores the streaming shape: a [`Stage`] consumes
//! nulled channel samples in whatever batch sizes the radio delivers and
//! emits `A′[θ, n]` columns incrementally, as soon as each analysis window
//! completes.
//!
//! The pipeline composes as
//!
//! ```text
//! nulling (calibration)            wivi_core::nulling::run_nulling
//!   → batched observation stream   wivi_sdr::MimoFrontend::observe_stream
//!     → tracker stage              StreamingMusic / StreamingBeamform
//!       → partial spectrogram      Stage::rows() as columns arrive
//!         → counting / gestures    counting::StreamingVariance, gesture::decode
//! ```
//!
//! Both tracker stages drive the exact same per-window engines the
//! offline entry points use ([`MusicEngine`], [`BeamformEngine`]), so
//! incremental and one-shot processing are **bitwise identical** — the
//! property the `streaming_equivalence` integration test pins down.
//! Window-rate processing reuses the engines' scratch (correlation
//! matrix, eigendecomposition workspace, steering tables) with zero heap
//! allocation beyond the emitted rows themselves, and the internal sample
//! buffer is trimmed as windows complete. Retention of the emitted
//! columns is the caller's choice: a tracking run keeps them for the
//! final spectrogram, while a pure sink pipeline
//! ([`StreamingMusic::sink_only`] + [`Stage::push_with`]) keeps nothing,
//! so its memory stays bounded by the window length — not the trial
//! length.

use wivi_num::Complex64;

use crate::isar::{BeamformEngine, IsarConfig};
use crate::music::{MusicConfig, MusicEngine, WindowEigen};
use crate::spectrogram::AngleSpectrogram;

/// A streaming tracker stage: push channel-sample batches in, get
/// spectrogram columns out.
///
/// Implementations must be *batch-shape invariant*: any partition of the
/// same sample sequence into pushes yields the same columns.
///
/// By default a stage retains every emitted column so [`Stage::finish`]
/// can assemble the spectrogram — an O(trial-length) cost that is the
/// point of the tracking mode. Sinks that fold columns on the fly (the
/// counting statistic) should use a non-retaining stage (e.g.
/// [`StreamingMusic::sink_only`]) together with [`Stage::push_with`], so
/// the whole pipeline stays bounded by one analysis window.
pub trait Stage {
    /// Feeds a batch of nulled channel samples (any length, including
    /// empty), invoking `on_column(thetas_deg, row)` for each newly
    /// completed spectrogram column before the stage decides whether to
    /// retain it. Returns the number of new columns.
    fn push_with(
        &mut self,
        samples: &[Complex64],
        on_column: &mut dyn FnMut(&[f64], &[f64]),
    ) -> usize;

    /// [`Stage::push_with`] without a column observer.
    fn push(&mut self, samples: &[Complex64]) -> usize {
        self.push_with(samples, &mut |_, _| {})
    }

    /// Number of columns produced so far.
    fn n_columns(&self) -> usize;

    /// The angle grid shared by all columns.
    fn thetas_deg(&self) -> &[f64];

    /// The columns produced so far (partial spectrogram), one row per
    /// completed analysis window.
    fn rows(&self) -> &[Vec<f64>];

    /// Centre times of the completed windows, seconds.
    fn times_s(&self) -> &[f64];

    /// Finalizes the stage into a spectrogram, draining the accumulated
    /// columns (the stage is empty afterwards).
    ///
    /// # Panics
    /// Panics if no columns were produced (the trace never filled one
    /// analysis window).
    fn finish(&mut self) -> AngleSpectrogram;
}

/// Sliding-window bookkeeping shared by the tracker stages: accumulates
/// samples, hands out every complete `(start, window)` pair exactly once,
/// and trims the buffer so it never holds more than one window plus one
/// batch.
#[derive(Clone, Debug)]
pub struct WindowBuffer {
    window: usize,
    hop: usize,
    /// Samples not yet discarded; `buf[0]` is absolute index `base`.
    buf: Vec<Complex64>,
    base: usize,
    /// Absolute start index of the next window to emit.
    next_start: usize,
}

impl WindowBuffer {
    /// Creates a buffer emitting `window`-sample windows every `hop`
    /// samples.
    ///
    /// # Panics
    /// Panics if `window` or `hop` is zero.
    pub fn new(window: usize, hop: usize) -> Self {
        assert!(window >= 1 && hop >= 1);
        Self {
            window,
            hop,
            buf: Vec::with_capacity(window * 2),
            base: 0,
            next_start: 0,
        }
    }

    /// Appends `samples`, invoking `emit(start, window)` for each newly
    /// completed analysis window. Returns the number of windows emitted.
    pub fn push(
        &mut self,
        samples: &[Complex64],
        mut emit: impl FnMut(usize, &[Complex64]),
    ) -> usize {
        self.buf.extend_from_slice(samples);
        let mut emitted = 0;
        while self.next_start + self.window <= self.base + self.buf.len() {
            let lo = self.next_start - self.base;
            emit(self.next_start, &self.buf[lo..lo + self.window]);
            self.next_start += self.hop;
            emitted += 1;
        }
        // Drop samples no future window can reach.
        let keep_from = self
            .next_start
            .saturating_sub(self.base)
            .min(self.buf.len());
        if keep_from > 0 {
            self.buf.drain(..keep_from);
            self.base += keep_from;
        }
        emitted
    }

    /// Total samples seen.
    pub fn n_seen(&self) -> usize {
        self.base + self.buf.len()
    }
}

/// The smoothed-MUSIC tracker as a streaming stage (mode 1 of the device).
pub struct StreamingMusic {
    engine: MusicEngine,
    /// Own copy of the angle grid (hands columns to observers while the
    /// engine is mutably borrowed).
    thetas: Vec<f64>,
    wb: WindowBuffer,
    /// Whether emitted columns are stored for [`Stage::finish`]. Sinks
    /// that fold columns on the fly turn this off so memory stays bounded
    /// by one analysis window regardless of trial length.
    retain: bool,
    emitted: usize,
    rows: Vec<Vec<f64>>,
    eigens: Vec<WindowEigen>,
    times: Vec<f64>,
}

impl StreamingMusic {
    /// Creates the stage (column-retaining: [`Stage::finish`] available).
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: MusicConfig) -> Self {
        let engine = MusicEngine::new(cfg);
        let thetas = engine.thetas_deg().to_vec();
        let wb = WindowBuffer::new(cfg.isar.window, cfg.isar.hop);
        Self {
            engine,
            thetas,
            wb,
            retain: true,
            emitted: 0,
            rows: Vec::new(),
            eigens: Vec::new(),
            times: Vec::new(),
        }
    }

    /// Creates a non-retaining stage for pure sink pipelines: columns are
    /// only handed to [`Stage::push_with`]'s observer, never stored, so a
    /// monitoring run of any length holds one analysis window of samples
    /// and nothing else. [`Stage::finish`] is unavailable on such a stage.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn sink_only(cfg: MusicConfig) -> Self {
        Self {
            retain: false,
            ..Self::new(cfg)
        }
    }

    /// Per-window eigen-structure diagnostics accumulated so far (empty
    /// on a [`Self::sink_only`] stage).
    pub fn eigens(&self) -> &[WindowEigen] {
        &self.eigens
    }

    /// Like [`Stage::finish`] but also returns the drained eigen
    /// diagnostics (which `finish` alone discards).
    pub fn finish_with_eigen(&mut self) -> (AngleSpectrogram, Vec<WindowEigen>) {
        let eigens = std::mem::take(&mut self.eigens);
        let spec = Stage::finish(self);
        (spec, eigens)
    }
}

impl Stage for StreamingMusic {
    fn push_with(
        &mut self,
        samples: &[Complex64],
        on_column: &mut dyn FnMut(&[f64], &[f64]),
    ) -> usize {
        let engine = &mut self.engine;
        let thetas = &self.thetas;
        let retain = self.retain;
        let rows = &mut self.rows;
        let eigens = &mut self.eigens;
        let times = &mut self.times;
        let isar = engine.cfg().isar;
        let n = self.wb.push(samples, |start, win| {
            let (row, eigen) = engine.process_window(win);
            on_column(thetas, &row);
            if retain {
                rows.push(row);
                eigens.push(eigen);
                times.push(isar.window_center_s(start));
            }
        });
        self.emitted += n;
        n
    }

    fn n_columns(&self) -> usize {
        self.emitted
    }

    fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }

    fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    fn times_s(&self) -> &[f64] {
        &self.times
    }

    fn finish(&mut self) -> AngleSpectrogram {
        assert!(
            self.retain,
            "finish() requires a column-retaining stage; this one was built sink_only()"
        );
        assert!(
            !self.rows.is_empty(),
            "trace shorter ({}) than the analysis window ({})",
            self.wb.n_seen(),
            self.engine.cfg().isar.window
        );
        self.eigens.clear();
        self.emitted = 0;
        AngleSpectrogram::new(
            self.thetas.clone(),
            std::mem::take(&mut self.times),
            std::mem::take(&mut self.rows),
        )
    }
}

/// The classic-beamforming (Eq. 5.1) tracker as a streaming stage — the
/// amplitude-bearing spectrum the gesture decoder consumes (mode 2), and
/// the §5.2 baseline. Always column-retaining: its one sink, the
/// matched-filter gesture decoder, needs the whole track for its noise
/// reference, so a sink-only variant would have no caller.
pub struct StreamingBeamform {
    engine: BeamformEngine,
    /// Own copy of the angle grid (hands columns to observers while the
    /// engine is mutably borrowed).
    thetas: Vec<f64>,
    wb: WindowBuffer,
    rows: Vec<Vec<f64>>,
    times: Vec<f64>,
}

impl StreamingBeamform {
    /// Creates the stage.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: IsarConfig) -> Self {
        let engine = BeamformEngine::new(cfg);
        let thetas = engine.thetas_deg().to_vec();
        let wb = WindowBuffer::new(cfg.window, cfg.hop);
        Self {
            engine,
            thetas,
            wb,
            rows: Vec::new(),
            times: Vec::new(),
        }
    }
}

impl Stage for StreamingBeamform {
    fn push_with(
        &mut self,
        samples: &[Complex64],
        on_column: &mut dyn FnMut(&[f64], &[f64]),
    ) -> usize {
        let engine = &mut self.engine;
        let thetas = &self.thetas;
        let rows = &mut self.rows;
        let times = &mut self.times;
        let isar = *engine.cfg();
        self.wb.push(samples, |start, win| {
            let row = engine.process_window(win);
            on_column(thetas, &row);
            rows.push(row);
            times.push(isar.window_center_s(start));
        })
    }

    fn n_columns(&self) -> usize {
        self.rows.len()
    }

    fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }

    fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    fn times_s(&self) -> &[f64] {
        &self.times
    }

    fn finish(&mut self) -> AngleSpectrogram {
        assert!(
            !self.rows.is_empty(),
            "trace shorter ({}) than the analysis window ({})",
            self.wb.n_seen(),
            self.engine.cfg().window
        );
        AngleSpectrogram::new(
            self.thetas.clone(),
            std::mem::take(&mut self.times),
            std::mem::take(&mut self.rows),
        )
    }
}

/// Per-session MUSIC windowing state for *engine-shared* streaming: the
/// serving layer runs many concurrent sessions per worker shard, and the
/// heavy per-window scratch (steering tables, correlation matrix, eig
/// workspace) lives once per shard in a [`MusicEngine`] instead of once
/// per session. This type holds only what is genuinely per-session — the
/// sliding [`WindowBuffer`] and a column counter — and borrows the engine
/// at every push. Column emission is **bitwise identical** to an owned
/// [`StreamingMusic`] stage because both feed the same windows through
/// [`MusicEngine::process_window`], whose output depends only on the
/// configuration and the window contents (the scratch is fully
/// overwritten every call).
///
/// # Panics
/// [`Self::push_with`] panics if the borrowed engine's configuration
/// does not match the one this state was built for.
#[derive(Clone, Debug)]
pub struct SharedStreamingMusic {
    /// The full configuration this session expects of its engine — not
    /// just the windowing: the pseudospectrum also depends on subarray,
    /// thresholds, and the noise floor, so a mismatched engine must
    /// panic rather than silently emit different columns.
    cfg: MusicConfig,
    /// Own copy of the angle grid (columns are handed to observers while
    /// the engine is mutably borrowed). Identical to the engine's grid:
    /// both come from [`IsarConfig::thetas_deg`].
    thetas: Vec<f64>,
    wb: WindowBuffer,
    emitted: usize,
}

impl SharedStreamingMusic {
    /// Creates the per-session state for sessions processed by engines
    /// built from `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: &MusicConfig) -> Self {
        cfg.validate();
        Self {
            cfg: *cfg,
            thetas: cfg.isar.thetas_deg(),
            wb: WindowBuffer::new(cfg.isar.window, cfg.isar.hop),
            emitted: 0,
        }
    }

    /// Feeds a batch of nulled channel samples through the shared
    /// `engine`, invoking `on_column(start_sample, thetas_deg, row)` for
    /// each newly completed window (`start_sample` is the window's
    /// absolute start; its centre time is
    /// [`IsarConfig::window_center_s`]). Returns the number of new
    /// columns.
    ///
    /// # Panics
    /// Panics if `engine` was built for a different configuration.
    pub fn push_with(
        &mut self,
        engine: &mut MusicEngine,
        samples: &[Complex64],
        mut on_column: impl FnMut(usize, &[f64], &[f64]),
    ) -> usize {
        assert_eq!(
            *engine.cfg(),
            self.cfg,
            "shared engine built for a different configuration"
        );
        let thetas = &self.thetas;
        let n = self.wb.push(samples, |start, win| {
            let (row, _eigen) = engine.process_window(win);
            on_column(start, thetas, &row);
        });
        self.emitted += n;
        n
    }

    /// Columns emitted so far.
    pub fn n_columns(&self) -> usize {
        self.emitted
    }

    /// Total samples pushed so far.
    pub fn n_seen(&self) -> usize {
        self.wb.n_seen()
    }

    /// The angle grid shared by all columns.
    pub fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }
}

/// Per-session beamformer windowing state for engine-shared streaming —
/// the [`StreamingBeamform`] sibling of [`SharedStreamingMusic`], used by
/// serving-engine gesture sessions. Columns are handed to the observer
/// only; retention (the gesture decoder needs the whole track) is the
/// caller's job.
#[derive(Clone, Debug)]
pub struct SharedStreamingBeamform {
    isar: IsarConfig,
    thetas: Vec<f64>,
    wb: WindowBuffer,
    emitted: usize,
}

impl SharedStreamingBeamform {
    /// Creates the per-session state for sessions processed by engines
    /// built from `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: &IsarConfig) -> Self {
        cfg.validate();
        Self {
            isar: *cfg,
            thetas: cfg.thetas_deg(),
            wb: WindowBuffer::new(cfg.window, cfg.hop),
            emitted: 0,
        }
    }

    /// Feeds a batch through the shared `engine`, invoking
    /// `on_column(start_sample, thetas_deg, row)` per completed window.
    /// Returns the number of new columns.
    ///
    /// # Panics
    /// Panics if `engine` was built for a different windowing geometry.
    pub fn push_with(
        &mut self,
        engine: &mut BeamformEngine,
        samples: &[Complex64],
        mut on_column: impl FnMut(usize, &[f64], &[f64]),
    ) -> usize {
        assert_eq!(
            *engine.cfg(),
            self.isar,
            "shared engine built for a different configuration"
        );
        let thetas = &self.thetas;
        let n = self.wb.push(samples, |start, win| {
            let row = engine.process_window(win);
            on_column(start, thetas, &row);
        });
        self.emitted += n;
        n
    }

    /// Columns emitted so far.
    pub fn n_columns(&self) -> usize {
        self.emitted
    }

    /// Total samples pushed so far.
    pub fn n_seen(&self) -> usize {
        self.wb.n_seen()
    }

    /// The angle grid shared by all columns.
    pub fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isar::synthetic_target_trace;
    use crate::music::music_spectrum_with_eigen;
    use wivi_num::rng::{complex_gaussian, Rng64};

    fn noisy_trace(n: usize, seed: u64) -> Vec<Complex64> {
        let cfg = IsarConfig::fast_test();
        let mut rng = Rng64::seed_from_u64(seed);
        let mut t = synthetic_target_trace(&cfg, n, 1.0, 4.0, 0.5);
        for z in t.iter_mut() {
            *z += complex_gaussian(&mut rng, 0.05);
        }
        t
    }

    #[test]
    fn window_buffer_emits_every_window_once_and_trims() {
        let mut wb = WindowBuffer::new(8, 3);
        let samples: Vec<Complex64> = (0..40).map(|i| Complex64::from_re(i as f64)).collect();
        let mut starts = Vec::new();
        // Push in awkward chunk sizes.
        for chunk in samples.chunks(5) {
            wb.push(chunk, |start, win| {
                assert_eq!(win.len(), 8);
                assert_eq!(win[0].re, start as f64);
                starts.push(start);
            });
        }
        let expected: Vec<usize> = (0..=32).step_by(3).collect();
        assert_eq!(starts, expected);
        // The retained buffer never grows past one window + one batch.
        assert!(
            wb.buf.len() <= 8 + 5,
            "buffer kept {} samples",
            wb.buf.len()
        );
    }

    #[test]
    fn music_stage_is_batch_shape_invariant() {
        let cfg = MusicConfig::fast_test();
        let trace = noisy_trace(150, 9);

        let (offline, offline_eig) = music_spectrum_with_eigen(&trace, &cfg);

        for batch in [1usize, 7, 40, 150] {
            let mut stage = StreamingMusic::new(cfg);
            let mut produced = 0;
            for chunk in trace.chunks(batch) {
                produced += stage.push(chunk);
            }
            assert_eq!(produced, offline.n_times());
            let (spec, eig) = stage.finish_with_eigen();
            assert_eq!(spec.power, offline.power, "batch {batch}");
            assert_eq!(spec.times_s, offline.times_s, "batch {batch}");
            assert_eq!(eig.len(), offline_eig.len());
            for (a, b) in eig.iter().zip(&offline_eig) {
                assert_eq!(a.eigenvalues, b.eigenvalues);
                assert_eq!(a.n_signal, b.n_signal);
            }
        }
    }

    #[test]
    fn beamform_stage_is_batch_shape_invariant() {
        let cfg = IsarConfig::fast_test();
        let trace = noisy_trace(130, 10);
        let offline = crate::isar::beamform_spectrum(&trace, &cfg);
        for batch in [1usize, 13, 130] {
            let mut stage = StreamingBeamform::new(cfg);
            for chunk in trace.chunks(batch) {
                stage.push(chunk);
            }
            let spec = stage.finish();
            assert_eq!(spec.power, offline.power, "batch {batch}");
            assert_eq!(spec.times_s, offline.times_s, "batch {batch}");
        }
    }

    #[test]
    fn partial_columns_appear_as_samples_arrive() {
        let cfg = MusicConfig::fast_test(); // window 40, hop 8
        let trace = noisy_trace(64, 11);
        let mut stage = StreamingMusic::new(cfg);
        assert_eq!(stage.push(&trace[..39]), 0, "no column before one window");
        assert_eq!(stage.n_columns(), 0);
        assert_eq!(stage.push(&trace[39..40]), 1, "first column at window fill");
        assert_eq!(stage.rows().len(), 1);
        assert_eq!(stage.times_s().len(), 1);
        // 24 more samples: windows at starts 8, 16, 24 complete.
        assert_eq!(stage.push(&trace[40..64]), 3);
        assert_eq!(stage.n_columns(), 4);
    }

    #[test]
    fn sink_only_stage_emits_identical_columns_but_stores_nothing() {
        let cfg = MusicConfig::fast_test();
        let trace = noisy_trace(120, 12);

        let mut retaining = StreamingMusic::new(cfg);
        retaining.push(&trace);
        let stored = retaining.rows().to_vec();

        let mut sink = StreamingMusic::sink_only(cfg);
        let mut observed: Vec<Vec<f64>> = Vec::new();
        for chunk in trace.chunks(16) {
            sink.push_with(chunk, &mut |_, row| observed.push(row.to_vec()));
        }
        assert_eq!(
            observed, stored,
            "sink columns differ from retained columns"
        );
        assert_eq!(sink.n_columns(), stored.len());
        assert!(sink.rows().is_empty(), "sink_only stage retained rows");
        assert!(sink.eigens().is_empty());
    }

    #[test]
    fn shared_music_equals_owned_stage_even_interleaved() {
        // Two "sessions" with different traces share ONE engine, their
        // pushes interleaved in awkward chunks — exactly the serving
        // shard's shape. Each must still produce the columns an owned
        // per-session stage produces, bit for bit.
        let cfg = MusicConfig::fast_test();
        let traces = [noisy_trace(130, 21), noisy_trace(130, 22)];

        let owned: Vec<Vec<Vec<f64>>> = traces
            .iter()
            .map(|t| {
                let mut stage = StreamingMusic::new(cfg);
                stage.push(t);
                stage.rows().to_vec()
            })
            .collect();

        let mut engine = MusicEngine::new(cfg);
        let mut shared = [
            SharedStreamingMusic::new(&cfg),
            SharedStreamingMusic::new(&cfg),
        ];
        let mut got: [Vec<Vec<f64>>; 2] = [Vec::new(), Vec::new()];
        let mut starts: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for chunk in 0..(130usize).div_ceil(7) {
            for s in 0..2 {
                let lo = chunk * 7;
                let hi = (lo + 7).min(130);
                if lo >= hi {
                    continue;
                }
                shared[s].push_with(&mut engine, &traces[s][lo..hi], |start, thetas, row| {
                    assert_eq!(thetas, engine_thetas(&cfg));
                    starts[s].push(start);
                    got[s].push(row.to_vec());
                });
            }
        }
        for s in 0..2 {
            assert_eq!(got[s], owned[s], "session {s} columns diverged");
            // Window start indices advance by the hop from zero, and the
            // centre-time expression matches the owned stage's.
            let isar = cfg.isar;
            let expect: Vec<usize> = (0..got[s].len()).map(|k| k * isar.hop).collect();
            assert_eq!(starts[s], expect);
            let mut stage = StreamingMusic::new(cfg);
            stage.push(&traces[s]);
            let times: Vec<f64> = starts[s]
                .iter()
                .map(|&st| isar.window_center_s(st))
                .collect();
            assert_eq!(times, stage.times_s());
            assert_eq!(shared[s].n_columns(), got[s].len());
            assert_eq!(shared[s].n_seen(), 130);
        }
    }

    fn engine_thetas(cfg: &MusicConfig) -> Vec<f64> {
        cfg.isar.thetas_deg()
    }

    #[test]
    fn shared_beamform_equals_owned_stage() {
        let cfg = IsarConfig::fast_test();
        let trace = noisy_trace(110, 23);
        let mut owned = StreamingBeamform::new(cfg);
        owned.push(&trace);

        let mut engine = BeamformEngine::new(cfg);
        let mut shared = SharedStreamingBeamform::new(&cfg);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut times: Vec<f64> = Vec::new();
        for chunk in trace.chunks(9) {
            shared.push_with(&mut engine, chunk, |start, _thetas, row| {
                rows.push(row.to_vec());
                times.push(cfg.window_center_s(start));
            });
        }
        assert_eq!(rows, owned.rows());
        assert_eq!(times, owned.times_s());
        assert_eq!(shared.thetas_deg(), Stage::thetas_deg(&owned));
    }

    #[test]
    #[should_panic(expected = "different configuration")]
    fn shared_music_rejects_mismatched_engine() {
        // A *non-windowing* mismatch: the noise floor changes the
        // signal-subspace split, so columns would silently differ if
        // only the window geometry were guarded.
        let mut engine = MusicEngine::new(MusicConfig::fast_test());
        let mut cfg = MusicConfig::fast_test();
        cfg.noise_floor_power = Some(1e-6);
        let mut shared = SharedStreamingMusic::new(&cfg);
        shared.push_with(&mut engine, &[Complex64::ZERO], |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "sink_only")]
    fn finish_panics_on_sink_only_stage() {
        let mut stage = StreamingMusic::sink_only(MusicConfig::fast_test());
        stage.push(&noisy_trace(60, 13));
        let _ = stage.finish();
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn finish_requires_a_full_window() {
        let mut stage = StreamingBeamform::new(IsarConfig::fast_test());
        stage.push(&[Complex64::ONE; 10]);
        let _ = stage.finish();
    }
}
