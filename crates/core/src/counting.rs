//! Spatial-variance human counting (paper §5.2, Eqs. 5.4–5.5, Table 7.1).
//!
//! "Any human can be only at one location at any point in time. Thus, at
//! any point in time, the larger the number of humans, the higher the
//! spatial variance" of `A′[θ, n]`. The counter computes the θ-weighted
//! centroid and variance of each window's (dB) spectrum, averages the
//! variance over the trace, and classifies the result against thresholds
//! learned from labelled training trials.
//!
//! Two conveniences of the formulation: the DC ridge sits at θ = 0 and is
//! annihilated by the `θ`/`θ²` weights, and dB weighting compresses the
//! enormous dynamic range of the MUSIC pseudospectrum. We weight with the
//! per-window *ridge-thresholded* dB map (grass below
//! [`RIDGE_THRESHOLD_DB`] above the floor is zeroed — without this, the
//! MUSIC noise speckle visible in Fig. 7-2's backgrounds dominates the
//! moment sums and the count classes saturate), normalizing by the total
//! weight — the paper's Eq. 5.4/5.5 written as a proper weighted moment;
//! the CDF *shape* and the class ordering match Fig. 7-3, the absolute
//! scale is arbitrary (documented in EXPERIMENTS.md).

use crate::spectrogram::{is_ridge_bin, AngleSpectrogram};

/// dB-above-floor below which a MUSIC bin counts as noise grass rather
/// than a ridge (see [`AngleSpectrogram::db_ridges`]).
pub const RIDGE_THRESHOLD_DB: f64 = 10.0;

/// Angle guard around the DC line (degrees) excluded from the spatial
/// moments: the DC ridge carries no information about moving bodies, and
/// its mass (which fluctuates with the drift state of the residual null)
/// would otherwise smear the per-window statistic. Bodies crossing in
/// front of the device pass through the guard — exactly the paper's
/// observation that perpendicular motion merges with the DC line (§5.1
/// fn. 5).
pub const DC_GUARD_DEG: f64 = 10.0;

/// Per-window spatial centroid `C[n]` (degrees): the ridge-dB-weighted
/// mean angle (Eq. 5.4, normalized).
pub fn spatial_centroid_profile(spec: &AngleSpectrogram) -> Vec<f64> {
    let db = spec.db_ridges_absolute(RIDGE_THRESHOLD_DB);
    db.iter()
        .map(|row| {
            let mut total = 0.0;
            let mut first = 0.0;
            for (&th, &w) in spec.thetas_deg.iter().zip(row) {
                if th.abs() < DC_GUARD_DEG {
                    continue;
                }
                total += w;
                first += th * w;
            }
            if total <= 0.0 {
                0.0
            } else {
                first / total
            }
        })
        .collect()
}

/// Per-window spatial variance `VAR[n]` (deg²): the **unnormalized**
/// second moment of the ridge support about the DC axis —
/// `Σ_{|θ| ≥ guard, ridge} θ²` — Eq. 5.5 with its (numerically
/// negligible) `C²` correction dropped and the dB weights binarized.
/// Three deliberate choices: the moment is not divided by the total
/// weight, so each additional moving body adds its own ridge support and
/// the statistic keeps growing from 2 to 3 humans instead of saturating
/// once the angular *spread* alone stops widening (this is also why the
/// paper's Fig. 7-3 x-axis reaches "tens of millions" — support × θ²,
/// not a normalized moment); the weight is the ridge *indicator* rather
/// than its dB height, because MUSIC peak height measures subspace
/// alignment (which decays with range and would bias the statistic
/// between differently-sized rooms) while ridge support is nearly
/// range-invariant; and the moment is taken about θ = 0 rather than the
/// centroid, so a lone off-axis body still scores (the DC line is the
/// natural "no motion" reference).
pub fn spatial_variance_profile(spec: &AngleSpectrogram) -> Vec<f64> {
    spec.power
        .iter()
        .map(|row| window_spatial_variance(&spec.thetas_deg, row))
        .collect()
}

/// The [`spatial_variance_profile`] statistic of a single window, from its
/// *linear*-power pseudospectrum row. This is the per-column kernel shared
/// by the offline profile and the [`StreamingVariance`] sink, so the
/// streaming count statistic matches the one-shot path exactly.
pub fn window_spatial_variance(thetas_deg: &[f64], power_row: &[f64]) -> f64 {
    thetas_deg
        .iter()
        .zip(power_row)
        .filter(|(&th, &p)| is_ridge_bin(th, p, RIDGE_THRESHOLD_DB, DC_GUARD_DEG))
        .map(|(&th, _)| th * th)
        .sum()
}

/// The single number describing a trial: `VAR[n]` averaged over the
/// duration of the experiment (§5.2).
pub fn mean_spatial_variance(spec: &AngleSpectrogram) -> f64 {
    let profile = spatial_variance_profile(spec);
    profile.iter().sum::<f64>() / profile.len() as f64
}

/// The counting statistic as a streaming sink: feed it `A′[θ, n]` columns
/// as the tracker completes them and read the running mean at any point —
/// no spectrogram needs to be materialized. Column-for-column it computes
/// exactly [`window_spatial_variance`], so a fully drained sink equals
/// [`mean_spatial_variance`] of the equivalent offline spectrogram.
#[derive(Clone, Debug, Default)]
pub struct StreamingVariance {
    sum: f64,
    n: usize,
}

impl StreamingVariance {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one spectrogram column (linear power per angle).
    pub fn push_column(&mut self, thetas_deg: &[f64], power_row: &[f64]) {
        self.sum += window_spatial_variance(thetas_deg, power_row);
        self.n += 1;
    }

    /// Columns accumulated so far.
    pub fn n_columns(&self) -> usize {
        self.n
    }

    /// The running mean spatial variance.
    ///
    /// # Panics
    /// Panics if no columns have been pushed.
    pub fn mean(&self) -> f64 {
        assert!(self.n > 0, "no spectrogram columns accumulated");
        self.sum / self.n as f64
    }
}

/// A threshold classifier over spatial variance, trained on labelled
/// trials ("Wi-Vi uses a training set and a testing set to learn the
/// thresholds that separate the spatial variances corresponding to 0, 1,
/// 2, or 3 humans", §5.2).
#[derive(Clone, Debug)]
pub struct VarianceClassifier {
    /// `thresholds[k]` separates class `k` from class `k+1`.
    thresholds: Vec<f64>,
    n_classes: usize,
}

impl VarianceClassifier {
    /// Trains thresholds from `(true_count, mean_variance)` samples.
    /// The threshold between consecutive classes is the midpoint of the
    /// class means.
    ///
    /// # Panics
    /// Panics unless every class `0..n_classes` has at least one sample.
    pub fn train(samples: &[(usize, f64)], n_classes: usize) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        let mut sums = vec![0.0; n_classes];
        let mut counts = vec![0usize; n_classes];
        for &(label, var) in samples {
            assert!(label < n_classes, "label {label} out of range");
            sums[label] += var;
            counts[label] += 1;
        }
        let means: Vec<f64> = (0..n_classes)
            .map(|k| {
                assert!(counts[k] > 0, "no training samples for class {k}");
                sums[k] / counts[k] as f64
            })
            .collect();
        // Class means should already be increasing; enforce monotone
        // thresholds regardless so classification stays well-defined.
        let mut thresholds: Vec<f64> = means.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        for i in 1..thresholds.len() {
            if thresholds[i] < thresholds[i - 1] {
                thresholds[i] = thresholds[i - 1];
            }
        }
        Self {
            thresholds,
            n_classes,
        }
    }

    /// Classifies a trial's mean spatial variance into a human count.
    pub fn classify(&self, variance: f64) -> usize {
        self.thresholds
            .iter()
            .take_while(|&&t| variance > t)
            .count()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The learned thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

/// A confusion matrix over human counts (`rows = actual`, `cols =
/// detected`) — Table 7.1's shape.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        Self {
            counts: vec![vec![0; n]; n],
        }
    }

    /// Records one (actual, detected) trial.
    pub fn record(&mut self, actual: usize, detected: usize) {
        let n = self.counts.len();
        self.counts[actual.min(n - 1)][detected.min(n - 1)] += 1;
    }

    /// Row-normalized percentage at (actual, detected).
    pub fn percentage(&self, actual: usize, detected: usize) -> f64 {
        let row_total: usize = self.counts[actual].iter().sum();
        if row_total == 0 {
            0.0
        } else {
            100.0 * self.counts[actual][detected] as f64 / row_total as f64
        }
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Renders the Table 7.1 layout.
    pub fn render(&self) -> String {
        let n = self.counts.len();
        let mut out = String::from("actual\\detected");
        for d in 0..n {
            out.push_str(&format!("{d:>8}"));
        }
        out.push('\n');
        for a in 0..n {
            out.push_str(&format!("{a:>15} "));
            for d in 0..n {
                out.push_str(&format!("{:>7.0}%", self.percentage(a, d)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrogram::AngleSpectrogram;

    /// Builds a spectrogram with unit floor and the given (angle-index,
    /// linear power) spikes in every window.
    fn spec_with_spikes(spikes: &[(usize, f64)]) -> AngleSpectrogram {
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        for &(idx, p) in spikes {
            row[idx] = p;
        }
        AngleSpectrogram::new(thetas, vec![0.0, 1.0], vec![row.clone(), row])
    }

    #[test]
    fn dc_only_scene_has_near_zero_variance() {
        // A spike at θ = 0 (index 9) only: variance vanishes because θ²
        // weighting kills the DC.
        let spec = spec_with_spikes(&[(9, 1000.0)]);
        assert!(mean_spatial_variance(&spec) < 1e-9);
    }

    #[test]
    fn off_axis_energy_raises_variance() {
        let one = spec_with_spikes(&[(9, 1000.0), (13, 100.0)]); // +40°
        let two = spec_with_spikes(&[(9, 1000.0), (13, 100.0), (3, 100.0)]); // +40° & −60°
        let v1 = mean_spatial_variance(&one);
        let v2 = mean_spatial_variance(&two);
        assert!(v1 > 0.0);
        assert!(
            v2 > v1,
            "adding a second body must raise variance: {v1} vs {v2}"
        );
    }

    #[test]
    fn centroid_tracks_energy_side() {
        let right = spec_with_spikes(&[(14, 500.0)]); // +50°
        let c = spatial_centroid_profile(&right);
        assert!(c[0] > 5.0, "centroid {}, expected positive", c[0]);
        let left = spec_with_spikes(&[(4, 500.0)]); // −50°
        let c = spatial_centroid_profile(&left);
        assert!(c[0] < -5.0);
    }

    #[test]
    fn classifier_learns_ordered_thresholds() {
        let samples = vec![
            (0, 10.0),
            (0, 12.0),
            (1, 100.0),
            (1, 110.0),
            (2, 300.0),
            (2, 310.0),
            (3, 500.0),
            (3, 520.0),
        ];
        let clf = VarianceClassifier::train(&samples, 4);
        // Class means: 11, 105, 305, 510 → thresholds 58, 205, 407.5.
        assert_eq!(clf.classify(5.0), 0);
        assert_eq!(clf.classify(60.0), 1);
        assert_eq!(clf.classify(250.0), 2);
        assert_eq!(clf.classify(420.0), 3);
        assert_eq!(clf.classify(9_999.0), 3);
        let th = clf.thresholds();
        assert!(th.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn classifier_requires_all_classes() {
        let _ = VarianceClassifier::train(&[(0, 1.0), (2, 3.0)], 3);
    }

    #[test]
    fn confusion_matrix_percentages_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(1, 1);
        cm.record(1, 2);
        cm.record(2, 2);
        assert_eq!(cm.percentage(0, 0), 100.0);
        assert_eq!(cm.percentage(1, 1), 50.0);
        assert!((cm.accuracy() - 0.8).abs() < 1e-12);
        let r = cm.render();
        assert!(r.contains("100%"));
    }

    #[test]
    fn refactored_ridge_test_pins_original_counting_formula() {
        // `window_spatial_variance` now goes through the shared
        // `spectrogram::is_ridge_bin` kernel; this sweep pins it to the
        // original inline formula bit-for-bit so the counting statistic
        // (and every trained classifier threshold) is unchanged.
        use wivi_num::rng::Rng64;
        let thetas: Vec<f64> = (0..61).map(|i| -90.0 + 3.0 * i as f64).collect();
        let mut rng = Rng64::seed_from_u64(42);
        for _ in 0..32 {
            let row: Vec<f64> = (0..61)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        rng.gen_range(1.0, 1e4) // occasional ridge
                    } else {
                        rng.gen_range(0.0, 5.0) // grass
                    }
                })
                .collect();
            let original: f64 = thetas
                .iter()
                .zip(&row)
                .filter(|(th, &p)| {
                    th.abs() >= DC_GUARD_DEG && 10.0 * p.max(1e-30).log10() >= RIDGE_THRESHOLD_DB
                })
                .map(|(&th, _)| th * th)
                .sum();
            let refactored = window_spatial_variance(&thetas, &row);
            assert_eq!(refactored.to_bits(), original.to_bits());
        }
    }

    #[test]
    fn variance_profile_length_matches_windows() {
        let spec = spec_with_spikes(&[(9, 10.0)]);
        assert_eq!(spatial_variance_profile(&spec).len(), 2);
    }

    #[test]
    fn streaming_variance_matches_offline_mean_exactly() {
        let spec = spec_with_spikes(&[(9, 1000.0), (13, 100.0), (3, 40.0)]);
        let mut sink = StreamingVariance::new();
        for row in &spec.power {
            sink.push_column(&spec.thetas_deg, row);
        }
        assert_eq!(sink.n_columns(), spec.n_times());
        assert_eq!(sink.mean(), mean_spatial_variance(&spec));
    }

    #[test]
    #[should_panic(expected = "no spectrogram columns")]
    fn streaming_variance_requires_columns() {
        let _ = StreamingVariance::new().mean();
    }
}
