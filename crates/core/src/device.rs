//! The end-to-end Wi-Vi device (paper Ch. 3).
//!
//! [`WiViDevice`] ties the stages together in the order the real device
//! runs them: null the static environment (Algorithm 1), then record the
//! residual-channel trace at the channel sampling rate, and finally hand
//! the trace to the mode-specific processor — MUSIC tracking / counting
//! (mode 1, §3.2) or gesture decoding (mode 2).
//!
//! Each mode has two shapes. The `*_streaming` entry points run the real
//! device's pipeline: observations arrive from the front-end in fixed-size
//! batches and flow through a [`Stage`] that emits
//! spectrogram columns as analysis windows complete, holding only one
//! window of samples. The offline one-shot methods ([`WiViDevice::track`],
//! [`WiViDevice::decode_gestures`]) materialize the trace first; both
//! shapes produce bitwise-identical outputs.

use wivi_num::Complex64;
use wivi_rf::SceneHandle;
use wivi_sdr::{MimoFrontend, Observation, RadioConfig};

use crate::counting::{mean_spatial_variance, StreamingVariance};
use crate::gesture::{decode, GestureDecode, GestureDecoderConfig};
use crate::isar::beamform_spectrum;
use crate::music::{music_spectrum, MusicConfig};
use crate::nulling::{run_nulling, NullingConfig, NullingReport};
use crate::spectrogram::AngleSpectrogram;
use crate::stage::{Stage, StreamingBeamform, StreamingMusic};

/// Default number of observations per batch for the streaming entry
/// points: 16 channel samples ≈ 51 ms at the paper's 312.5 Hz rate — the
/// frame-chunked cadence a UHD receive stream delivers.
pub const DEFAULT_BATCH_LEN: usize = 16;

/// Complete device configuration.
#[derive(Clone, Copy, Debug)]
pub struct WiViConfig {
    pub radio: RadioConfig,
    pub nulling: NullingConfig,
    pub music: MusicConfig,
    pub gesture: GestureDecoderConfig,
}

impl WiViConfig {
    /// The paper's parameters: 64-subcarrier 5 MHz OFDM, w = 100 over
    /// 0.32 s, w′ = 50, 12 dB boost, 3 dB gesture threshold.
    pub fn paper_default() -> Self {
        Self {
            radio: RadioConfig::wivi_default(),
            nulling: NullingConfig::default(),
            music: MusicConfig::wivi_default(),
            gesture: GestureDecoderConfig::default(),
        }
    }

    /// Reduced parameters for fast tests (16 subcarriers, w = 40, w′ = 20).
    pub fn fast_test() -> Self {
        Self {
            radio: RadioConfig::fast_test(),
            nulling: NullingConfig::default(),
            music: MusicConfig::fast_test(),
            gesture: GestureDecoderConfig::default(),
        }
    }

    /// Validates cross-stage consistency.
    ///
    /// # Panics
    /// Panics if the ISAR sampling period does not match the radio's
    /// channel rate.
    pub fn validate(&self) {
        self.music.validate();
        let radio_period = 1.0 / self.radio.channel_rate_hz;
        assert!(
            (self.music.isar.sample_period_s - radio_period).abs() < 1e-9,
            "ISAR sample period ({}) must match the radio channel rate period ({})",
            self.music.isar.sample_period_s,
            radio_period
        );
    }
}

/// The Wi-Vi device: a nulling MIMO radio plus the tracking/gesture DSP.
pub struct WiViDevice {
    fe: MimoFrontend,
    cfg: WiViConfig,
    report: Option<NullingReport>,
}

impl WiViDevice {
    /// Builds a device over `scene` with deterministic noise from `seed`.
    /// `scene` may be an owned [`Scene`](wivi_rf::Scene) or a shared
    /// [`SceneHandle`] from a [`SceneStore`](wivi_rf::SceneStore) —
    /// devices never mutate their scene during recording, so sharing is
    /// free and bitwise-invisible.
    ///
    /// The MUSIC noise floor is derived from the radio configuration
    /// (thermal noise per subcarrier, combined over the subcarriers) —
    /// the simulated analogue of the one-off terminated-input noise
    /// calibration a real receiver performs.
    pub fn new(scene: impl Into<SceneHandle>, mut cfg: WiViConfig, seed: u64) -> Self {
        cfg.validate();
        if cfg.music.noise_floor_power.is_none() {
            let k = cfg.radio.ofdm.n_subcarriers as f64;
            cfg.music.noise_floor_power = Some(cfg.radio.noise_sigma.powi(2) / k);
        }
        Self {
            fe: MimoFrontend::new(scene, cfg.radio, seed),
            cfg,
            report: None,
        }
    }

    /// Runs the nulling pipeline (Algorithm 1). Must be called before any
    /// recording; may be re-run to re-null (e.g. after large scene
    /// changes).
    pub fn calibrate(&mut self) -> &NullingReport {
        let report = run_nulling(&mut self.fe, &self.cfg.nulling);
        self.report = Some(report);
        self.report.as_ref().unwrap()
    }

    /// The most recent nulling report.
    pub fn nulling_report(&self) -> Option<&NullingReport> {
        self.report.as_ref()
    }

    /// Number of channel samples a recording of `duration_s` seconds
    /// produces — the one conversion both the offline and streaming paths
    /// use, so their bitwise-equivalence contract cannot be broken by the
    /// two rounding independently. Public so external drivers (the
    /// tracking extension, the serving engine) share it too.
    pub fn trace_len(&self, duration_s: f64) -> usize {
        (duration_s * self.cfg.radio.channel_rate_hz).round() as usize
    }

    /// Observes `n` residual-channel samples (subcarrier-combined) into
    /// `out` (cleared first) — the *resumable* streaming drive: unlike
    /// the one-shot `*_streaming` entry points, which consume a whole
    /// recording in one call, a serving engine calls this once per batch
    /// and interleaves many sessions' batches on one worker. Repeated
    /// calls produce exactly the sample sequence one
    /// [`observe_stream`](wivi_sdr::MimoFrontend::observe_stream) drain
    /// would — the front-end advances identically — so incremental
    /// serving output stays bitwise identical to the standalone device.
    ///
    /// # Panics
    /// Panics if the device has not been calibrated.
    pub fn observe_batch_into(&mut self, n: usize, out: &mut Vec<Complex64>) {
        assert!(
            self.report.is_some(),
            "call calibrate() before recording traces"
        );
        out.clear();
        self.fe.record_trace_into(n, out);
    }

    /// Records `duration_s` seconds of the nulled residual channel
    /// (subcarrier-combined), at the radio's channel rate.
    ///
    /// # Panics
    /// Panics if the device has not been calibrated.
    pub fn record_trace(&mut self, duration_s: f64) -> Vec<Complex64> {
        assert!(
            self.report.is_some(),
            "call calibrate() before recording traces"
        );
        let n = self.trace_len(duration_s);
        self.fe.record_trace(n)
    }

    /// Mode 1 — imaging/tracking: records a trace and runs smoothed MUSIC,
    /// producing the paper's `A′[θ, n]`. Offline one-shot shape; the
    /// device's real cadence is [`Self::track_streaming`].
    pub fn track(&mut self, duration_s: f64) -> AngleSpectrogram {
        let trace = self.record_trace(duration_s);
        music_spectrum(&trace, &self.cfg.music)
    }

    /// Mode 1, streaming shape: observations flow from the front-end in
    /// `batch_len`-sample batches through a [`StreamingMusic`] stage that
    /// emits spectrogram columns as windows complete. Output is bitwise
    /// identical to [`Self::track`]; memory is bounded by one analysis
    /// window instead of the trial length.
    ///
    /// # Panics
    /// Panics if the device has not been calibrated or `batch_len == 0`.
    pub fn track_streaming(&mut self, duration_s: f64, batch_len: usize) -> AngleSpectrogram {
        let mut stage = StreamingMusic::new(self.cfg.music);
        self.run_stage(duration_s, batch_len, &mut stage, |_, _| {});
        stage.finish()
    }

    /// Mode 1 — counting support: the trial's mean spatial variance
    /// (classify it with a trained
    /// [`VarianceClassifier`](crate::counting::VarianceClassifier)).
    pub fn measure_spatial_variance(&mut self, duration_s: f64) -> f64 {
        let spec = self.track(duration_s);
        mean_spatial_variance(&spec)
    }

    /// Mode 1 counting, streaming shape: the spatial-variance statistic is
    /// folded column-by-column through a [`StreamingVariance`] sink as the
    /// tracker emits them — the full pipeline never materializes a trace
    /// *or* a spectrogram. Equals [`Self::measure_spatial_variance`]
    /// exactly.
    ///
    /// # Panics
    /// Panics if the device has not been calibrated, `batch_len == 0`, or
    /// the duration is shorter than one analysis window.
    pub fn measure_spatial_variance_streaming(&mut self, duration_s: f64, batch_len: usize) -> f64 {
        let mut stage = StreamingMusic::sink_only(self.cfg.music);
        let mut sink = StreamingVariance::new();
        self.run_stage(duration_s, batch_len, &mut stage, |thetas, row| {
            sink.push_column(thetas, row);
        });
        sink.mean()
    }

    /// Mode 2 — gesture interface: records a trace, beamforms it
    /// (Eq. 5.1 — the amplitude-bearing spectrum the matched filter
    /// needs; see [`crate::gesture::signed_amplitude_track`]), and decodes
    /// the gesture message. Offline one-shot shape.
    pub fn decode_gestures(&mut self, duration_s: f64) -> GestureDecode {
        let trace = self.record_trace(duration_s);
        let spec = beamform_spectrum(&trace, &self.cfg.music.isar);
        decode(&spec, &self.cfg.gesture)
    }

    /// Mode 2, streaming shape: the beamformer consumes observation
    /// batches incrementally; the matched-filter decode runs once the
    /// message window closes (the decoder needs the whole track for its
    /// noise reference). Bitwise identical to [`Self::decode_gestures`].
    ///
    /// # Panics
    /// Panics if the device has not been calibrated or `batch_len == 0`.
    pub fn decode_gestures_streaming(
        &mut self,
        duration_s: f64,
        batch_len: usize,
    ) -> GestureDecode {
        let mut stage = StreamingBeamform::new(self.cfg.music.isar);
        self.run_stage(duration_s, batch_len, &mut stage, |_, _| {});
        let spec = stage.finish();
        decode(&spec, &self.cfg.gesture)
    }

    /// Drives one tracker stage over `duration_s` of batched observations,
    /// invoking `on_column(thetas, row)` for every newly completed
    /// spectrogram column — the composition point between the radio
    /// stream, a tracker [`Stage`], and any incremental sink.
    fn run_stage(
        &mut self,
        duration_s: f64,
        batch_len: usize,
        stage: &mut dyn Stage,
        mut on_column: impl FnMut(&[f64], &[f64]),
    ) {
        assert!(
            self.report.is_some(),
            "call calibrate() before recording traces"
        );
        let total = self.trace_len(duration_s);
        let mut stream = self.fe.observe_stream(total, batch_len);
        let mut batch: Vec<Observation> = Vec::with_capacity(batch_len);
        let mut samples: Vec<Complex64> = Vec::with_capacity(batch_len);
        loop {
            let got = stream.next_batch_into(&mut batch);
            if got == 0 {
                break;
            }
            samples.clear();
            samples.extend(batch.iter().map(Observation::combined));
            stage.push_with(&samples, &mut on_column);
        }
    }

    /// Current scene time, seconds.
    pub fn now(&self) -> f64 {
        self.fe.now()
    }

    /// The device configuration.
    pub fn config(&self) -> &WiViConfig {
        &self.cfg
    }

    /// Access to the underlying front-end (diagnostics, gain inspection).
    pub fn frontend(&self) -> &MimoFrontend {
        &self.fe
    }

    /// Mutable front-end access (e.g. to mutate the scene between stages).
    pub fn frontend_mut(&mut self) -> &mut MimoFrontend {
        &mut self.fe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_rf::{
        GestureScript, GestureStyle, Material, Mover, Point, Scene, Vec2, WaypointWalker,
    };

    fn static_scene() -> Scene {
        Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small())
    }

    #[test]
    fn calibrate_then_track_static_scene_shows_only_dc() {
        let mut dev = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 1);
        dev.calibrate();
        let spec = dev.track(1.5);
        // Dominant energy at θ ≈ 0 in (almost) all windows.
        let mut dc_wins = 0;
        for t in 0..spec.n_times() {
            let all = spec.dominant_angle(t, 0.0).unwrap();
            if all.abs() <= 10.0 {
                dc_wins += 1;
            }
        }
        assert!(
            dc_wins * 10 >= spec.n_times() * 8,
            "static scene not DC-dominated: {dc_wins}/{}",
            spec.n_times()
        );
    }

    #[test]
    fn walker_produces_off_dc_energy() {
        let scene = static_scene().with_mover(Mover::human(WaypointWalker::new(
            vec![
                Point::new(-1.5, 4.0),
                Point::new(0.0, 1.2),
                Point::new(1.5, 4.0),
            ],
            1.0,
        )));
        let mut dev = WiViDevice::new(scene, WiViConfig::fast_test(), 2);
        dev.calibrate();
        let v_moving = dev.measure_spatial_variance(2.5);

        let mut dev2 = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 2);
        dev2.calibrate();
        let v_static = dev2.measure_spatial_variance(2.5);

        assert!(
            v_moving > 2.0 * v_static,
            "moving variance {v_moving:.1} not above static {v_static:.1}"
        );
    }

    #[test]
    fn gesture_bit_decodes_through_wall() {
        let style = GestureStyle::default();
        // Lead-in of 3 s: the decoder's noise reference (default 1.5 s)
        // must see a gesture-free interval.
        let script = GestureScript::for_bits(
            Point::new(0.0, 3.0),
            Vec2::new(0.0, -1.0), // facing the device
            style,
            3.0,
            &[false],
        );
        let total = 3.0 + script.duration() + 1.0;
        let scene = static_scene().with_mover(Mover::human(script));
        let mut dev = WiViDevice::new(scene, WiViConfig::fast_test(), 3);
        dev.calibrate();
        let d = dev.decode_gestures(total);
        assert_eq!(
            d.bits.first().copied().flatten(),
            Some(false),
            "decoded {:?} (gestures: {:?})",
            d.bits,
            d.gestures
        );
    }

    #[test]
    fn record_before_calibrate_panics() {
        let mut dev = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = dev.record_trace(0.5);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn config_validation_catches_rate_mismatch() {
        let mut cfg = WiViConfig::fast_test();
        cfg.music.isar.sample_period_s *= 2.0;
        let r = std::panic::catch_unwind(|| cfg.validate());
        assert!(r.is_err());
    }

    #[test]
    fn batched_observation_matches_one_shot_recording() {
        // The serving drive's contract: repeated observe_batch_into calls
        // reproduce record_trace bit for bit, whatever the batch split.
        let mut dev = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 55);
        dev.calibrate();
        let expect = dev.record_trace(0.5);
        let n = dev.trace_len(0.5);
        assert_eq!(expect.len(), n);

        let mut dev2 = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 55);
        dev2.calibrate();
        let mut got: Vec<Complex64> = Vec::new();
        let mut batch = Vec::new();
        let mut remaining = n;
        for len in [7usize, 1, 16, usize::MAX] {
            let take = len.min(remaining);
            dev2.observe_batch_into(take, &mut batch);
            assert_eq!(batch.len(), take);
            got.extend_from_slice(&batch);
            remaining -= take;
        }
        assert_eq!(got, expect);
        assert_eq!(dev.now(), dev2.now());
    }

    #[test]
    fn device_is_deterministic_per_seed() {
        let run = || {
            let mut dev = WiViDevice::new(static_scene(), WiViConfig::fast_test(), 77);
            dev.calibrate();
            dev.record_trace(0.5)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
