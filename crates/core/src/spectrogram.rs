//! The angle–time representation `A′[θ, n]` and its rendering.
//!
//! Every tracker in this crate (classic beamforming, smoothed MUSIC)
//! produces an [`AngleSpectrogram`]: power as a function of spatial angle
//! `θ ∈ [−90°, +90°]` and time. The paper's Figs. 5-2, 5-3, 6-1 and 7-2
//! are heatmaps of this object; [`AngleSpectrogram::render_ascii`]
//! reproduces them in a terminal.

/// Power (linear) over a grid of spatial angles × time windows.
#[derive(Clone, Debug)]
pub struct AngleSpectrogram {
    /// Angle grid in degrees, ascending (typically −90 ..= +90).
    pub thetas_deg: Vec<f64>,
    /// Centre time of each analysis window, seconds.
    pub times_s: Vec<f64>,
    /// `power[t][a]`: linear power at `times_s[t]`, `thetas_deg[a]`.
    pub power: Vec<Vec<f64>>,
}

impl AngleSpectrogram {
    /// Creates a spectrogram, validating shapes.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions or empty grids.
    pub fn new(thetas_deg: Vec<f64>, times_s: Vec<f64>, power: Vec<Vec<f64>>) -> Self {
        assert!(!thetas_deg.is_empty() && !times_s.is_empty());
        assert_eq!(power.len(), times_s.len(), "one power row per time window");
        for row in &power {
            assert_eq!(row.len(), thetas_deg.len(), "one power value per angle");
        }
        Self {
            thetas_deg,
            times_s,
            power,
        }
    }

    /// Number of time windows.
    pub fn n_times(&self) -> usize {
        self.times_s.len()
    }

    /// Number of angle bins.
    pub fn n_angles(&self) -> usize {
        self.thetas_deg.len()
    }

    /// Index of the angle bin closest to `deg`.
    pub fn angle_index(&self, deg: f64) -> usize {
        self.thetas_deg
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - deg).abs().partial_cmp(&(b.1 - deg).abs()).unwrap())
            .unwrap()
            .0
    }

    /// Per-window dB map relative to that window's noise floor — the
    /// *median* power across angles, clamped below at 0 dB:
    /// `w[t][a] = max(0, 10·log10(p[t][a] / median_a p[t][a]))`.
    /// Ridges (the DC spike, moving bodies) occupy few angle bins, so the
    /// median tracks the grass level and ridge heights stay comparable
    /// across windows regardless of how many bodies are present (a
    /// min-based floor would compress ridges whenever the pseudospectrum
    /// floor rises). This is the weighting used by the spatial-variance
    /// human counter.
    pub fn db_floor_normalized(&self) -> Vec<Vec<f64>> {
        self.power
            .iter()
            .map(|row| {
                let mut sorted = row.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let floor = sorted[sorted.len() / 2].max(1e-30);
                row.iter()
                    .map(|p| (10.0 * (p / floor).log10()).max(0.0))
                    .collect()
            })
            .collect()
    }

    /// The angle (degrees) of maximum power in window `t`, ignoring bins
    /// within `dc_guard_deg` of zero (the DC line).
    pub fn dominant_angle(&self, t: usize, dc_guard_deg: f64) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None;
        for (a, &th) in self.thetas_deg.iter().enumerate() {
            if th.abs() < dc_guard_deg {
                continue;
            }
            let p = self.power[t][a];
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, th));
            }
        }
        best.map(|(_, th)| th)
    }

    /// Per-window dB map with a ridge threshold applied: values below
    /// `threshold_db` above the window floor are zeroed. MUSIC noise
    /// "grass" — the speckle visible in the background of the paper's
    /// Fig. 7-2 — sits below ~10 dB; real ridges (DC, bodies) sit well
    /// above, so thresholding isolates the structure that the counting
    /// and gesture statistics are meant to measure.
    pub fn db_ridges(&self, threshold_db: f64) -> Vec<Vec<f64>> {
        let mut db = self.db_floor_normalized();
        for row in &mut db {
            for v in row.iter_mut() {
                if *v < threshold_db {
                    *v = 0.0;
                }
            }
        }
        db
    }

    /// Absolute-scale dB map `max(0, 10·log10 p)` with a ridge threshold.
    /// Valid for spectra with a calibrated unit floor — the normalized
    /// MUSIC pseudospectrum of [`crate::music::music_spectrum`] scores
    /// exactly 1 where steering vectors see no signal — so, unlike
    /// [`Self::db_ridges`], ridge heights do not compress when other
    /// bodies raise the window's overall level: per-body ridge mass stays
    /// additive, which the human counter depends on.
    pub fn db_ridges_absolute(&self, threshold_db: f64) -> Vec<Vec<f64>> {
        self.power
            .iter()
            .map(|row| {
                row.iter()
                    .map(|p| {
                        let db = 10.0 * p.max(1e-30).log10();
                        if db < threshold_db {
                            0.0
                        } else {
                            db
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Signed angle-energy track used by the gesture decoder: for each
    /// window, (sum of ridge dB at θ > guard) − (same at θ < −guard),
    /// with sub-ridge grass removed by `threshold_db` (see
    /// [`Self::db_ridges`]). Forward steps drive it positive, backward
    /// steps negative; the DC line near θ = 0 is excluded.
    pub fn signed_energy(&self, dc_guard_deg: f64, threshold_db: f64) -> Vec<f64> {
        let db = self.db_ridges(threshold_db);
        db.iter()
            .map(|row| {
                let mut s = 0.0;
                for (a, &th) in self.thetas_deg.iter().enumerate() {
                    if th > dc_guard_deg {
                        s += row[a];
                    } else if th < -dc_guard_deg {
                        s -= row[a];
                    }
                }
                s
            })
            .collect()
    }

    /// Renders the spectrogram as an ASCII heatmap (angle on y, +90° at
    /// the top as in the paper's figures; time on x), `rows × cols`
    /// characters plus axes.
    pub fn render_ascii(&self, rows: usize, cols: usize) -> String {
        assert!(rows >= 2 && cols >= 2);
        const RAMP: &[u8] = b" .:-=+*#%@";
        let db = self.db_floor_normalized();
        let max_db = db
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-9);

        let mut out = String::new();
        for r in 0..rows {
            // Top row = +90°.
            let fa = (rows - 1 - r) as f64 / (rows - 1) as f64;
            let a = (fa * (self.n_angles() - 1) as f64).round() as usize;
            let theta = self.thetas_deg[a];
            out.push_str(&format!("{theta:>5.0}° |"));
            for c in 0..cols {
                let ft = c as f64 / (cols - 1) as f64;
                let t = (ft * (self.n_times() - 1) as f64).round() as usize;
                let level = (db[t][a] / max_db).clamp(0.0, 1.0);
                let idx = ((RAMP.len() - 1) as f64 * level).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "       +{}\n        t = {:.1}s .. {:.1}s\n",
            "-".repeat(cols),
            self.times_s.first().unwrap(),
            self.times_s.last().unwrap()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> AngleSpectrogram {
        // 3 angles × 2 windows; a hot spot at (+90°, t1).
        AngleSpectrogram::new(
            vec![-90.0, 0.0, 90.0],
            vec![0.0, 1.0],
            vec![vec![1.0, 10.0, 1.0], vec![1.0, 10.0, 100.0]],
        )
    }

    #[test]
    fn floor_normalization_is_nonnegative_and_median_referenced() {
        let db = demo().db_floor_normalized();
        for row in &db {
            assert!(row.iter().all(|&v| v >= 0.0));
        }
        // Window 0: median 1 → the 10× spike reads 10 dB.
        assert!((db[0][1] - 10.0).abs() < 1e-9);
        // Window 1: median 10 → the 100× spike reads 10 dB, floor clamps.
        assert!((db[1][2] - 10.0).abs() < 1e-9);
        assert_eq!(db[1][0], 0.0);
    }

    #[test]
    fn dominant_angle_skips_dc() {
        let s = demo();
        // Window 0: max is at θ=0 (DC) but guard excludes it → ±90 tie,
        // either is acceptable; window 1: clear peak at +90.
        assert_eq!(s.dominant_angle(1, 5.0), Some(90.0));
        // Without a guard the DC wins in window 0.
        assert_eq!(s.dominant_angle(0, 0.0), Some(0.0));
    }

    #[test]
    fn signed_energy_sign_convention() {
        let s = demo();
        let e = s.signed_energy(5.0, 0.0);
        // Window 1 has strong +90° energy → positive.
        assert!(e[1] > 0.0);
        // Window 0 is symmetric at the floor → zero.
        assert!(e[0].abs() < 1e-9);
    }

    #[test]
    fn ridge_threshold_zeroes_grass() {
        let s = demo();
        // Median-referenced: window 0 → [0, 10, 0]; window 1 → [0, 0, 10].
        // An 8 dB ridge threshold keeps only the 10 dB spikes.
        let r = s.db_ridges(8.0);
        assert_eq!(r[0], vec![0.0, 10.0, 0.0]);
        assert_eq!(r[1], vec![0.0, 0.0, 10.0]);
        // Thresholded signed energy in window 1 counts only the ridge.
        let e = s.signed_energy(5.0, 8.0);
        assert!((e[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn angle_index_nearest() {
        let s = demo();
        assert_eq!(s.angle_index(80.0), 2);
        assert_eq!(s.angle_index(-1.0), 1);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let art = demo().render_ascii(3, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5); // 3 rows + axis + time label
        assert!(lines[0].contains("90°"));
        assert!(lines[0].contains('|'));
        // Hot spot renders as the densest character somewhere in row 0.
        assert!(lines[0].contains('@'));
    }

    #[test]
    #[should_panic(expected = "one power value per angle")]
    fn shape_validation() {
        let _ = AngleSpectrogram::new(vec![0.0], vec![0.0], vec![vec![1.0, 2.0]]);
    }
}
