//! The angle–time representation `A′[θ, n]` and its rendering.
//!
//! Every tracker in this crate (classic beamforming, smoothed MUSIC)
//! produces an [`AngleSpectrogram`]: power as a function of spatial angle
//! `θ ∈ [−90°, +90°]` and time. The paper's Figs. 5-2, 5-3, 6-1 and 7-2
//! are heatmaps of this object; [`AngleSpectrogram::render_ascii`]
//! reproduces them in a terminal.

/// Absolute dB of a linear power, clamped away from `log(0)`:
/// `10·log₁₀(max(p, 1e−30))`. The one conversion shared by the ridge
/// maps, the counting statistic and the tracker's detector, so their
/// notions of "ridge" can never drift apart.
pub fn power_db(p: f64) -> f64 {
    10.0 * p.max(1e-30).log10()
}

/// The shared per-bin ridge test: a spectrogram bin is *ridge support*
/// when it lies outside the DC guard and its absolute dB clears the
/// threshold. Valid for spectra with a calibrated unit floor (the
/// normalized MUSIC pseudospectrum scores exactly 1 where steering
/// vectors see no signal). This is the predicate
/// [`crate::counting::window_spatial_variance`] sums over and the
/// detector extracts peaks from.
pub fn is_ridge_bin(theta_deg: f64, p: f64, threshold_db: f64, dc_guard_deg: f64) -> bool {
    theta_deg.abs() >= dc_guard_deg && power_db(p) >= threshold_db
}

/// One ridge peak extracted from a spectrogram column — a local maximum
/// of the ridge support with its position refined below the angle-bin
/// quantum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RidgePeak {
    /// Index of the peak's angle bin.
    pub bin: usize,
    /// Sub-bin interpolated peak angle, degrees.
    pub theta_deg: f64,
    /// Interpolated peak height, absolute dB.
    pub power_db: f64,
}

/// Extracts the ridge peaks of one spectrogram column: every strict local
/// maximum of the ridge support (see [`is_ridge_bin`]), position-refined
/// by a three-point parabolic fit in the dB domain (the standard sub-bin
/// interpolation; the offset is clamped to ±½ bin so a degenerate fit can
/// never leave the peak's cell). Peaks are returned in ascending angle
/// order. Plateaus yield their leftmost bin, so the output is
/// deterministic bit-for-bit.
///
/// This is the per-column kernel shared by the spatial-variance counter
/// (which only needs the support) and the multi-target tracker's
/// detector (which needs the refined peaks).
pub fn ridge_peaks(
    thetas_deg: &[f64],
    power_row: &[f64],
    threshold_db: f64,
    dc_guard_deg: f64,
) -> Vec<RidgePeak> {
    assert_eq!(
        thetas_deg.len(),
        power_row.len(),
        "one power value per angle"
    );
    let n = power_row.len();
    let mut peaks = Vec::new();
    for i in 0..n {
        if !is_ridge_bin(thetas_deg[i], power_row[i], threshold_db, dc_guard_deg) {
            continue;
        }
        let p = power_row[i];
        let left_lower = i == 0 || power_row[i - 1] < p;
        let right_not_higher = i + 1 == n || power_row[i + 1] <= p;
        if !(left_lower && right_not_higher) {
            continue;
        }
        let c = power_db(p);
        let (theta, height) = if i == 0 || i + 1 == n {
            (thetas_deg[i], c)
        } else {
            let l = power_db(power_row[i - 1]);
            let r = power_db(power_row[i + 1]);
            let denom = l - 2.0 * c + r;
            if denom >= 0.0 {
                // Flat or non-concave neighbourhood: no refinement.
                (thetas_deg[i], c)
            } else {
                let delta = (0.5 * (l - r) / denom).clamp(-0.5, 0.5);
                let bin_width = thetas_deg[i + 1] - thetas_deg[i];
                (
                    thetas_deg[i] + delta * bin_width,
                    c - 0.25 * (l - r) * delta,
                )
            }
        };
        peaks.push(RidgePeak {
            bin: i,
            theta_deg: theta,
            power_db: height,
        });
    }
    peaks
}

/// Power (linear) over a grid of spatial angles × time windows.
#[derive(Clone, Debug)]
pub struct AngleSpectrogram {
    /// Angle grid in degrees, ascending (typically −90 ..= +90).
    pub thetas_deg: Vec<f64>,
    /// Centre time of each analysis window, seconds.
    pub times_s: Vec<f64>,
    /// `power[t][a]`: linear power at `times_s[t]`, `thetas_deg[a]`.
    pub power: Vec<Vec<f64>>,
}

impl AngleSpectrogram {
    /// Creates a spectrogram, validating shapes.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions or empty grids.
    pub fn new(thetas_deg: Vec<f64>, times_s: Vec<f64>, power: Vec<Vec<f64>>) -> Self {
        assert!(!thetas_deg.is_empty() && !times_s.is_empty());
        assert_eq!(power.len(), times_s.len(), "one power row per time window");
        for row in &power {
            assert_eq!(row.len(), thetas_deg.len(), "one power value per angle");
        }
        Self {
            thetas_deg,
            times_s,
            power,
        }
    }

    /// Number of time windows.
    pub fn n_times(&self) -> usize {
        self.times_s.len()
    }

    /// Number of angle bins.
    pub fn n_angles(&self) -> usize {
        self.thetas_deg.len()
    }

    /// Index of the angle bin closest to `deg`.
    pub fn angle_index(&self, deg: f64) -> usize {
        self.thetas_deg
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - deg).abs().partial_cmp(&(b.1 - deg).abs()).unwrap())
            .unwrap()
            .0
    }

    /// Per-window dB map relative to that window's noise floor — the
    /// *median* power across angles, clamped below at 0 dB:
    /// `w[t][a] = max(0, 10·log10(p[t][a] / median_a p[t][a]))`.
    /// Ridges (the DC spike, moving bodies) occupy few angle bins, so the
    /// median tracks the grass level and ridge heights stay comparable
    /// across windows regardless of how many bodies are present (a
    /// min-based floor would compress ridges whenever the pseudospectrum
    /// floor rises). This is the weighting used by the spatial-variance
    /// human counter.
    pub fn db_floor_normalized(&self) -> Vec<Vec<f64>> {
        self.power
            .iter()
            .map(|row| {
                let mut sorted = row.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let floor = sorted[sorted.len() / 2].max(1e-30);
                row.iter()
                    .map(|p| (10.0 * (p / floor).log10()).max(0.0))
                    .collect()
            })
            .collect()
    }

    /// The angle (degrees) of maximum power in window `t`, ignoring bins
    /// within `dc_guard_deg` of zero (the DC line).
    pub fn dominant_angle(&self, t: usize, dc_guard_deg: f64) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None;
        for (a, &th) in self.thetas_deg.iter().enumerate() {
            if th.abs() < dc_guard_deg {
                continue;
            }
            let p = self.power[t][a];
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, th));
            }
        }
        best.map(|(_, th)| th)
    }

    /// Per-window dB map with a ridge threshold applied: values below
    /// `threshold_db` above the window floor are zeroed. MUSIC noise
    /// "grass" — the speckle visible in the background of the paper's
    /// Fig. 7-2 — sits below ~10 dB; real ridges (DC, bodies) sit well
    /// above, so thresholding isolates the structure that the counting
    /// and gesture statistics are meant to measure.
    pub fn db_ridges(&self, threshold_db: f64) -> Vec<Vec<f64>> {
        let mut db = self.db_floor_normalized();
        for row in &mut db {
            for v in row.iter_mut() {
                if *v < threshold_db {
                    *v = 0.0;
                }
            }
        }
        db
    }

    /// Absolute-scale dB map `max(0, 10·log10 p)` with a ridge threshold.
    /// Valid for spectra with a calibrated unit floor — the normalized
    /// MUSIC pseudospectrum of [`crate::music::music_spectrum`] scores
    /// exactly 1 where steering vectors see no signal — so, unlike
    /// [`Self::db_ridges`], ridge heights do not compress when other
    /// bodies raise the window's overall level: per-body ridge mass stays
    /// additive, which the human counter depends on.
    pub fn db_ridges_absolute(&self, threshold_db: f64) -> Vec<Vec<f64>> {
        self.power
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&p| {
                        let db = power_db(p);
                        if db < threshold_db {
                            0.0
                        } else {
                            db
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The [`ridge_peaks`] of window `t`'s column.
    pub fn ridge_peaks(&self, t: usize, threshold_db: f64, dc_guard_deg: f64) -> Vec<RidgePeak> {
        ridge_peaks(&self.thetas_deg, &self.power[t], threshold_db, dc_guard_deg)
    }

    /// Signed angle-energy track used by the gesture decoder: for each
    /// window, (sum of ridge dB at θ > guard) − (same at θ < −guard),
    /// with sub-ridge grass removed by `threshold_db` (see
    /// [`Self::db_ridges`]). Forward steps drive it positive, backward
    /// steps negative; the DC line near θ = 0 is excluded.
    pub fn signed_energy(&self, dc_guard_deg: f64, threshold_db: f64) -> Vec<f64> {
        let db = self.db_ridges(threshold_db);
        db.iter()
            .map(|row| {
                let mut s = 0.0;
                for (a, &th) in self.thetas_deg.iter().enumerate() {
                    if th > dc_guard_deg {
                        s += row[a];
                    } else if th < -dc_guard_deg {
                        s -= row[a];
                    }
                }
                s
            })
            .collect()
    }

    /// Renders the spectrogram as an ASCII heatmap (angle on y, +90° at
    /// the top as in the paper's figures; time on x), `rows × cols`
    /// characters plus axes.
    pub fn render_ascii(&self, rows: usize, cols: usize) -> String {
        assert!(rows >= 2 && cols >= 2);
        const RAMP: &[u8] = b" .:-=+*#%@";
        let db = self.db_floor_normalized();
        let max_db = db
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-9);

        let mut out = String::new();
        for r in 0..rows {
            // Top row = +90°.
            let fa = (rows - 1 - r) as f64 / (rows - 1) as f64;
            let a = (fa * (self.n_angles() - 1) as f64).round() as usize;
            let theta = self.thetas_deg[a];
            out.push_str(&format!("{theta:>5.0}° |"));
            for c in 0..cols {
                let ft = c as f64 / (cols - 1) as f64;
                let t = (ft * (self.n_times() - 1) as f64).round() as usize;
                let level = (db[t][a] / max_db).clamp(0.0, 1.0);
                let idx = ((RAMP.len() - 1) as f64 * level).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "       +{}\n        t = {:.1}s .. {:.1}s\n",
            "-".repeat(cols),
            self.times_s.first().unwrap(),
            self.times_s.last().unwrap()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> AngleSpectrogram {
        // 3 angles × 2 windows; a hot spot at (+90°, t1).
        AngleSpectrogram::new(
            vec![-90.0, 0.0, 90.0],
            vec![0.0, 1.0],
            vec![vec![1.0, 10.0, 1.0], vec![1.0, 10.0, 100.0]],
        )
    }

    #[test]
    fn floor_normalization_is_nonnegative_and_median_referenced() {
        let db = demo().db_floor_normalized();
        for row in &db {
            assert!(row.iter().all(|&v| v >= 0.0));
        }
        // Window 0: median 1 → the 10× spike reads 10 dB.
        assert!((db[0][1] - 10.0).abs() < 1e-9);
        // Window 1: median 10 → the 100× spike reads 10 dB, floor clamps.
        assert!((db[1][2] - 10.0).abs() < 1e-9);
        assert_eq!(db[1][0], 0.0);
    }

    #[test]
    fn dominant_angle_skips_dc() {
        let s = demo();
        // Window 0: max is at θ=0 (DC) but guard excludes it → ±90 tie,
        // either is acceptable; window 1: clear peak at +90.
        assert_eq!(s.dominant_angle(1, 5.0), Some(90.0));
        // Without a guard the DC wins in window 0.
        assert_eq!(s.dominant_angle(0, 0.0), Some(0.0));
    }

    #[test]
    fn signed_energy_sign_convention() {
        let s = demo();
        let e = s.signed_energy(5.0, 0.0);
        // Window 1 has strong +90° energy → positive.
        assert!(e[1] > 0.0);
        // Window 0 is symmetric at the floor → zero.
        assert!(e[0].abs() < 1e-9);
    }

    #[test]
    fn ridge_threshold_zeroes_grass() {
        let s = demo();
        // Median-referenced: window 0 → [0, 10, 0]; window 1 → [0, 0, 10].
        // An 8 dB ridge threshold keeps only the 10 dB spikes.
        let r = s.db_ridges(8.0);
        assert_eq!(r[0], vec![0.0, 10.0, 0.0]);
        assert_eq!(r[1], vec![0.0, 0.0, 10.0]);
        // Thresholded signed energy in window 1 counts only the ridge.
        let e = s.signed_energy(5.0, 8.0);
        assert!((e[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn angle_index_nearest() {
        let s = demo();
        assert_eq!(s.angle_index(80.0), 2);
        assert_eq!(s.angle_index(-1.0), 1);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let art = demo().render_ascii(3, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5); // 3 rows + axis + time label
        assert!(lines[0].contains("90°"));
        assert!(lines[0].contains('|'));
        // Hot spot renders as the densest character somewhere in row 0.
        assert!(lines[0].contains('@'));
    }

    #[test]
    #[should_panic(expected = "one power value per angle")]
    fn shape_validation() {
        let _ = AngleSpectrogram::new(vec![0.0], vec![0.0], vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn ridge_peaks_respect_threshold_and_guard() {
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        row[9] = 1e6; // DC spike (θ = 0) — must be guarded out.
        row[13] = 100.0; // +40°, 20 dB — a ridge.
        row[3] = 5.0; // −60°, 7 dB — below a 10 dB threshold.
        let peaks = ridge_peaks(&thetas, &row, 10.0, 10.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 13);
        assert!((peaks[0].theta_deg - 40.0).abs() < 5.0);
        assert!(peaks[0].power_db >= 20.0);
    }

    #[test]
    fn ridge_peak_interpolation_is_sub_bin() {
        // A peak whose true maximum lies between bins 12 (+30°) and
        // 13 (+40°): the right neighbour is hotter than the left, so the
        // refined angle must sit above the +30° grid point.
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        row[11] = 50.0;
        row[12] = 400.0;
        row[13] = 300.0;
        let peaks = ridge_peaks(&thetas, &row, 10.0, 10.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 12);
        assert!(
            peaks[0].theta_deg > 30.0 && peaks[0].theta_deg < 35.0,
            "interpolated {}",
            peaks[0].theta_deg
        );
        // The refined height can only exceed the sampled bin height.
        assert!(peaks[0].power_db >= power_db(400.0));
    }

    #[test]
    fn ridge_peaks_split_two_bodies() {
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        row[4] = 200.0; // −50°
        row[14] = 150.0; // +50°
        let peaks = ridge_peaks(&thetas, &row, 10.0, 10.0);
        assert_eq!(peaks.len(), 2);
        assert!(peaks[0].theta_deg < 0.0 && peaks[1].theta_deg > 0.0);
    }

    #[test]
    fn ridge_peak_plateau_yields_single_leftmost_peak() {
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        row[13] = 100.0;
        row[14] = 100.0;
        let peaks = ridge_peaks(&thetas, &row, 10.0, 10.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 13);
    }

    #[test]
    fn ridge_peak_at_grid_edge_is_not_interpolated() {
        let thetas: Vec<f64> = (0..19).map(|i| -90.0 + 10.0 * i as f64).collect();
        let mut row = vec![1.0; 19];
        row[18] = 100.0; // +90°, the last bin
        let peaks = ridge_peaks(&thetas, &row, 10.0, 10.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].theta_deg, 90.0);
        assert_eq!(peaks[0].power_db, power_db(100.0));
    }

    #[test]
    fn spectrogram_method_matches_free_function() {
        let s = demo();
        for t in 0..s.n_times() {
            assert_eq!(
                s.ridge_peaks(t, 10.0, 10.0),
                ridge_peaks(&s.thetas_deg, &s.power[t], 10.0, 10.0)
            );
        }
    }
}
