//! Inverse synthetic aperture processing (paper §5.1).
//!
//! Wi-Vi has one receive antenna, so at any instant it captures a single
//! measurement — but a *moving* target samples space as it moves, and by
//! channel reciprocity consecutive time samples of the nulled channel
//! `h[n]` correspond to consecutive spatial positions of the target. The
//! tracker therefore groups `w` consecutive channel samples into an
//! emulated antenna array with element spacing `Δ = 2·v·T` (`v` the
//! assumed human speed, `T` the sampling period; the factor 2 accounts for
//! the round trip) and beamforms it:
//!
//! ```text
//! A[θ, n] = Σ_{i=1..w} h[n+i] · e^{−j·(2π/λ)·i·Δ·sinθ}      (Eq. 5.1)
//! ```
//!
//! Sign convention: `θ > 0` ⇔ the target moves *toward* the device
//! (closing range ⇒ the channel phase advances ⇒ matched by positive
//! `sinθ`), matching Fig. 1-1(b) and the gesture figures. A static
//! environment (or the residual DC after nulling) accumulates coherently
//! only at `θ = 0` — the paper's "zero line".

use wivi_num::Complex64;

use crate::spectrogram::AngleSpectrogram;
use crate::stage::{Stage, StreamingBeamform};

/// Parameters of the emulated array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsarConfig {
    /// Emulated array size `w` (§7.1 uses 100).
    pub window: usize,
    /// Hop between successive analysis windows, in samples.
    pub hop: usize,
    /// Channel sampling period `T`, seconds (§7.1: 0.32 s / 100 = 3.2 ms).
    pub sample_period_s: f64,
    /// Assumed target speed `v` in m/s (§5.1 defaults to 1 m/s, the
    /// comfortable walking speed of ref.\[11\]; errors in `v` scale the angle
    /// estimate but never flip its sign).
    pub assumed_speed: f64,
    /// Carrier wavelength λ, metres.
    pub wavelength: f64,
    /// Number of angle bins across [−90°, +90°].
    pub n_angles: usize,
}

impl IsarConfig {
    /// The paper's configuration: `w = 100` over 0.32 s, v = 1 m/s,
    /// 1° angle resolution.
    pub fn wivi_default() -> Self {
        Self {
            window: 100,
            hop: 16,
            sample_period_s: 0.32 / 100.0,
            assumed_speed: 1.0,
            wavelength: wivi_rf::carrier_wavelength(),
            n_angles: 181,
        }
    }

    /// A reduced configuration for fast unit tests (w = 40, 61 angles).
    pub fn fast_test() -> Self {
        Self {
            window: 40,
            hop: 8,
            n_angles: 61,
            ..Self::wivi_default()
        }
    }

    /// Emulated element spacing `Δ = 2·v·T` (×2 for the round trip).
    pub fn element_spacing(&self) -> f64 {
        2.0 * self.assumed_speed * self.sample_period_s
    }

    /// The angle grid in degrees.
    pub fn thetas_deg(&self) -> Vec<f64> {
        (0..self.n_angles)
            .map(|i| -90.0 + 180.0 * i as f64 / (self.n_angles - 1) as f64)
            .collect()
    }

    /// Steering vector of length `len` for spatial angle `theta_deg`:
    /// element `i` is `e^{+j·(2π/λ)·i·Δ·sinθ}` — the phase signature of a
    /// target closing range at `v·sinθ`.
    pub fn steering_vector(&self, theta_deg: f64, len: usize) -> Vec<Complex64> {
        let k = std::f64::consts::TAU / self.wavelength
            * self.element_spacing()
            * theta_deg.to_radians().sin();
        (0..len).map(|i| Complex64::cis(k * i as f64)).collect()
    }

    /// Centre time of the analysis window starting at absolute sample
    /// `start` — the one expression every surface (streaming stages, the
    /// tracker's report, the serving engine) uses for window timestamps,
    /// so they can never round differently.
    pub fn window_center_s(&self, start: usize) -> f64 {
        (start as f64 + self.window as f64 / 2.0) * self.sample_period_s
    }

    /// Centre times of the analysis windows for a trace of `n` samples.
    pub fn window_times(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start + self.window <= n {
            out.push(self.window_center_s(start));
            start += self.hop;
        }
        out
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.window >= 4, "window too small");
        assert!(self.hop >= 1, "hop must be at least 1");
        assert!(self.sample_period_s > 0.0 && self.assumed_speed > 0.0);
        assert!(self.wavelength > 0.0);
        assert!(self.n_angles >= 3, "need at least 3 angle bins");
    }
}

/// The reusable per-window Bartlett beamformer (Eq. 5.1): precomputed
/// steering vectors applied to one emulated-array window at a time. Shared
/// by the offline [`beamform_spectrum`] and the incremental
/// [`StreamingBeamform`] stage.
pub struct BeamformEngine {
    cfg: IsarConfig,
    thetas: Vec<f64>,
    /// Per-angle steering vectors of window length.
    steering: Vec<Vec<Complex64>>,
}

impl BeamformEngine {
    /// Builds an engine for `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`IsarConfig::validate`]).
    pub fn new(cfg: IsarConfig) -> Self {
        cfg.validate();
        let thetas = cfg.thetas_deg();
        let steering: Vec<Vec<Complex64>> = thetas
            .iter()
            .map(|&th| cfg.steering_vector(th, cfg.window))
            .collect();
        Self {
            cfg,
            thetas,
            steering,
        }
    }

    /// The engine's configuration.
    pub fn cfg(&self) -> &IsarConfig {
        &self.cfg
    }

    /// The angle grid shared by every emitted row.
    pub fn thetas_deg(&self) -> &[f64] {
        &self.thetas
    }

    /// Beamforms one window into a `|A[θ, n]|²` row.
    ///
    /// # Panics
    /// Panics if `window.len()` differs from the configured window.
    pub fn process_window(&mut self, window: &[Complex64]) -> Vec<f64> {
        assert_eq!(window.len(), self.cfg.window, "window length mismatch");
        let _span = wivi_obs::span("beamform.window");
        self.steering
            .iter()
            .map(|s| {
                let a: Complex64 = window.iter().zip(s).map(|(h, e)| *h * e.conj()).sum();
                a.norm_sqr() / self.cfg.window as f64
            })
            .collect()
    }
}

/// Classic (Bartlett) beamforming of a nulled-channel trace: Eq. 5.1
/// evaluated over sliding windows. Returns `|A[θ, n]|²` as an
/// [`AngleSpectrogram`]. This is both §5.1's tracker and the baseline the
/// smoothed-MUSIC estimator is compared against (§5.2 footnote 6: "more
/// noise ... significant side lobes").
///
/// Offline entry point over the same [`StreamingBeamform`] stage the
/// incremental pipeline uses, so the two agree bit-for-bit.
pub fn beamform_spectrum(trace: &[Complex64], cfg: &IsarConfig) -> AngleSpectrogram {
    cfg.validate();
    assert!(
        trace.len() >= cfg.window,
        "trace shorter ({}) than the analysis window ({})",
        trace.len(),
        cfg.window
    );
    let mut stage = StreamingBeamform::new(*cfg);
    stage.push(trace);
    stage.finish()
}

/// Synthesizes the ideal nulled channel of a point target closing range at
/// `radial_speed` m/s from initial round-trip-phase distance `range0_m` —
/// useful for tests, calibration and the ablation benches.
pub fn synthetic_target_trace(
    cfg: &IsarConfig,
    n: usize,
    amplitude: f64,
    range0_m: f64,
    radial_speed: f64,
) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = i as f64 * cfg.sample_period_s;
            let d = range0_m - radial_speed * t;
            Complex64::from_polar(amplitude, -2.0 * std::f64::consts::TAU * d / cfg.wavelength)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_spacing_accounts_for_round_trip() {
        let cfg = IsarConfig::wivi_default();
        assert!((cfg.element_spacing() - 2.0 * 1.0 * 0.0032).abs() < 1e-12);
    }

    #[test]
    fn angle_grid_spans_plus_minus_90() {
        let cfg = IsarConfig::wivi_default();
        let th = cfg.thetas_deg();
        assert_eq!(th.len(), 181);
        assert_eq!(th[0], -90.0);
        assert_eq!(*th.last().unwrap(), 90.0);
        assert_eq!(th[90], 0.0);
    }

    #[test]
    fn steering_vector_is_unit_modulus() {
        let cfg = IsarConfig::wivi_default();
        for v in cfg.steering_vector(37.0, 50) {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_trace_peaks_at_zero_angle() {
        let cfg = IsarConfig::fast_test();
        let trace = vec![Complex64::new(1.0, 0.5); 200];
        let spec = beamform_spectrum(&trace, &cfg);
        for t in 0..spec.n_times() {
            let peak = spec.dominant_angle(t, 0.0).unwrap();
            assert!(peak.abs() < 4.0, "DC peaked at {peak}°");
        }
    }

    #[test]
    fn approaching_target_yields_positive_angle() {
        let cfg = IsarConfig::fast_test();
        // Closing at 0.5 m/s with assumed v = 1 m/s ⇒ sinθ = 0.5 ⇒ 30°.
        let trace = synthetic_target_trace(&cfg, 200, 1.0, 4.0, 0.5);
        let spec = beamform_spectrum(&trace, &cfg);
        let th = spec.dominant_angle(0, 0.0).unwrap();
        assert!((th - 30.0).abs() <= 6.0, "peak at {th}° (expected ≈ 30°)");
    }

    #[test]
    fn receding_target_yields_negative_angle() {
        let cfg = IsarConfig::fast_test();
        let trace = synthetic_target_trace(&cfg, 200, 1.0, 4.0, -0.5);
        let spec = beamform_spectrum(&trace, &cfg);
        let th = spec.dominant_angle(0, 0.0).unwrap();
        assert!((th + 30.0).abs() <= 6.0, "peak at {th}° (expected ≈ −30°)");
    }

    #[test]
    fn full_speed_target_lands_at_90_degrees() {
        let cfg = IsarConfig::fast_test();
        let trace = synthetic_target_trace(&cfg, 200, 1.0, 4.0, 1.0);
        let spec = beamform_spectrum(&trace, &cfg);
        let th = spec.dominant_angle(0, 0.0).unwrap();
        assert!(th > 75.0, "peak at {th}° (expected ≈ +90°)");
    }

    #[test]
    fn speed_error_scales_but_does_not_flip_angle() {
        // §5.1: "errors in the value of v translate to an under/over
        // estimation of the direction ... but do not prevent tracking
        // whether the human is moving closer or away".
        let mut cfg = IsarConfig::fast_test();
        cfg.assumed_speed = 1.3; // subject actually moves 0.5 m/s
        let trace = synthetic_target_trace(&cfg, 200, 1.0, 4.0, 0.5);
        let spec = beamform_spectrum(&trace, &cfg);
        let th = spec.dominant_angle(0, 0.0).unwrap();
        assert!(th > 5.0, "sign flipped: {th}°");
        assert!((th - 30.0).abs() > 3.0, "angle should be biased, got {th}°");
    }

    #[test]
    fn resolution_improves_with_aperture() {
        // §1.2: a narrow beam needs ≈ 4λ of target motion. Compare the
        // −3 dB beamwidth of a short and a long window.
        let beamwidth = |window: usize| {
            let cfg = IsarConfig {
                window,
                hop: window,
                ..IsarConfig::fast_test()
            };
            let trace = synthetic_target_trace(&cfg, window + 1, 1.0, 4.0, 0.5);
            let spec = beamform_spectrum(&trace, &cfg);
            let row = &spec.power[0];
            let peak = row.iter().copied().fold(0.0f64, f64::max);
            row.iter().filter(|&&p| p > peak / 2.0).count()
        };
        let wide = beamwidth(16); //  16·Δ ≈ 0.10 m ≈ 0.8λ aperture
        let narrow = beamwidth(128); // 128·Δ ≈ 0.82 m ≈ 6.7λ aperture
        assert!(
            narrow * 2 < wide,
            "beamwidth did not shrink: {wide} bins → {narrow} bins"
        );
    }

    #[test]
    fn window_times_are_centered_and_hop_spaced() {
        let cfg = IsarConfig::fast_test();
        let times = cfg.window_times(100);
        assert!(!times.is_empty());
        let dt = times[1] - times[0];
        assert!((dt - cfg.hop as f64 * cfg.sample_period_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn rejects_short_traces() {
        let cfg = IsarConfig::wivi_default();
        let _ = beamform_spectrum(&[Complex64::ONE; 10], &cfg);
    }
}
