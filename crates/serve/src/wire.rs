//! The serving wire protocol: length-prefixed binary frames over TCP.
//!
//! This is the boundary the ROADMAP's "service for millions of users"
//! item asks for: a remote client opens sensing sessions against a
//! [`ServeEngine`](crate::ServeEngine) and receives outputs and the
//! merged event stream back — with **bitwise** fidelity to the
//! in-process path. No external deps: the codec is hand-rolled
//! little-endian, like every other serialization in this workspace.
//!
//! # Framing
//!
//! A connection opens with the 4-byte magic `b"WIVI"` (which is also
//! how the listener tells protocol traffic from an HTTP `/metrics`
//! scrape — see [`crate::net`]). After the magic, the stream is a
//! sequence of frames:
//!
//! ```text
//! ┌────────────┬─────────┬──────────┬──────────────┐
//! │ len: u32 LE│ ver: u8 │ type: u8 │ payload ...  │
//! └────────────┴─────────┴──────────┴──────────────┘
//!               └──────────── len bytes ───────────┘
//! ```
//!
//! `len` counts everything after the length field (version + type +
//! payload) and is bounded by [`MAX_FRAME_LEN`]; a receiver accepts
//! any version in `[MIN_WIRE_VERSION, WIRE_VERSION]` — v2 added the
//! optional trace field to OPEN and changed nothing else. Anything
//! outside the range is a hard error. A client sends at
//! [`WIRE_VERSION`]; the server answers at the version the peer's
//! HELLO carried (capped at its own), so a v1 client — whose decoder
//! hard-errors on `ver != 1` — sees only v1 frames back and keeps
//! working ([`Frame::encode_into_versioned`]).
//!
//! # Frame types and the session conversation
//!
//! ```text
//! client                                 server
//!   ── magic "WIVI" ──────────────────────▶
//!   ── HELLO(token) ──────────────────────▶   auth
//!   ◀───────────────────────── HELLO_OK ──
//!   ── OPEN(id, scene, config, mode, …) ──▶   admission → shard queue
//!   ◀───────────────── OPEN_OK(id, shard)──       (or ERROR(code, id))
//!   ── CLOSE(id) ─────────────────────────▶   early close (optional)
//!   ── FINISH ────────────────────────────▶   no more commands
//!   ◀──────────────── EVENT × n (merged) ──   when all sessions drain:
//!   ◀──────────────── OUTPUT × m (id order)
//!   ◀───────────────────────────── BYE ────   then the server closes
//! ```
//!
//! All integers are little-endian; floats travel as `f64::to_bits` so
//! the wire is exact to the last ulp. Strings are `u32` length +
//! UTF-8. `Option<T>` is a `u8` flag then `T`.
//!
//! # Canonical output encoding
//!
//! [`encode_session_output`] defines *the* canonical byte encoding of a
//! [`SessionOutput`]: identity and lifecycle fields, the session's full
//! event list, and the mode payload encoded field-for-field (every
//! `f64` by bit pattern) for the five built-in modes. Wall-clock
//! telemetry (`calibrate_s`, `stream_s`) is deliberately excluded —
//! the wire carries observations, not scheduling accidents — as is the
//! tracker's `cfg` (a pure function of the session's effective config,
//! not an observation). The loopback acceptance test pins that a
//! net-served session's OUTPUT/EVENT frames are byte-identical to this
//! encoding of the in-process [`ServeReport`](crate::ServeReport).
//! Downstream-defined modes (unknown payload types) encode with a
//! `0` presence flag: framing stays valid, the payload is opaque.

use wivi_core::gesture::GestureDecode;
use wivi_core::AngleSpectrogram;
use wivi_image::{ImageFix, ImagingReport, PositionTrack, PositionTrackStatus};
use wivi_num::Kalman2;
use wivi_track::{EventKind, TrackEvent, TrackStatus, TrackingReport};

use crate::engine::ServeEvent;
use crate::session::{SessionId, SessionOutput};

/// Connection preamble: lets the listener tell protocol traffic from an
/// HTTP metrics scrape on the same port.
pub const MAGIC: [u8; 4] = *b"WIVI";

/// Wire format version carried in every frame header. Version 2 added
/// the optional trace-context field to OPEN; every other frame body is
/// byte-identical across versions 1 and 2.
pub const WIRE_VERSION: u8 = 2;

/// Oldest version this side still decodes. A v1 peer (no trace field
/// in OPEN) interoperates: its OPENs decode with `trace: None`, and
/// every frame we send back uses payload layouts v1 already knew.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Upper bound on `len` (bytes after the length field): a corrupt or
/// hostile length cannot make the reader allocate unboundedly.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// Frame type tags (the `type` byte). Crate-visible: the reactor
/// writes OUTPUT/EVENT frames by framing the canonical payload bytes
/// directly, so what goes on the wire IS [`encode_session_output`] /
/// [`encode_serve_event`] by construction, not by round-trip.
pub(crate) mod tag {
    pub const HELLO: u8 = 1;
    pub const HELLO_OK: u8 = 2;
    pub const OPEN: u8 = 3;
    pub const OPEN_OK: u8 = 4;
    pub const CLOSE: u8 = 5;
    pub const FINISH: u8 = 6;
    pub const EVENT: u8 = 7;
    pub const OUTPUT: u8 = 8;
    pub const ERROR: u8 = 9;
    pub const BYE: u8 = 10;
}

/// What a wire `OPEN` asks for. Scenes and configs are referenced by
/// the names the server registered them under
/// ([`WireServerConfig`](crate::net::WireServerConfig)) — a remote
/// radio streams *into* a scene catalog, it does not upload geometry —
/// and the mode by its [`ModeRegistry`](crate::ModeRegistry) tag, which
/// is the wire-to-mode resolution point: every registered mode is
/// remotely reachable with no per-mode wire code.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenRequest {
    pub id: SessionId,
    /// Deterministic seed for the session's radio noise/trajectories.
    pub seed: u64,
    /// Recording duration, simulated seconds.
    pub duration_s: f64,
    /// Serving-clock offset of the session start.
    pub start_s: f64,
    /// Tag of the sensing mode to run.
    pub mode: String,
    /// Name of a server-registered scene.
    pub scene: String,
    /// Name of a server-registered device configuration.
    pub config: String,
    /// Request trace id (wire v2+): links the client-side open span to
    /// the server-side session spans under one 64-bit id. `None` from
    /// v1 clients or untraced opens.
    pub trace: Option<u64>,
}

/// One decoded frame. `Output` carries the decoded common surface plus
/// the raw canonical payload bytes (client side cannot reconstruct a
/// type-erased `ModeOutput`; byte-level comparison is the contract).
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client hello: auth token.
    Hello { token: String },
    /// Server accepts the hello.
    HelloOk,
    /// Open a session.
    Open(OpenRequest),
    /// The session was admitted and queued on `shard`.
    OpenOk { id: SessionId, shard: u32 },
    /// Close a session early.
    Close { id: SessionId },
    /// No more commands on this connection; drain and report.
    Finish,
    /// One event of the connection's merged stream.
    Event(ServeEvent),
    /// One finished session.
    Output(WireOutput),
    /// A refused operation. `code` is a stable machine tag (e.g.
    /// `auth`, `quota`, `overloaded`, `duplicate_id`, `unknown_mode`,
    /// `unknown_scene`, `unknown_config`, `shutting_down`); `id` is the
    /// session it concerns (0 for connection-level errors).
    Error {
        code: String,
        id: SessionId,
        message: String,
    },
    /// The server is done with this connection.
    Bye,
}

/// The decoded common surface of an OUTPUT frame. `payload` holds the
/// canonical mode-payload bytes exactly as encoded by
/// [`encode_mode_payload`] server-side.
#[derive(Clone, Debug, PartialEq)]
pub struct WireOutput {
    pub id: SessionId,
    pub shard: u64,
    pub mode: String,
    pub start_s: f64,
    pub n_requested: u64,
    pub n_samples: u64,
    pub n_columns: u64,
    pub closed_early: bool,
    pub nulling_db: f64,
    pub events: Vec<TrackEvent>,
    pub payload: Vec<u8>,
}

/// Decode failures. The reactor answers these with an `ERROR` frame
/// and closes the connection — a malformed client cannot wedge or
/// crash the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WireError {
    /// The buffer ended inside a field.
    Truncated,
    /// Frame header carried an unsupported version.
    BadVersion(u8),
    /// Unknown frame type byte.
    BadFrameType(u8),
    /// A length field exceeded [`MAX_FRAME_LEN`].
    Oversized(u64),
    /// A string field was not UTF-8.
    BadUtf8,
    /// An enum tag or flag byte was out of range.
    BadValue(&'static str),
    /// A frame body had bytes left after its last field.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversized(n) => write!(f, "length {n} exceeds frame bound"),
            WireError::BadUtf8 => write!(f, "string field not UTF-8"),
            WireError::BadValue(what) => write!(f, "bad value in field '{what}'"),
            WireError::TrailingBytes => write!(f, "trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- put

#[inline]
fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Writes a collection/string length as `u32`. Every length this codec
/// emits is bounded by [`MAX_FRAME_LEN`] (1 << 28, far below
/// `u32::MAX`) because the whole frame must fit under it; the assert
/// keeps the cast honest if that bound ever moves.
#[inline]
fn put_len(buf: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= MAX_FRAME_LEN, "length {n} exceeds MAX_FRAME_LEN");
    put_u32(buf, n as u32); // bounds: asserted ≤ MAX_FRAME_LEN above
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

#[inline]
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_len(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

#[inline]
fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            put_u8(buf, 1);
            put_f64(buf, x);
        }
        None => put_u8(buf, 0),
    }
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(buf, 1);
            put_u64(buf, x);
        }
        None => put_u8(buf, 0),
    }
}

fn put_f64s(buf: &mut Vec<u8>, xs: &[f64]) {
    put_len(buf, xs.len());
    for &x in xs {
        put_f64(buf, x);
    }
}

fn put_usizes(buf: &mut Vec<u8>, xs: &[usize]) {
    put_len(buf, xs.len());
    for &x in xs {
        put_usize(buf, x);
    }
}

// --------------------------------------------------------------- take

/// A bounds-checked reader over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// The next `N` bytes as a fixed array — the panic-free spelling of
    /// `bytes(N)?.try_into().unwrap()` for the integer readers below.
    fn arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.bytes(N)?
            .first_chunk::<N>()
            .copied()
            .ok_or(WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.arr::<1>()?;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue("bool")),
        }
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_LEN {
            return Err(WireError::Oversized(n as u64));
        }
        std::str::from_utf8(self.bytes(n)?)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ------------------------------------------------------ event codecs

fn put_track_event(buf: &mut Vec<u8>, e: &TrackEvent) {
    put_usize(buf, e.window);
    put_f64(buf, e.time_s);
    match e.track_id {
        Some(t) => {
            put_u8(buf, 1);
            put_u32(buf, t);
        }
        None => put_u8(buf, 0),
    }
    match e.kind {
        EventKind::Entry { theta_deg } => {
            put_u8(buf, 0);
            put_f64(buf, theta_deg);
        }
        EventKind::Exit { theta_deg } => {
            put_u8(buf, 1);
            put_f64(buf, theta_deg);
        }
        EventKind::Crossing { direction } => {
            put_u8(buf, 2);
            // bounds: i8 → u8 is a bit-for-bit reinterpretation (the
            // decoder casts back), not a length truncation.
            put_u8(buf, direction as u8);
        }
        EventKind::CountChange { count } => {
            put_u8(buf, 3);
            put_usize(buf, count);
        }
    }
}

fn take_track_event(c: &mut Cursor) -> Result<TrackEvent, WireError> {
    let window = c.u64()? as usize;
    let time_s = c.f64()?;
    let track_id = match c.u8()? {
        0 => None,
        1 => Some(c.u32()?),
        _ => Err(WireError::BadValue("track_id flag"))?,
    };
    let kind = match c.u8()? {
        0 => EventKind::Entry {
            theta_deg: c.f64()?,
        },
        1 => EventKind::Exit {
            theta_deg: c.f64()?,
        },
        2 => EventKind::Crossing {
            direction: c.u8()? as i8,
        },
        3 => EventKind::CountChange {
            count: c.u64()? as usize,
        },
        _ => Err(WireError::BadValue("event kind"))?,
    };
    Ok(TrackEvent {
        window,
        time_s,
        track_id,
        kind,
    })
}

/// Canonical encoding of one merged-stream event — the EVENT frame
/// payload.
pub fn encode_serve_event(e: &ServeEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_f64(&mut buf, e.time_s);
    put_u64(&mut buf, e.session);
    put_usize(&mut buf, e.seq);
    put_track_event(&mut buf, &e.event);
    buf
}

fn take_serve_event(c: &mut Cursor) -> Result<ServeEvent, WireError> {
    Ok(ServeEvent {
        time_s: c.f64()?,
        session: c.u64()?,
        seq: c.u64()? as usize,
        event: take_track_event(c)?,
    })
}

// ----------------------------------------------------- mode payloads

fn put_kalman2(buf: &mut Vec<u8>, k: &Kalman2) {
    put_f64(buf, k.x[0]);
    put_f64(buf, k.x[1]);
    for row in &k.p {
        for &v in row {
            put_f64(buf, v);
        }
    }
}

fn track_status_tag(s: TrackStatus) -> u8 {
    match s {
        TrackStatus::Tentative => 0,
        TrackStatus::Confirmed => 1,
        TrackStatus::Coasting => 2,
        TrackStatus::Dead => 3,
    }
}

fn position_status_tag(s: PositionTrackStatus) -> u8 {
    match s {
        PositionTrackStatus::Tentative => 0,
        PositionTrackStatus::Confirmed => 1,
        PositionTrackStatus::Coasting => 2,
        PositionTrackStatus::Dead => 3,
    }
}

fn put_spectrogram(buf: &mut Vec<u8>, s: &AngleSpectrogram) {
    put_f64s(buf, &s.thetas_deg);
    put_f64s(buf, &s.times_s);
    put_len(buf, s.power.len());
    for row in &s.power {
        put_f64s(buf, row);
    }
}

fn put_tracking_report(buf: &mut Vec<u8>, r: &TrackingReport) {
    put_len(buf, r.tracks.len());
    for t in &r.tracks {
        put_u32(buf, t.id);
        put_usize(buf, t.born_window);
        put_opt_u64(buf, t.confirmed_window.map(|w| w as u64));
        put_usize(buf, t.last_observed_window);
        put_u8(buf, track_status_tag(t.status));
        put_kalman2(buf, &t.kf);
        put_usize(buf, t.hits);
        put_usize(buf, t.misses);
        put_usize(buf, t.observed_windows);
        put_usize(buf, t.led_windows);
        put_f64s(buf, &t.recent_gaps_db);
        put_bool(buf, t.announced);
        put_len(buf, t.history.len());
        for p in &t.history {
            put_usize(buf, p.window);
            put_f64(buf, p.time_s);
            put_f64(buf, p.theta_deg);
            put_f64(buf, p.theta_vel);
            put_opt_f64(buf, p.observed);
        }
    }
    put_len(buf, r.events.len());
    for e in &r.events {
        put_track_event(buf, e);
    }
    put_usizes(buf, &r.confirmed_counts);
    put_f64s(buf, &r.times_s);
    // `r.cfg` is deliberately not encoded: it is a pure function of the
    // session's effective configuration, not an observation.
}

fn put_gesture_decode(buf: &mut Vec<u8>, d: &GestureDecode) {
    put_f64s(buf, &d.track);
    put_f64s(buf, &d.matched);
    put_f64s(buf, &d.times_s);
    put_len(buf, d.gestures.len());
    for g in &d.gestures {
        put_f64(buf, g.time_s);
        // bounds: polarity is ±1; i8 → u8 is a bit-for-bit
        // reinterpretation, not a length truncation.
        put_u8(buf, g.polarity as u8);
        put_f64(buf, g.snr_db);
    }
    put_len(buf, d.bits.len());
    for b in &d.bits {
        match b {
            None => put_u8(buf, 0),
            Some(false) => put_u8(buf, 1),
            Some(true) => put_u8(buf, 2),
        }
    }
}

fn put_image_fix(buf: &mut Vec<u8>, f: &ImageFix) {
    put_f64(buf, f.x_m);
    put_f64(buf, f.y_m);
    put_f64(buf, f.power_db);
    put_f64(buf, f.snr_db);
    put_usize(buf, f.ix);
    put_usize(buf, f.iy);
}

fn put_position_track(buf: &mut Vec<u8>, t: &PositionTrack) {
    put_u32(buf, t.id);
    put_usize(buf, t.born_window);
    put_opt_u64(buf, t.confirmed_window.map(|w| w as u64));
    put_usize(buf, t.last_observed_window);
    put_u8(buf, position_status_tag(t.status));
    put_kalman2(buf, &t.kx);
    put_kalman2(buf, &t.ky);
    put_usize(buf, t.misses);
    put_usize(buf, t.observed_windows);
    match t.mirror_of {
        Some(m) => {
            put_u8(buf, 1);
            put_u32(buf, m);
        }
        None => put_u8(buf, 0),
    }
    put_len(buf, t.history.len());
    for p in &t.history {
        put_usize(buf, p.window);
        put_f64(buf, p.time_s);
        put_f64(buf, p.x_m);
        put_f64(buf, p.y_m);
        put_f64(buf, p.vx);
        put_f64(buf, p.vy);
        match &p.observed {
            Some(f) => {
                put_u8(buf, 1);
                put_image_fix(buf, f);
            }
            None => put_u8(buf, 0),
        }
    }
}

fn put_imaging_report(buf: &mut Vec<u8>, r: &ImagingReport) {
    put_f64(buf, r.grid.x0);
    put_f64(buf, r.grid.y0);
    put_f64(buf, r.grid.cell_x_m);
    put_f64(buf, r.grid.cell_y_m);
    put_usize(buf, r.grid.nx);
    put_usize(buf, r.grid.ny);
    put_f64s(buf, &r.times_s);
    put_len(buf, r.fixes.len());
    for frame in &r.fixes {
        put_len(buf, frame.len());
        for f in frame {
            put_image_fix(buf, f);
        }
    }
    put_len(buf, r.tracks.len());
    for t in &r.tracks {
        put_position_track(buf, t);
    }
    put_usizes(buf, &r.confirmed_counts);
}

/// Encodes a mode payload canonically: a presence flag, then — for the
/// five built-in payload types — every field, floats by bit pattern.
/// Unknown (downstream) payload types encode flag `0`: the frame stays
/// well-formed and the common surface still travels.
pub fn encode_mode_payload(out: &crate::ModeOutput, buf: &mut Vec<u8>) {
    fn put_opt<T>(buf: &mut Vec<u8>, v: &Option<T>, put: impl Fn(&mut Vec<u8>, &T)) {
        match v {
            Some(x) => {
                put_u8(buf, 2);
                put(buf, x);
            }
            None => put_u8(buf, 1),
        }
    }
    if let Some(spec) = out.get::<Option<AngleSpectrogram>>() {
        put_opt(buf, spec, put_spectrogram);
    } else if let Some(report) = out.get::<TrackingReport>() {
        put_u8(buf, 2);
        put_tracking_report(buf, report);
    } else if let Some(mean) = out.get::<Option<f64>>() {
        put_opt(buf, mean, |b, &m| put_f64(b, m));
    } else if let Some(decode) = out.get::<Option<GestureDecode>>() {
        put_opt(buf, decode, put_gesture_decode);
    } else if let Some(report) = out.get::<ImagingReport>() {
        put_u8(buf, 2);
        put_imaging_report(buf, report);
    } else {
        put_u8(buf, 0);
    }
}

/// Canonical encoding of one finished session — the OUTPUT frame
/// payload, and the byte string the loopback acceptance test compares
/// against the in-process report. Wall-clock telemetry is excluded by
/// design (see the module docs).
pub fn encode_session_output(out: &SessionOutput) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    put_u64(&mut buf, out.id);
    put_usize(&mut buf, out.shard);
    put_str(&mut buf, out.mode);
    put_f64(&mut buf, out.start_s);
    put_usize(&mut buf, out.n_requested);
    put_usize(&mut buf, out.n_samples);
    put_usize(&mut buf, out.n_columns);
    put_bool(&mut buf, out.closed_early);
    put_f64(&mut buf, out.nulling_db);
    put_len(&mut buf, out.events.len());
    for e in &out.events {
        put_track_event(&mut buf, e);
    }
    encode_mode_payload(&out.result, &mut buf);
    buf
}

fn take_wire_output(c: &mut Cursor) -> Result<WireOutput, WireError> {
    let id = c.u64()?;
    let shard = c.u64()?;
    let mode = c.str()?;
    let start_s = c.f64()?;
    let n_requested = c.u64()?;
    let n_samples = c.u64()?;
    let n_columns = c.u64()?;
    let closed_early = c.bool()?;
    let nulling_db = c.f64()?;
    let n_events = c.u32()? as usize;
    let mut events = Vec::with_capacity(n_events.min(4096));
    for _ in 0..n_events {
        events.push(take_track_event(c)?);
    }
    // Everything after the common surface is the canonical payload
    // block, kept as raw bytes (type-erased payloads cannot be
    // reconstructed client-side; bytes are the contract).
    let payload = c.buf.get(c.pos..).unwrap_or(&[]).to_vec();
    c.pos = c.buf.len();
    Ok(WireOutput {
        id,
        shard,
        mode,
        start_s,
        n_requested,
        n_samples,
        n_columns,
        closed_early,
        nulling_db,
        events,
        payload,
    })
}

// -------------------------------------------------------- frame codec

impl Frame {
    fn type_tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => tag::HELLO,
            Frame::HelloOk => tag::HELLO_OK,
            Frame::Open(_) => tag::OPEN,
            Frame::OpenOk { .. } => tag::OPEN_OK,
            Frame::Close { .. } => tag::CLOSE,
            Frame::Finish => tag::FINISH,
            Frame::Event(_) => tag::EVENT,
            Frame::Output(_) => tag::OUTPUT,
            Frame::Error { .. } => tag::ERROR,
            Frame::Bye => tag::BYE,
        }
    }

    /// Appends the frame's full on-wire bytes (length, versioned
    /// header, payload) at [`WIRE_VERSION`] — what a client sends.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        self.encode_into_versioned(buf, WIRE_VERSION);
    }

    /// [`encode_into`](Self::encode_into) at an explicit wire version
    /// (clamped to the supported range): the server encodes each
    /// response at the version the peer's HELLO carried, so a strict
    /// v1 decoder never sees a v2 header. Encoding an OPEN at v1 drops
    /// the trace field — a v1 body ends at the config name.
    pub fn encode_into_versioned(&self, buf: &mut Vec<u8>, ver: u8) {
        let ver = ver.clamp(MIN_WIRE_VERSION, WIRE_VERSION);
        let start = buf.len();
        put_u32(buf, 0); // length back-patched below
        put_u8(buf, ver);
        put_u8(buf, self.type_tag());
        match self {
            Frame::Hello { token } => put_str(buf, token),
            Frame::HelloOk | Frame::Finish | Frame::Bye => {}
            Frame::Open(req) => {
                put_u64(buf, req.id);
                put_u64(buf, req.seed);
                put_f64(buf, req.duration_s);
                put_f64(buf, req.start_s);
                put_str(buf, &req.mode);
                put_str(buf, &req.scene);
                put_str(buf, &req.config);
                // v2 extension; a v1 body ends before it.
                if ver >= 2 {
                    put_opt_u64(buf, req.trace);
                }
            }
            Frame::OpenOk { id, shard } => {
                put_u64(buf, *id);
                put_u32(buf, *shard);
            }
            Frame::Close { id } => put_u64(buf, *id),
            Frame::Event(e) => buf.extend_from_slice(&encode_serve_event(e)),
            Frame::Output(o) => {
                // Re-encoding a decoded output reproduces the original
                // bytes: the common surface re-encodes field-for-field
                // and the payload block is carried verbatim.
                put_u64(buf, o.id);
                put_u64(buf, o.shard);
                put_str(buf, &o.mode);
                put_f64(buf, o.start_s);
                put_u64(buf, o.n_requested);
                put_u64(buf, o.n_samples);
                put_u64(buf, o.n_columns);
                put_bool(buf, o.closed_early);
                put_f64(buf, o.nulling_db);
                put_len(buf, o.events.len());
                for e in &o.events {
                    put_track_event(buf, e);
                }
                buf.extend_from_slice(&o.payload);
            }
            Frame::Error { code, id, message } => {
                put_str(buf, code);
                put_u64(buf, *id);
                put_str(buf, message);
            }
        }
        let len = buf.len() - start - 4;
        debug_assert!(len <= MAX_FRAME_LEN, "encoded frame exceeds MAX_FRAME_LEN");
        // bounds: asserted ≤ MAX_FRAME_LEN (≪ u32::MAX) just above.
        buf[start..start + 4].copy_from_slice(&(len as u32).to_le_bytes());
    }

    /// The frame as one owned byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Builds the OUTPUT frame for a finished session, server-side.
    pub fn output_of(out: &SessionOutput) -> Frame {
        // Round-trip through the canonical encoding so the frame the
        // server sends IS encode_session_output(out), bit for bit.
        let body = encode_session_output(out);
        let mut c = Cursor::new(&body);
        let decoded = take_wire_output(&mut c).expect("canonical encoding must decode");
        Frame::Output(decoded)
    }

    /// Decodes one frame *body* (the `len` bytes after the length
    /// field: version, type, payload).
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor::new(body);
        let ver = c.u8()?;
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&ver) {
            return Err(WireError::BadVersion(ver));
        }
        let t = c.u8()?;
        let frame = match t {
            tag::HELLO => Frame::Hello { token: c.str()? },
            tag::HELLO_OK => Frame::HelloOk,
            tag::OPEN => Frame::Open(OpenRequest {
                id: c.u64()?,
                seed: c.u64()?,
                duration_s: c.f64()?,
                start_s: c.f64()?,
                mode: c.str()?,
                scene: c.str()?,
                config: c.str()?,
                // The v1 body ends here; a v2 body carries the
                // optional trace id after it.
                trace: if ver >= 2 {
                    match c.u8()? {
                        0 => None,
                        1 => Some(c.u64()?),
                        _ => return Err(WireError::BadValue("trace flag")),
                    }
                } else {
                    None
                },
            }),
            tag::OPEN_OK => Frame::OpenOk {
                id: c.u64()?,
                shard: c.u32()?,
            },
            tag::CLOSE => Frame::Close { id: c.u64()? },
            tag::FINISH => Frame::Finish,
            tag::EVENT => Frame::Event(take_serve_event(&mut c)?),
            tag::OUTPUT => Frame::Output(take_wire_output(&mut c)?),
            tag::ERROR => Frame::Error {
                code: c.str()?,
                id: c.u64()?,
                message: c.str()?,
            },
            tag::BYE => Frame::Bye,
            other => return Err(WireError::BadFrameType(other)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Tries to split one complete frame off the front of `buf`. Returns
/// `Ok(None)` if more bytes are needed, `Ok(Some((frame, consumed)))`
/// on success.
pub fn split_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    Ok(split_frame_versioned(buf)?.map(|(frame, _ver, used)| (frame, used)))
}

/// [`split_frame`] that also reports the version byte the frame's
/// header carried — how the server learns what version a peer speaks,
/// so it can answer in kind.
pub fn split_frame_versioned(buf: &[u8]) -> Result<Option<(Frame, u8, usize)>, WireError> {
    let Some(len_bytes) = buf.first_chunk::<4>() else {
        return Ok(None);
    };
    let len = u32::from_le_bytes(*len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len as u64));
    }
    if len < 2 {
        return Err(WireError::Truncated);
    }
    let Some(body) = buf.get(4..4 + len) else {
        return Ok(None);
    };
    let frame = Frame::decode_body(body)?;
    let (&ver, _) = body.split_first().ok_or(WireError::Truncated)?;
    Ok(Some((frame, ver, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let bytes = f.encode();
        let (back, used) = split_frame(&bytes).unwrap().expect("complete");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
        // Byte-stability: re-encoding the decoded frame reproduces the
        // original wire bytes exactly.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn all_frame_types_round_trip_byte_stable() {
        round_trip(Frame::Hello {
            token: "secret-token".into(),
        });
        round_trip(Frame::HelloOk);
        round_trip(Frame::Open(OpenRequest {
            id: 42,
            seed: 7,
            duration_s: 2.5,
            start_s: 0.75,
            mode: "track_targets".into(),
            scene: "conference-small".into(),
            config: "fast_test".into(),
            trace: Some(0xdead_beef_cafe_f00d),
        }));
        round_trip(Frame::Open(OpenRequest {
            id: 43,
            seed: 8,
            duration_s: 1.0,
            start_s: 0.0,
            mode: "count".into(),
            scene: "room".into(),
            config: "fast".into(),
            trace: None,
        }));
        round_trip(Frame::OpenOk { id: 42, shard: 3 });
        round_trip(Frame::Close { id: 42 });
        round_trip(Frame::Finish);
        round_trip(Frame::Event(ServeEvent {
            time_s: 1.25,
            session: 42,
            seq: 9,
            event: TrackEvent {
                window: 17,
                time_s: 1.25,
                track_id: Some(2),
                kind: EventKind::Entry { theta_deg: -12.5 },
            },
        }));
        round_trip(Frame::Error {
            code: "overloaded".into(),
            id: 42,
            message: "shard queue full".into(),
        });
        round_trip(Frame::Bye);
    }

    #[test]
    fn every_event_kind_round_trips() {
        for kind in [
            EventKind::Entry { theta_deg: 3.5 },
            EventKind::Exit { theta_deg: -7.25 },
            EventKind::Crossing { direction: -1 },
            EventKind::CountChange { count: 3 },
        ] {
            round_trip(Frame::Event(ServeEvent {
                time_s: 0.5,
                session: 1,
                seq: 0,
                event: TrackEvent {
                    window: 4,
                    time_s: 0.5,
                    track_id: None,
                    kind,
                },
            }));
        }
    }

    #[test]
    fn partial_buffers_ask_for_more_bytes() {
        let bytes = Frame::Close { id: 9 }.encode();
        for cut in 0..bytes.len() {
            assert_eq!(split_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
        // Two frames back to back: the first splits off cleanly.
        let mut two = bytes.clone();
        two.extend_from_slice(&Frame::Finish.encode());
        let (f, used) = split_frame(&two).unwrap().unwrap();
        assert_eq!(f, Frame::Close { id: 9 });
        assert_eq!(used, bytes.len());
        let (f2, _) = split_frame(&two[used..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Finish);
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        // Bad version.
        let mut bytes = Frame::Finish.encode();
        bytes[4] = 99;
        assert_eq!(
            Frame::decode_body(&bytes[4..]),
            Err(WireError::BadVersion(99))
        );
        // Unknown type.
        let mut bytes = Frame::Finish.encode();
        bytes[5] = 200;
        assert_eq!(
            Frame::decode_body(&bytes[4..]),
            Err(WireError::BadFrameType(200))
        );
        // Hostile length field.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&[WIRE_VERSION, 6]);
        assert!(matches!(split_frame(&huge), Err(WireError::Oversized(_))));
        // Trailing garbage inside a frame body.
        let mut bytes = Frame::Finish.encode();
        bytes.extend_from_slice(&[0, 0]);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            Frame::decode_body(&bytes[4..]),
            Err(WireError::TrailingBytes)
        );
        // Truncated string.
        let mut hello = Frame::Hello {
            token: "tok".into(),
        }
        .encode();
        hello.truncate(hello.len() - 1);
        let len = (hello.len() - 4) as u32;
        hello[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(Frame::decode_body(&hello[4..]), Err(WireError::Truncated));
    }

    /// Hand-builds the v1 body of a frame: same payload layout, but a
    /// v1 header and — for OPEN — no trace field.
    fn v1_body(payload: &[u8], type_tag: u8) -> Vec<u8> {
        let mut body = vec![1u8, type_tag];
        body.extend_from_slice(payload);
        body
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v1 OPEN (no trace field) from an old client.
        let mut payload = Vec::new();
        put_u64(&mut payload, 5);
        put_u64(&mut payload, 99);
        put_f64(&mut payload, 1.5);
        put_f64(&mut payload, 0.25);
        put_str(&mut payload, "count");
        put_str(&mut payload, "room");
        put_str(&mut payload, "fast");
        let open = Frame::decode_body(&v1_body(&payload, tag::OPEN)).expect("v1 OPEN decodes");
        match open {
            Frame::Open(req) => {
                assert_eq!((req.id, req.seed), (5, 99));
                assert_eq!(req.mode, "count");
                assert_eq!(req.trace, None, "v1 carries no trace");
            }
            other => panic!("expected Open, got {other:?}"),
        }
        // Version-invariant frames decode from a v1 header too.
        assert_eq!(
            Frame::decode_body(&v1_body(&[], tag::FINISH)).unwrap(),
            Frame::Finish
        );
        let mut hello = Vec::new();
        put_str(&mut hello, "tok");
        assert_eq!(
            Frame::decode_body(&v1_body(&hello, tag::HELLO)).unwrap(),
            Frame::Hello {
                token: "tok".into()
            }
        );
        // Versions outside [MIN, CURRENT] stay hard errors.
        assert_eq!(
            Frame::decode_body(&[0, tag::FINISH]),
            Err(WireError::BadVersion(0))
        );
        assert_eq!(
            Frame::decode_body(&[WIRE_VERSION + 1, tag::FINISH]),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );
        // A v2 OPEN with a mangled trace flag is rejected.
        let mut bad = vec![2u8, tag::OPEN];
        bad.extend_from_slice(&payload);
        bad.push(7);
        assert_eq!(
            Frame::decode_body(&bad),
            Err(WireError::BadValue("trace flag"))
        );
    }

    #[test]
    fn versioned_encoding_speaks_the_peers_version() {
        // Server responses encoded at v1 carry a v1 header a strict
        // v1 decoder accepts.
        for f in [
            Frame::HelloOk,
            Frame::OpenOk { id: 7, shard: 1 },
            Frame::Error {
                code: "quota".into(),
                id: 7,
                message: "over".into(),
            },
            Frame::Bye,
        ] {
            let mut v1 = Vec::new();
            f.encode_into_versioned(&mut v1, 1);
            assert_eq!(v1[4], 1, "header must carry the peer's version");
            let (back, used) = split_frame(&v1).unwrap().expect("complete");
            assert_eq!(used, v1.len());
            assert_eq!(back, f);
        }
        // An OPEN at v1 drops the trace field: the body ends at the
        // config name, exactly what a v1 reader expects.
        let open = Frame::Open(OpenRequest {
            id: 5,
            seed: 9,
            duration_s: 1.0,
            start_s: 0.0,
            mode: "count".into(),
            scene: "room".into(),
            config: "fast".into(),
            trace: Some(0xabcd),
        });
        let mut v1 = Vec::new();
        open.encode_into_versioned(&mut v1, 1);
        match Frame::decode_body(&v1[4..]).expect("v1 OPEN decodes") {
            Frame::Open(req) => assert_eq!(req.trace, None, "v1 body carries no trace"),
            other => panic!("expected Open, got {other:?}"),
        }
        let mut v2 = Vec::new();
        open.encode_into_versioned(&mut v2, 2);
        assert_eq!(v2.len(), v1.len() + 9, "v2 adds flag byte + trace id");
        // Out-of-range requests clamp to the supported range.
        let mut lo = Vec::new();
        Frame::Finish.encode_into_versioned(&mut lo, 0);
        assert_eq!(lo[4], MIN_WIRE_VERSION);
        let mut hi = Vec::new();
        Frame::Finish.encode_into_versioned(&mut hi, 99);
        assert_eq!(hi[4], WIRE_VERSION);
        // split_frame_versioned reports what the header said.
        let (_, ver, _) = split_frame_versioned(&lo).unwrap().expect("complete");
        assert_eq!(ver, 1);
    }

    #[test]
    fn output_frame_is_byte_identical_to_canonical_encoding() {
        use crate::ModeOutput;
        let out = SessionOutput {
            id: 11,
            shard: 1,
            mode: "count",
            start_s: 0.75,
            n_requested: 320,
            n_samples: 320,
            n_columns: 4,
            closed_early: false,
            nulling_db: -27.5,
            result: ModeOutput::new("count", Some(1.5f64)),
            events: vec![TrackEvent {
                window: 2,
                time_s: 0.5,
                track_id: None,
                kind: EventKind::CountChange { count: 1 },
            }],
            calibrate_s: 123.0, // wall-clock: must NOT affect the wire
            stream_s: 456.0,
        };
        let frame = Frame::output_of(&out);
        let body = frame.encode();
        // The frame payload (after [len][ver][type]) IS the canonical
        // encoding.
        assert_eq!(&body[6..], &encode_session_output(&out)[..]);
        // And wall-clock fields are invisible.
        let mut out2 = out.clone();
        out2.calibrate_s = 0.0;
        out2.stream_s = 0.0;
        assert_eq!(encode_session_output(&out), encode_session_output(&out2));
        // Decoded common surface matches.
        match frame {
            Frame::Output(w) => {
                assert_eq!(w.id, 11);
                assert_eq!(w.mode, "count");
                assert_eq!(w.events.len(), 1);
                assert!(!w.payload.is_empty());
            }
            other => panic!("expected Output, got {other:?}"),
        }
    }
}
