//! The network front: one listener, one reactor thread, many
//! connections, zero dependencies.
//!
//! [`WireServer::start`] binds a TCP listener and spawns a single
//! reactor thread that *owns* the [`ServeEngine`], the
//! [`Admission`] gate, and every connection. Ownership — not locking —
//! is the concurrency model: the shard threads already provide the
//! parallelism, so the network side stays a small poll loop over
//! nonblocking sockets (std offers no epoll; with the workspace's
//! zero-dependency rule, readiness is a read that returns
//! `WouldBlock` and a short idle sleep — sub-millisecond reaction,
//! no busy spin).
//!
//! Data flow per connection:
//!
//! ```text
//! bytes in ──▶ sniff (WIVI magic | HTTP GET)
//!   WIVI: frames ──▶ HELLO→auth, OPEN→admission→shard queue,
//!                    CLOSE, FINISH
//!   HTTP: GET /metrics ──▶ Prometheus text from the engine registry,
//!                          plus rolling 10 s/60 s p50/p99 gauges
//!         GET /healthz ──▶ shard liveness + queue depths + shed rate
//!                          + SLO burn rate, JSON
//!         GET /tracez  ──▶ recent traces (flight-recorder spans
//!                          grouped by trace id) + incident buffer,
//!                          JSON
//! shards ──▶ CompletionQueue ──▶ reactor routes each finished
//!   session to its owning connection; when a FINISHed connection's
//!   sessions have all completed, the reactor replays the engine's
//!   event merge over that connection's outputs and writes
//!   EVENT* OUTPUT* BYE
//! ```
//!
//! The wire path adds *no* computation of its own: outputs are encoded
//! with [`wire::encode_session_output`] and events with
//! [`wire::encode_serve_event`], the same public functions a test can
//! apply to an in-process [`ServeReport`] — which
//! is how `tests/serving_net.rs` pins the served bytes to the
//! in-process bytes, bit for bit.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wivi_core::WiViConfig;
use wivi_obs::{
    fmt_trace, Incident, SpanRecord, TraceIdGen, WindowedCounter, WINDOW_10S_NS, WINDOW_60S_NS,
};
use wivi_rf::SceneHandle;

use crate::admission::{Admission, AdmissionConfig};
use crate::engine::{
    merge_session_events, CompletionQueue, ServeConfig, ServeEngine, ServeEvent, ServeReport,
};
use crate::mode::ModeRegistry;
use crate::session::{SessionId, SessionOutput, SessionSpec};
use crate::wire::{self, Frame, OpenRequest, WireError, WireOutput, MAGIC};

/// Everything a [`WireServer`] needs: engine sizing, admission policy,
/// and the server-side catalogs a wire `OPEN` resolves its names
/// against.
pub struct WireServerConfig {
    pub serve: ServeConfig,
    pub admission: AdmissionConfig,
    /// Sensing modes reachable over the wire, by tag. The registry is
    /// the wire-to-mode resolution point: registering a mode here makes
    /// it remotely servable with no wire-format changes.
    pub modes: ModeRegistry,
    /// Named scenes an `OPEN` may reference.
    pub scenes: Vec<(String, SceneHandle)>,
    /// Named device configurations an `OPEN` may reference.
    pub configs: Vec<(String, WiViConfig)>,
    /// Bind address; `127.0.0.1:0` (loopback, ephemeral port) by
    /// default.
    pub bind: String,
    /// How long `shutdown()` lets in-flight connections drain before
    /// dropping them.
    pub shutdown_grace: Duration,
}

impl WireServerConfig {
    /// Open-access loopback server with the built-in modes — the test
    /// and bench baseline. Add scenes/configs before starting.
    pub fn new(serve: ServeConfig) -> Self {
        Self {
            serve,
            admission: AdmissionConfig::open_access(),
            modes: ModeRegistry::builtin(),
            scenes: Vec::new(),
            configs: Vec::new(),
            bind: "127.0.0.1:0".to_owned(),
            shutdown_grace: Duration::from_secs(10),
        }
    }

    /// Registers a named scene.
    pub fn scene(mut self, name: impl Into<String>, scene: impl Into<SceneHandle>) -> Self {
        self.scenes.push((name.into(), scene.into()));
        self
    }

    /// Registers a named device configuration.
    pub fn config(mut self, name: impl Into<String>, cfg: WiViConfig) -> Self {
        self.configs.push((name.into(), cfg));
        self
    }
}

/// What the reactor hands back at [`WireServer::shutdown`].
pub struct WireServerReport {
    /// The engine's final report — same type, same contents as the
    /// in-process path's [`ServeEngine::finish`].
    pub report: ServeReport,
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Sessions admitted through the wire.
    pub admitted: u64,
    /// Sessions shed at the admission boundary (placed shard queue
    /// full).
    pub shed: u64,
}

/// Handle to a running wire server. Dropping without
/// [`shutdown`](Self::shutdown) leaks the reactor thread; tests and
/// binaries should always shut down.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<std::io::Result<WireServerReport>>>,
}

impl WireServer {
    /// Binds, spawns the reactor, returns once the socket is live.
    pub fn start(cfg: WireServerConfig) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("wivi-net".into())
            .spawn(move || Reactor::new(cfg, listener, flag).run())?;
        Ok(WireServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections (bounded by the
    /// configured grace), finishes the engine, and returns the final
    /// report.
    pub fn shutdown(mut self) -> std::io::Result<WireServerReport> {
        // ordering: Release — pairs with the reactor's Acquire load so
        // everything written before shutdown is visible to it.
        self.stop.store(true, Ordering::Release);
        let handle = self.handle.take().expect("shutdown called once");
        handle
            .join()
            .unwrap_or_else(|p| std::panic::resume_unwind(p))
    }
}

// ------------------------------------------------------------ reactor

/// Per-connection protocol position.
enum ConnState {
    /// Waiting for the 4 sniff bytes: `WIVI` magic or an HTTP method.
    Sniff,
    /// Magic seen; the first frame must be HELLO.
    AwaitHello,
    /// Authenticated; accepts OPEN / CLOSE / FINISH.
    Active { token: String },
    /// FINISH received: no more commands; drain sessions then report.
    Finished,
    /// An HTTP request is accumulating (until the blank line).
    Http,
    /// Everything queued; close once the write buffer empties.
    Draining,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written to the socket.
    wpos: usize,
    /// Sessions admitted on this connection, still running.
    pending: usize,
    /// Finished sessions routed back from the completion queue.
    done: Vec<SessionOutput>,
    closed: bool,
    /// The wire version this peer speaks, recorded from its HELLO
    /// header and stamped on every frame sent back: a v1 client —
    /// whose decoder hard-errors on `ver != 1` — gets v1 responses.
    /// (Every response payload layout is already v1-compatible; only
    /// the header byte differs.)
    peer_ver: u8,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            state: ConnState::Sniff,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: 0,
            done: Vec::new(),
            closed: false,
            peer_ver: wire::WIRE_VERSION,
        }
    }

    fn queue_frame(&mut self, f: &Frame) {
        f.encode_into_versioned(&mut self.wbuf, self.peer_ver);
    }

    /// Frames `payload` under `tag` straight into the write buffer —
    /// the canonical bytes go on the wire untouched.
    fn queue_raw(&mut self, tag: u8, payload: &[u8]) {
        let len = (payload.len() + 2) as u32;
        self.wbuf.extend_from_slice(&len.to_le_bytes());
        self.wbuf.push(self.peer_ver);
        self.wbuf.push(tag);
        self.wbuf.extend_from_slice(payload);
    }

    fn queue_error(&mut self, code: &str, id: SessionId, message: String) {
        self.queue_frame(&Frame::Error {
            code: code.to_owned(),
            id,
            message,
        });
    }

    /// Queues an error and ends the conversation.
    fn fail(&mut self, code: &str, message: String) {
        self.queue_error(code, 0, message);
        self.queue_frame(&Frame::Bye);
        self.state = ConnState::Draining;
    }
}

struct Reactor {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    engine: ServeEngine,
    completions: CompletionQueue,
    admission: Admission,
    modes: ModeRegistry,
    scenes: Vec<(String, SceneHandle)>,
    configs: Vec<(String, WiViConfig)>,
    grace: Duration,
    conns: Vec<Option<Conn>>,
    /// session id → slot in `conns`, for completion routing.
    owner: HashMap<SessionId, usize>,
    accepted: usize,
    /// Rolling view over the admission shed counter — the `/healthz`
    /// shed rate. Ticked once per reactor iteration.
    shed_window: WindowedCounter,
}

impl Reactor {
    fn new(cfg: WireServerConfig, listener: TcpListener, stop: Arc<AtomicBool>) -> Self {
        let (engine, completions) = ServeEngine::start_with_completions(cfg.serve);
        let admission = Admission::new(cfg.admission, engine.registry());
        // Same get-or-create name the admission gate records into, so
        // the window wraps the live counter, not a copy.
        let shed_window = WindowedCounter::new(engine.registry().counter("serve.admission.shed"));
        Reactor {
            listener,
            stop,
            engine,
            completions,
            admission,
            modes: cfg.modes,
            scenes: cfg.scenes,
            configs: cfg.configs,
            grace: cfg.shutdown_grace,
            conns: Vec::new(),
            owner: HashMap::new(),
            accepted: 0,
            shed_window,
        }
    }

    fn run(mut self) -> std::io::Result<WireServerReport> {
        let mut stopping: Option<Instant> = None;
        loop {
            let mut progressed = false;
            if stopping.is_none() {
                progressed |= self.accept_new();
                // ordering: Acquire — pairs with the Release store in
                // shutdown(); see there.
                if self.stop.load(Ordering::Acquire) {
                    stopping = Some(Instant::now());
                }
            }
            progressed |= self.pump_reads();
            progressed |= self.route_completions();
            self.flush_finished();
            progressed |= self.pump_writes();
            self.reap();
            self.shed_window.maybe_tick();
            if let Some(t0) = stopping {
                let drained = self.conns.iter().all(Option::is_none);
                if drained || t0.elapsed() > self.grace {
                    break;
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        // Snapshot admission counters before the engine (and its
        // registry) is consumed by finish().
        let snap = self.engine.registry().snapshot(false);
        let admitted = snap.counter("serve.admission.admitted").unwrap_or(0);
        let shed = snap.counter("serve.admission.shed").unwrap_or(0);
        let report = self.engine.finish();
        Ok(WireServerReport {
            report,
            connections: self.accepted,
            admitted,
            shed,
        })
    }

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.accepted += 1;
                    any = true;
                    let conn = Conn::new(stream);
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }

    fn pump_reads(&mut self) -> bool {
        let mut any = false;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.closed || matches!(conn.state, ConnState::Draining) {
                continue;
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        any = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            self.process(slot);
        }
        any
    }

    /// Advances one connection's protocol as far as its read buffer
    /// allows.
    fn process(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match &conn.state {
                ConnState::Sniff => {
                    if conn.rbuf.len() < 4 {
                        return;
                    }
                    if conn.rbuf[..4] == MAGIC {
                        conn.rbuf.drain(..4);
                        conn.state = ConnState::AwaitHello;
                    } else {
                        // Anything else is treated as HTTP (in practice
                        // `GET `): the same port serves /metrics.
                        conn.state = ConnState::Http;
                    }
                }
                ConnState::Http => {
                    let Some(end) = find_blank_line(&conn.rbuf) else {
                        return;
                    };
                    let head = String::from_utf8_lossy(&conn.rbuf[..end]).into_owned();
                    conn.rbuf.clear();
                    let response = self.http_response(&head);
                    let conn = self.conns[slot].as_mut().expect("slot live");
                    conn.wbuf.extend_from_slice(response.as_bytes());
                    conn.state = ConnState::Draining;
                }
                ConnState::Draining | ConnState::Finished => return,
                ConnState::AwaitHello | ConnState::Active { .. } => {
                    let frame = match wire::split_frame_versioned(&conn.rbuf) {
                        Ok(Some((frame, ver, used))) => {
                            conn.rbuf.drain(..used);
                            // The HELLO header negotiates the version
                            // the whole conversation answers at.
                            if matches!(conn.state, ConnState::AwaitHello) {
                                conn.peer_ver = ver.min(wire::WIRE_VERSION);
                            }
                            frame
                        }
                        Ok(None) => return,
                        Err(e) => {
                            conn.fail("wire", format!("malformed frame: {e}"));
                            return;
                        }
                    };
                    self.handle_frame(slot, frame);
                }
            }
        }
    }

    fn handle_frame(&mut self, slot: usize, frame: Frame) {
        let conn = self.conns[slot].as_mut().expect("slot live");
        match (&conn.state, frame) {
            (ConnState::AwaitHello, Frame::Hello { token }) => {
                match self.admission.authenticate(&token) {
                    Ok(()) => {
                        conn.queue_frame(&Frame::HelloOk);
                        conn.state = ConnState::Active { token };
                    }
                    Err(e) => conn.fail(e.code(), e.to_string()),
                }
            }
            (ConnState::AwaitHello, _) => {
                conn.fail("protocol", "first frame must be HELLO".into());
            }
            (ConnState::Active { token }, Frame::Open(req)) => {
                let token = token.clone();
                self.handle_open(slot, &token, req);
            }
            (ConnState::Active { .. }, Frame::Close { id }) => {
                if let Err(e) = self.engine.close(id) {
                    let conn = self.conns[slot].as_mut().expect("slot live");
                    conn.queue_error(e.tag(), id, e.to_string());
                }
            }
            (ConnState::Active { .. }, Frame::Finish) => {
                conn.state = ConnState::Finished;
            }
            (ConnState::Active { .. }, other) => {
                conn.fail("protocol", format!("unexpected client frame: {other:?}"));
            }
            // Unreachable by construction: process() stops feeding
            // frames in the other states.
            (_, _) => {}
        }
    }

    fn handle_open(&mut self, slot: usize, token: &str, req: OpenRequest) {
        let id = req.id;
        let Some(mode) = self.modes.get(&req.mode) else {
            let conn = self.conns[slot].as_mut().expect("slot live");
            conn.queue_error("unknown_mode", id, format!("no mode '{}'", req.mode));
            return;
        };
        let Some(scene) = self
            .scenes
            .iter()
            .find(|(n, _)| *n == req.scene)
            .map(|(_, s)| s.clone())
        else {
            let conn = self.conns[slot].as_mut().expect("slot live");
            conn.queue_error("unknown_scene", id, format!("no scene '{}'", req.scene));
            return;
        };
        let Some(config) = self
            .configs
            .iter()
            .find(|(n, _)| *n == req.config)
            .map(|(_, c)| *c)
        else {
            let conn = self.conns[slot].as_mut().expect("slot live");
            conn.queue_error("unknown_config", id, format!("no config '{}'", req.config));
            return;
        };
        let spec = SessionSpec {
            id,
            scene,
            config,
            seed: req.seed,
            duration_s: req.duration_s,
            start_s: req.start_s,
            mode,
            trace: req.trace.unwrap_or(0),
        };
        match self.admission.admit(token, &mut self.engine, spec) {
            Ok(shard) => {
                self.owner.insert(id, slot);
                let conn = self.conns[slot].as_mut().expect("slot live");
                conn.pending += 1;
                conn.queue_frame(&Frame::OpenOk {
                    id,
                    shard: shard as u32,
                });
            }
            Err(e) => {
                let conn = self.conns[slot].as_mut().expect("slot live");
                conn.queue_error(e.code(), id, e.to_string());
            }
        }
    }

    /// Drains the completion queue and hands each finished session to
    /// the connection that opened it.
    fn route_completions(&mut self) -> bool {
        let finished = self.completions.drain();
        let any = !finished.is_empty();
        for out in finished {
            self.admission.session_done(out.id);
            let Some(slot) = self.owner.remove(&out.id) else {
                continue; // session opened in-process or conn long gone
            };
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.pending = conn.pending.saturating_sub(1);
                conn.done.push(out);
            }
        }
        any
    }

    /// For each FINISHed connection whose sessions have all completed:
    /// replay the engine's event merge over its outputs, then write
    /// EVENT* OUTPUT* BYE — the same deterministic function of the
    /// session set as the in-process report.
    fn flush_finished(&mut self) {
        for conn in self.conns.iter_mut().flatten() {
            if !matches!(conn.state, ConnState::Finished) || conn.pending > 0 {
                continue;
            }
            let mut done = std::mem::take(&mut conn.done);
            done.sort_by_key(|o| o.id);
            for e in &merge_session_events(&done) {
                conn.queue_raw(wire::tag::EVENT, &wire::encode_serve_event(e));
            }
            for out in &done {
                conn.queue_raw(wire::tag::OUTPUT, &wire::encode_session_output(out));
            }
            conn.queue_frame(&Frame::Bye);
            conn.state = ConnState::Draining;
        }
    }

    fn pump_writes(&mut self) -> bool {
        let mut any = false;
        for conn in self.conns.iter_mut().flatten() {
            if conn.closed {
                continue;
            }
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        any = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }
        any
    }

    /// Releases connections that are done: drained and flushed, or
    /// dead. Their still-running sessions keep running (the engine owns
    /// them); their completions will simply find no owner.
    fn reap(&mut self) {
        for slot in 0..self.conns.len() {
            let done = match &self.conns[slot] {
                Some(c) => {
                    c.closed
                        || (matches!(c.state, ConnState::Draining)
                            && c.wpos == c.wbuf.len()
                            && c.wbuf.is_empty())
                }
                None => false,
            };
            if done {
                self.conns[slot] = None;
                self.owner.retain(|_, s| *s != slot);
            }
        }
    }

    fn http_response(&self, head: &str) -> String {
        let path = head.split_whitespace().nth(1).unwrap_or("/");
        match path {
            "/metrics" => {
                let mut snap = self.engine.registry().snapshot(false);
                self.append_rolling(&mut snap);
                wivi_obs::export::to_prometheus_http(&snap)
            }
            "/healthz" => {
                let (status, body) = self.healthz_json();
                http_json(status, &body)
            }
            "/tracez" => http_json("200 OK", &self.tracez_json()),
            _ => "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                .to_owned(),
        }
    }

    /// Appends the rolling 10 s/60 s views as gauges, so `/metrics`
    /// carries "latency now" next to the cumulative series. Gauges, not
    /// histograms: a rolling quantile is a point-in-time readout.
    fn append_rolling(&self, snap: &mut wivi_obs::Snapshot) {
        for (label, window) in [("10s", WINDOW_10S_NS), ("60s", WINDOW_60S_NS)] {
            let roll = self.engine.rolling_batch_latency(window);
            let g = &mut snap.gauges;
            g.push((
                format!("serve.batch_latency_ns.p50.{label}"),
                roll.quantile(50.0),
            ));
            g.push((
                format!("serve.batch_latency_ns.p99.{label}"),
                roll.quantile(99.0),
            ));
            g.push((
                format!("serve.batch_latency_ns.count.{label}"),
                roll.count as f64,
            ));
            let (windows, over) = self.engine.slo_rolling(window);
            g.push((format!("serve.slo.windows.{label}"), windows as f64));
            g.push((format!("serve.slo.windows_over.{label}"), over as f64));
            g.push((
                format!("serve.admission.shed.{label}"),
                self.shed_window.rolling(window) as f64,
            ));
        }
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// The `/healthz` body: per-shard liveness and queue depth,
    /// admission totals with the rolling shed rate, and the SLO
    /// aggregate. Status 503 when any shard thread has died.
    fn healthz_json(&self) -> (&'static str, String) {
        let n_shards = self.engine.config().n_shards;
        let mut all_alive = true;
        let mut shards = String::new();
        for i in 0..n_shards {
            let alive = self.engine.shard_alive(i);
            all_alive &= alive;
            if i > 0 {
                shards.push(',');
            }
            shards.push_str(&format!(
                r#"{{"shard":{i},"alive":{alive},"queue":{}}}"#,
                self.engine.queue_len(i)
            ));
        }
        let snap = self.engine.registry().snapshot(false);
        let admitted = snap.counter("serve.admission.admitted").unwrap_or(0);
        let shed = snap.counter("serve.admission.shed").unwrap_or(0);
        let slo = self.engine.slo_summary();
        let (roll_windows, roll_over) = self.engine.slo_rolling(WINDOW_60S_NS);
        let body = format!(
            concat!(
                r#"{{"status":"{status}","shards":[{shards}],"#,
                r#""connections":{conns},"admitted":{admitted},"shed":{shed},"#,
                r#""shed_per_sec_60s":{shed_rate:.6},"#,
                r#""slo":{{"budget_ns":{budget},"windows":{windows},"#,
                r#""windows_over":{over},"burn_rate":{burn:.6},"#,
                r#""burn_rate_60s":{burn60:.6},"worst_ns":{worst},"#,
                r#""breached_sessions":{breached}}},"#,
                r#""obs_enabled":{obs}}}"#
            ),
            status = if all_alive { "ok" } else { "degraded" },
            shards = shards,
            conns = self.accepted,
            admitted = admitted,
            shed = shed,
            shed_rate = self.shed_window.rate_per_sec(WINDOW_60S_NS),
            budget = slo.budget_ns,
            windows = slo.windows,
            over = slo.windows_over,
            burn = slo.burn_rate(),
            burn60 = if roll_windows == 0 {
                0.0
            } else {
                roll_over as f64 / roll_windows as f64
            },
            worst = slo.worst_ns,
            breached = slo.breached_sessions,
            obs = wivi_obs::enabled(),
        );
        (
            if all_alive {
                "200 OK"
            } else {
                "503 Service Unavailable"
            },
            body,
        )
    }

    /// The `/tracez` body: a non-destructive snapshot of the span
    /// flight recorder grouped by trace id (untraced spans are left to
    /// the drain path), plus the incident buffer.
    fn tracez_json(&self) -> String {
        let spans = wivi_obs::snapshot_spans();
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for rec in &spans {
            if rec.trace == 0 {
                continue;
            }
            groups
                .entry(rec.trace)
                .or_insert_with(|| {
                    order.push(rec.trace);
                    Vec::new()
                })
                .push(rec);
        }
        let mut traces = String::new();
        for (i, trace) in order.iter().enumerate() {
            if i > 0 {
                traces.push(',');
            }
            traces.push_str(&format!(
                r#"{{"trace":"{}","spans":[{}]}}"#,
                fmt_trace(*trace),
                join_spans(groups[trace].iter().copied())
            ));
        }
        let incidents = wivi_obs::incidents();
        let mut inc = String::new();
        for (i, it) in incidents.iter().enumerate() {
            if i > 0 {
                inc.push(',');
            }
            inc.push_str(&incident_json(it));
        }
        format!(
            r#"{{"traces":[{traces}],"incidents":[{inc}],"spans_overwritten":{}}}"#,
            wivi_obs::overwritten()
        )
    }
}

/// Wraps a JSON body in a minimal HTTP/1.1 response.
fn http_json(status: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn span_json(rec: &SpanRecord) -> String {
    format!(
        r#"{{"name":"{}","arg":{},"start_ns":{},"dur_ns":{},"thread":{}}}"#,
        rec.name, rec.arg, rec.start_ns, rec.dur_ns, rec.thread
    )
}

fn join_spans<'a>(recs: impl Iterator<Item = &'a SpanRecord>) -> String {
    let mut out = String::new();
    for (i, rec) in recs.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_json(rec));
    }
    out
}

/// One incident row. The captured spans are bounded at the source
/// ([`wivi_obs::spans::INCIDENT_SPAN_CAP`]); the JSON keeps only the
/// newest few per incident and reports the full count.
fn incident_json(it: &Incident) -> String {
    const JSON_SPAN_CAP: usize = 32;
    let tail = &it.spans[it.spans.len().saturating_sub(JSON_SPAN_CAP)..];
    format!(
        concat!(
            r#"{{"seq":{},"reason":"{}","arg":{},"trace":"{}","#,
            r#""worst_ns":{},"at_ns":{},"spans_total":{},"spans":[{}]}}"#
        ),
        it.seq,
        it.reason,
        it.arg,
        fmt_trace(it.trace),
        it.worst_ns,
        it.at_ns,
        it.spans.len(),
        join_spans(tail.iter())
    )
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// FNV-1a over arbitrary bytes — the client's trace-seed derivation
/// (same constants as [`crate::engine::shard_of`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_more(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a stream, so independent fields fold into one
/// seed without string concatenation.
fn fnv1a_more(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ------------------------------------------------------------- client

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Wire(WireError),
    /// The server answered with an `ERROR` frame.
    Server {
        code: String,
        id: SessionId,
        message: String,
    },
    /// The server sent a legal frame the client did not expect here.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, id, message } => {
                write!(f, "server error [{code}] session {id}: {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// What [`WireClient::finish`] collects: the connection's merged event
/// stream and its outputs (id order), both decoded *and* as the raw
/// payload bytes the server sent — the bytes are the equivalence
/// contract.
pub struct FinishReport {
    pub events: Vec<ServeEvent>,
    pub outputs: Vec<WireOutput>,
    /// Raw EVENT frame payloads, in arrival (= merge) order.
    pub event_bytes: Vec<Vec<u8>>,
    /// Raw OUTPUT frame payloads, in arrival (= id) order.
    pub output_bytes: Vec<Vec<u8>>,
}

/// A small blocking client for the wire protocol — what tests, the
/// bench soak, and the CI smoke speak.
pub struct WireClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Trace-id source for opens that did not bring their own id:
    /// seeded from the token *and* the connection's local socket
    /// address (no wall clock), stepped once per traced open.
    traces: TraceIdGen,
    /// The trace id the last [`open`](Self::open) carried (0 =
    /// untraced).
    last_trace: u64,
}

impl WireClient {
    /// Connects, sends the magic, and authenticates. The client's
    /// trace-id generator is seeded from the token mixed with the
    /// connection's local socket address — two concurrent clients
    /// sharing a token still get disjoint id streams, without a wall
    /// clock. For a fully deterministic replay, reseed explicitly
    /// with [`Self::trace_seed`].
    pub fn connect(addr: SocketAddr, token: &str) -> Result<WireClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&MAGIC)?;
        let mut seed = fnv1a(token.as_bytes());
        if let Ok(local) = stream.local_addr() {
            seed = fnv1a_more(seed, local.to_string().as_bytes());
        }
        let mut client = WireClient {
            stream,
            rbuf: Vec::new(),
            traces: TraceIdGen::new(seed),
            last_trace: 0,
        };
        client.send(&Frame::Hello {
            token: token.to_owned(),
        })?;
        match client.read_frame()?.0 {
            Frame::HelloOk => Ok(client),
            Frame::Error { code, id, message } => Err(ClientError::Server { code, id, message }),
            _ => Err(ClientError::Protocol("expected HELLO_OK")),
        }
    }

    /// Reseeds the trace-id generator — the deterministic-replay
    /// override: the default seed mixes in the ephemeral local port,
    /// so a driver that needs reproducible ids sets its own seed here.
    pub fn trace_seed(&mut self, seed: u64) {
        self.traces = TraceIdGen::new(seed);
    }

    /// The trace id the most recent [`open`](Self::open) carried, 0
    /// when it ran untraced — what a caller correlates against
    /// `/tracez` and the server-side session spans.
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    fn send(&mut self, f: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&f.encode())?;
        Ok(())
    }

    /// Reads one frame; returns it plus its raw payload bytes (after
    /// the version and type bytes).
    fn read_frame(&mut self) -> Result<(Frame, Vec<u8>), ClientError> {
        loop {
            if let Some((frame, used)) = wire::split_frame(&self.rbuf)? {
                // split_frame only succeeds with `used` = 4 + len ≥ 6
                // and the whole frame buffered; get() spells the
                // invariant without a panic path.
                let payload = self.rbuf.get(6..used).unwrap_or(&[]).to_vec();
                self.rbuf.drain(..used);
                return Ok((frame, payload));
            }
            let mut buf = [0u8; 16 * 1024];
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-frame",
                )));
            }
            self.rbuf.extend_from_slice(buf.get(..n).unwrap_or(&buf));
        }
    }

    /// Opens a session; returns the shard it was placed on.
    ///
    /// With observability on, an `OPEN` that did not bring its own
    /// trace id gets one from the client's generator; the id rides the
    /// wire into the server-side session spans, and the whole
    /// OPEN → OPEN_OK round trip is recorded client-side as a
    /// `client.open_rtt` span under the same id — one trace links both
    /// ends.
    pub fn open(&mut self, mut req: OpenRequest) -> Result<u32, ClientError> {
        if req.trace.is_none() && wivi_obs::enabled() {
            req.trace = Some(self.traces.next_id());
        }
        self.last_trace = req.trace.unwrap_or(0);
        let _span = wivi_obs::span_traced("client.open_rtt", req.id, self.last_trace);
        let want = req.id;
        self.send(&Frame::Open(req))?;
        match self.read_frame()?.0 {
            Frame::OpenOk { id, shard } if id == want => Ok(shard),
            Frame::OpenOk { .. } => Err(ClientError::Protocol("OPEN_OK for a different id")),
            Frame::Error { code, id, message } => Err(ClientError::Server { code, id, message }),
            _ => Err(ClientError::Protocol("expected OPEN_OK")),
        }
    }

    /// Requests an early close for `id`.
    pub fn close_session(&mut self, id: SessionId) -> Result<(), ClientError> {
        self.send(&Frame::Close { id })
    }

    /// Declares the conversation over and blocks until the server has
    /// drained every session opened here, returning the merged events
    /// and outputs.
    pub fn finish(mut self) -> Result<FinishReport, ClientError> {
        self.send(&Frame::Finish)?;
        let mut report = FinishReport {
            events: Vec::new(),
            outputs: Vec::new(),
            event_bytes: Vec::new(),
            output_bytes: Vec::new(),
        };
        loop {
            let (frame, payload) = self.read_frame()?;
            match frame {
                Frame::Event(e) => {
                    report.events.push(e);
                    report.event_bytes.push(payload);
                }
                Frame::Output(o) => {
                    report.outputs.push(o);
                    report.output_bytes.push(payload);
                }
                Frame::Error { code, id, message } => {
                    return Err(ClientError::Server { code, id, message })
                }
                Frame::Bye => return Ok(report),
                _ => return Err(ClientError::Protocol("unexpected frame during drain")),
            }
        }
    }
}
