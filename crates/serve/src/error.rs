//! Serving errors: the clean failure surface of the engine's session
//! boundary.
//!
//! Before the wire front, the engine's failure modes were asserts —
//! acceptable for an in-process library whose one caller controls the
//! lifecycle, fatal for a server whose clients race `finish()`. Every
//! boundary operation ([`ServeEngine::open`](crate::ServeEngine::open),
//! [`try_open`](crate::ServeEngine::try_open),
//! [`close`](crate::ServeEngine::close)) now returns a [`ServeError`]
//! instead of panicking, and the admission layer maps each variant to a
//! wire `ERROR` frame.

use crate::session::{SessionId, SessionSpec};

/// Why the engine refused a session operation.
pub enum ServeError {
    /// The engine is shutting down (a concurrent `finish()` closed the
    /// shard queues). Blocked producers are woken with this instead of
    /// panicking and poisoning the queue mutex.
    ShutDown,
    /// The session id was already used during this engine's lifetime.
    DuplicateId(SessionId),
    /// `try_open` only: the target shard's queue is at capacity. The
    /// spec is handed back (boxed — it owns a whole scene) so the
    /// caller can retry or shed.
    QueueFull(Box<SessionSpec>),
}

impl ServeError {
    /// Stable machine-readable tag (used by wire `ERROR` frames and
    /// logs).
    pub fn tag(&self) -> &'static str {
        match self {
            ServeError::ShutDown => "shut_down",
            ServeError::DuplicateId(_) => "duplicate_id",
            ServeError::QueueFull(_) => "queue_full",
        }
    }

    /// Recovers the spec a [`ServeError::QueueFull`] handed back.
    pub fn into_spec(self) -> Option<Box<SessionSpec>> {
        match self {
            ServeError::QueueFull(spec) => Some(spec),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "engine shut down"),
            ServeError::DuplicateId(id) => write!(
                f,
                "duplicate session id {id}: ids must be unique for the engine's lifetime"
            ),
            ServeError::QueueFull(spec) => {
                write!(f, "shard queue full for session {}", spec.id)
            }
        }
    }
}

// Manual: `SessionSpec` holds type-erased scene/mode handles and is not
// `Debug`; showing the variant and id is what a failure report needs.
impl std::fmt::Debug for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "ShutDown"),
            ServeError::DuplicateId(id) => write!(f, "DuplicateId({id})"),
            ServeError::QueueFull(spec) => write!(f, "QueueFull(session {})", spec.id),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_display_are_stable() {
        assert_eq!(ServeError::ShutDown.tag(), "shut_down");
        assert_eq!(ServeError::DuplicateId(7).tag(), "duplicate_id");
        assert_eq!(
            format!("{}", ServeError::DuplicateId(7)),
            format!("{}", ServeError::DuplicateId(7))
        );
        assert_eq!(format!("{:?}", ServeError::ShutDown), "ShutDown");
        assert!(ServeError::ShutDown.into_spec().is_none());
    }
}
