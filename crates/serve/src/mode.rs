//! The sensing-mode API: one radio, pluggable read-outs.
//!
//! The paper's device is a single RF front end with many read-outs —
//! tracking, counting, gestures, imaging — and related systems (SiWa's
//! radar → multi-head pipeline, the crowd-counting reuse of one link for
//! a different estimator) expose exactly that shape. This module makes
//! the read-out set *open*: a sensing mode is an implementation of
//! [`SensingMode`], the serving engine dispatches through type-erased
//! [`ModeRef`]s, and a [`ModeRegistry`] maps stable string tags to
//! modes. Nothing in the serving engine enumerates modes; a new mode —
//! including one defined in a downstream crate — plugs in by
//! implementing the trait (see the crate-level example, which registers
//! a sixth mode from outside this crate).
//!
//! The lifecycle mirrors a session's: [`SensingMode::open`] builds the
//! per-session streaming state for a freshly calibrated device,
//! [`SensingMode::step`] consumes one batch of residual-channel samples
//! (borrowing the shard's [`EngineCache`] for the heavy per-window
//! compute), and [`SensingMode::finalize`] drains the state into a
//! [`ModeOutput`] plus the session's contribution to the engine's
//! unified [`TrackEvent`] stream — modes without events return an empty
//! vector from the one shared code path instead of each dispatch arm
//! hand-writing `Vec::new()`.
//!
//! **Determinism contract.** A mode's output must be a pure function of
//! `(effective config, sample stream)`: state lives in
//! `Self::State`, shard engines hold no cross-window state, and nothing
//! may read clocks, thread ids, or global state. The serving engine
//! inherits its bitwise shard-count/submission-order invariance from
//! this.

use std::any::Any;
use std::sync::Arc;

use wivi_core::{EngineCache, WiViConfig, WiViDevice};
use wivi_num::Complex64;
use wivi_track::TrackEvent;

/// One sensing read-out of the device: how to open, advance, and drain
/// a session of this mode. Implementations are stateless recipes — all
/// per-session state lives in `Self::State`; shared heavy scratch lives
/// in the shard's [`EngineCache`].
pub trait SensingMode: Send + Sync + 'static {
    /// Per-session streaming state.
    type State: Send + 'static;

    /// Stable identifier used in reports, JSON, and the
    /// [`ModeRegistry`]. Must be unique among registered modes.
    fn tag(&self) -> &'static str;

    /// Builds the session's streaming state for a calibrated device.
    /// `eff` is the device's *effective* configuration (the device
    /// derives e.g. the MUSIC noise floor at construction) — the same
    /// values the standalone `*_streaming` entry points run with.
    fn open(&self, dev: &WiViDevice, eff: &WiViConfig) -> Self::State;

    /// Consumes one batch of nulled residual-channel samples, borrowing
    /// the shard's engine cache for the per-window compute.
    fn step(&self, state: &mut Self::State, engines: &mut EngineCache, samples: &[Complex64]);

    /// Analysis windows (spectrogram columns / imaging frames) the
    /// session has completed so far.
    fn columns(&self, state: &Self::State) -> usize;

    /// Drains the session into its output and its tracker events
    /// (session-relative times, emission order; empty for modes without
    /// an event stream). The output's tag is normalized to
    /// [`Self::tag`] by the serving layer, so it cannot disagree with
    /// the session's mode.
    fn finalize(&self, state: Self::State) -> (ModeOutput, Vec<TrackEvent>);
}

/// The type-erased payload a finished session produced, tagged with its
/// mode. Downcast with [`Self::get`] / [`Self::expect`] to the payload
/// type the mode documents (e.g. `TrackingReport` for `track_targets`).
/// Cloning is an `Arc` bump.
#[derive(Clone)]
pub struct ModeOutput {
    tag: &'static str,
    value: Arc<dyn Any + Send + Sync>,
}

impl ModeOutput {
    /// Wraps a mode's payload.
    pub fn new<T: Any + Send + Sync>(tag: &'static str, value: T) -> Self {
        Self {
            tag,
            value: Arc::new(value),
        }
    }

    /// The producing mode's tag.
    pub fn tag(&self) -> &'static str {
        self.tag
    }

    /// The payload, if it is a `T`.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }

    /// `true` if the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.value.is::<T>()
    }

    /// The payload as a `T`.
    ///
    /// # Panics
    /// Panics (with the mode tag) if the payload is not a `T`.
    pub fn expect<T: Any>(&self) -> &T {
        self.get::<T>().unwrap_or_else(|| {
            panic!(
                "mode '{}' output is not a {}",
                self.tag,
                std::any::type_name::<T>()
            )
        })
    }
}

impl std::fmt::Debug for ModeOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModeOutput({})", self.tag)
    }
}

/// Object-safe per-session state: a [`SensingMode`] bound to one
/// session's `State` so shards can drive any mode without knowing its
/// types.
pub(crate) trait ErasedState: Send {
    fn step(&mut self, engines: &mut EngineCache, samples: &[Complex64]);
    fn columns(&self) -> usize;
    fn finalize(self: Box<Self>) -> (ModeOutput, Vec<TrackEvent>);
}

/// A mode paired with one session's state.
struct BoundState<M: SensingMode> {
    mode: Arc<M>,
    state: M::State,
}

impl<M: SensingMode> ErasedState for BoundState<M> {
    fn step(&mut self, engines: &mut EngineCache, samples: &[Complex64]) {
        self.mode.step(&mut self.state, engines, samples);
    }

    fn columns(&self) -> usize {
        self.mode.columns(&self.state)
    }

    fn finalize(self: Box<Self>) -> (ModeOutput, Vec<TrackEvent>) {
        let (mut out, events) = self.mode.finalize(self.state);
        // The registry identity is authoritative: a mode whose finalize
        // stamped a different (or typoed) tag cannot make the output's
        // tag disagree with the session's mode.
        out.tag = self.mode.tag();
        (out, events)
    }
}

/// Object-safe mode surface (tag + open), behind [`ModeRef`].
trait ErasedMode: Send + Sync {
    fn tag(&self) -> &'static str;
    fn open(&self, dev: &WiViDevice, eff: &WiViConfig) -> Box<dyn ErasedState>;
}

struct Erased<M: SensingMode>(Arc<M>);

impl<M: SensingMode> ErasedMode for Erased<M> {
    fn tag(&self) -> &'static str {
        self.0.tag()
    }

    fn open(&self, dev: &WiViDevice, eff: &WiViConfig) -> Box<dyn ErasedState> {
        Box::new(BoundState {
            mode: Arc::clone(&self.0),
            state: self.0.open(dev, eff),
        })
    }
}

/// A cheap, cloneable, type-erased handle to a [`SensingMode`] — what a
/// [`SessionSpec`](crate::SessionSpec) carries and shards dispatch
/// through. Obtain one from a mode value (`ModeRef::new(Track)`, or any
/// `impl Into<ModeRef>` parameter) or from a [`ModeRegistry`] by tag.
#[derive(Clone)]
pub struct ModeRef(Arc<dyn ErasedMode>);

impl ModeRef {
    /// Erases a mode into a shareable handle.
    pub fn new<M: SensingMode>(mode: M) -> Self {
        Self(Arc::new(Erased(Arc::new(mode))))
    }

    /// The mode's stable tag.
    pub fn tag(&self) -> &'static str {
        self.0.tag()
    }

    /// Opens per-session state (crate-internal: shards call this).
    pub(crate) fn open_state(&self, dev: &WiViDevice, eff: &WiViConfig) -> Box<dyn ErasedState> {
        self.0.open(dev, eff)
    }
}

impl<M: SensingMode> From<M> for ModeRef {
    fn from(mode: M) -> Self {
        ModeRef::new(mode)
    }
}

/// Two refs are equal when they name the same mode (same tag) — tags
/// are the registry's identity, unique by construction.
impl PartialEq for ModeRef {
    fn eq(&self, other: &Self) -> bool {
        self.tag() == other.tag()
    }
}

impl Eq for ModeRef {}

impl std::fmt::Debug for ModeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModeRef({})", self.tag())
    }
}

/// The table of registered sensing modes: tag → mode, in registration
/// order. [`Self::builtin`] holds the device's five native read-outs;
/// downstream crates [`register`](Self::register) their own on top —
/// the registry is the *one* place the mode set is spelled out, and the
/// registry-exhaustiveness test serves one session per entry so a mode
/// cannot exist half-wired.
#[derive(Clone, Default)]
pub struct ModeRegistry {
    modes: Vec<ModeRef>,
}

impl ModeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in mode table: `track`, `track_targets`, `count`,
    /// `gestures`, `image` — in that (stable) order.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        reg.register(crate::modes::Track);
        reg.register(crate::modes::TrackTargets);
        reg.register(crate::modes::Count);
        reg.register(crate::modes::Gestures);
        reg.register(crate::modes::Image);
        reg
    }

    /// Registers a mode, returning its handle.
    ///
    /// # Panics
    /// Panics if a mode with the same tag is already registered.
    pub fn register<M: SensingMode>(&mut self, mode: M) -> ModeRef {
        self.register_ref(ModeRef::new(mode))
    }

    /// Registers an already-erased mode handle.
    ///
    /// # Panics
    /// Panics if a mode with the same tag is already registered.
    pub fn register_ref(&mut self, mode: ModeRef) -> ModeRef {
        assert!(
            self.get(mode.tag()).is_none(),
            "mode '{}' already registered",
            mode.tag()
        );
        self.modes.push(mode.clone());
        mode
    }

    /// The mode registered under `tag`, if any — the inverse of
    /// [`ModeRef::tag`].
    pub fn get(&self, tag: &str) -> Option<ModeRef> {
        self.modes.iter().find(|m| m.tag() == tag).cloned()
    }

    /// All registered modes, in registration order.
    pub fn modes(&self) -> &[ModeRef] {
        &self.modes
    }

    /// All registered tags, in registration order.
    pub fn tags(&self) -> Vec<&'static str> {
        self.modes.iter().map(|m| m.tag()).collect()
    }

    /// Number of registered modes.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// `true` if no mode is registered.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_five_modes_in_order() {
        let reg = ModeRegistry::builtin();
        assert_eq!(
            reg.tags(),
            vec!["track", "track_targets", "count", "gestures", "image"]
        );
        for tag in reg.tags() {
            let m = reg.get(tag).expect("registered");
            assert_eq!(m.tag(), tag);
        }
        assert!(reg.get("no_such_mode").is_none());
        assert_eq!(reg.len(), 5);
        assert!(!reg.is_empty());
    }

    #[test]
    fn mode_refs_compare_by_tag() {
        let a = ModeRef::new(crate::modes::Track);
        let b = ModeRegistry::builtin().get("track").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, ModeRef::new(crate::modes::Count));
        assert_eq!(format!("{a:?}"), "ModeRef(track)");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_tags_are_rejected() {
        let mut reg = ModeRegistry::builtin();
        reg.register(crate::modes::Track);
    }

    #[test]
    fn mode_output_downcasts() {
        let out = ModeOutput::new("count", Some(1.5f64));
        assert_eq!(out.tag(), "count");
        assert!(out.is::<Option<f64>>());
        assert_eq!(*out.expect::<Option<f64>>(), Some(1.5));
        assert!(out.get::<String>().is_none());
        assert_eq!(format!("{out:?}"), "ModeOutput(count)");
    }

    #[test]
    #[should_panic(expected = "output is not a")]
    fn mode_output_expect_panics_on_wrong_type() {
        let out = ModeOutput::new("count", 1.5f64);
        let _ = out.expect::<String>();
    }
}
