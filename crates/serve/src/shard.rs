//! Worker shards: each owns a set of live sessions and one set of
//! per-window engines.
//!
//! A shard is a plain `std::thread` (the same scoped-worker machinery the
//! bench runner uses, grown a command queue) looping over rounds: drain
//! the bounded command queue, then advance every live session by one
//! fixed-size batch, in ascending session-id order. Ordering by id — not
//! by arrival — plus the fact that sessions share no mutable state makes
//! every session's output independent of submission order and shard
//! count; the id order exists so the *wall-clock interleave* is
//! reproducible too, not just the outputs.
//!
//! With `workers_per_shard > 1` (see [`crate::ServeConfig`]) the shard
//! becomes a coordinator: each round it round-robin partitions the
//! id-sorted live sessions across that many scoped worker threads, each
//! owning a private engine cache and scratch. Outputs stay bit-identical
//! for every worker count — parallelism only changes wall-clock.
//!
//! The PR-1 zero-allocation design extends here from per-device to
//! per-shard: all sessions on a shard that share a configuration share
//! one resident engine — one steering table, one correlation matrix,
//! one eigendecomposition workspace — borrowed per batch through the
//! `Shared*` streaming stages. The engines live in the shard's keyed
//! [`EngineCache`], a registry open to any
//! engine type (see [`wivi_core::ShardEngine`]): a shard serving N
//! same-config sessions holds one engine, not N, and a downstream
//! sensing mode's engines are hosted exactly like the built-ins'.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use wivi_core::EngineCache;
use wivi_num::Complex64;

use crate::session::{ActiveSession, SessionId, SessionOutput, SessionSpec};

/// A command routed to a shard.
pub(crate) enum Command {
    /// Admit a session (boxed: a spec carries a full device
    /// configuration plus scene and mode handles, and moves through
    /// queues and `try_open` round trips).
    Open(Box<SessionSpec>),
    /// Close a session early: it drains at its next batch boundary.
    Close(SessionId),
}

/// The bounded per-shard work queue. Producers (the engine's `open`)
/// block on [`Self::push_blocking`] while the queue is at capacity —
/// that is the engine's backpressure; the shard thread blocks on
/// [`Self::take`] only when it has no live sessions to advance.
pub(crate) struct ShardChannel {
    state: Mutex<QueueState>,
    /// Signals producers: space freed.
    can_push: Condvar,
    /// Signals the shard thread: work arrived or shutdown.
    has_work: Condvar,
}

struct QueueState {
    pending: VecDeque<Command>,
    capacity: usize,
    shut: bool,
}

impl ShardChannel {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(capacity),
                capacity,
                shut: false,
            }),
            can_push: Condvar::new(),
            has_work: Condvar::new(),
        }
    }

    /// Enqueues, blocking while the queue is full (backpressure).
    ///
    /// # Panics
    /// Panics if the channel is already shut down.
    pub(crate) fn push_blocking(&self, cmd: Command) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        while st.pending.len() >= st.capacity {
            assert!(!st.shut, "shard queue shut down with producers waiting");
            st = self.can_push.wait(st).expect("shard queue poisoned");
        }
        assert!(!st.shut, "cannot submit to a finished engine");
        st.pending.push_back(cmd);
        self.has_work.notify_one();
    }

    /// Enqueues without blocking; hands the command back if the queue is
    /// full.
    pub(crate) fn try_push(&self, cmd: Command) -> Result<(), Command> {
        let mut st = self.state.lock().expect("shard queue poisoned");
        assert!(!st.shut, "cannot submit to a finished engine");
        if st.pending.len() >= st.capacity {
            return Err(cmd);
        }
        st.pending.push_back(cmd);
        self.has_work.notify_one();
        Ok(())
    }

    /// Queued commands right now (for backpressure introspection).
    pub(crate) fn queue_len(&self) -> usize {
        self.state
            .lock()
            .expect("shard queue poisoned")
            .pending
            .len()
    }

    /// Marks the stream of commands complete: the shard finishes its
    /// live sessions and exits.
    pub(crate) fn shutdown(&self) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        st.shut = true;
        self.has_work.notify_all();
        self.can_push.notify_all();
    }

    /// Drains all queued commands. Blocks until work or shutdown when
    /// `block` (the shard is otherwise idle); returns immediately when
    /// not. The second value is the shutdown flag.
    fn take(&self, block: bool) -> (Vec<Command>, bool) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        if block {
            while st.pending.is_empty() && !st.shut {
                st = self.has_work.wait(st).expect("shard queue poisoned");
            }
        }
        let cmds: Vec<Command> = st.pending.drain(..).collect();
        let shut = st.shut;
        drop(st);
        if !cmds.is_empty() {
            self.can_push.notify_all();
        }
        (cmds, shut)
    }
}

/// Serving telemetry of one shard.
#[derive(Clone, Debug)]
pub struct ShardStats {
    pub shard: usize,
    /// Worker threads this shard advanced sessions on.
    pub workers: usize,
    /// Sessions this shard served to completion.
    pub sessions: usize,
    /// Batch steps executed.
    pub batches: usize,
    /// CPU-seconds spent computing (calibration + batch steps), summed
    /// across the shard's workers — may exceed `alive_s` when
    /// `workers > 1`.
    pub busy_s: f64,
    /// Wall-clock from shard start to shard exit, seconds.
    pub alive_s: f64,
    /// Every batch step's wall-clock, seconds (unsorted; percentile
    /// helpers sort a copy).
    pub batch_latencies_s: Vec<f64>,
    /// Distinct engines resident at exit, summed over workers (the
    /// per-worker sharing degree: N same-config sessions on one worker
    /// still mean one engine).
    pub engines: usize,
}

impl ShardStats {
    /// Busy fraction of the shard's worker threads over the shard's
    /// lifetime: `busy_s / (alive_s × workers)` — per-core occupancy,
    /// not a single-thread duty cycle.
    pub fn utilization(&self) -> f64 {
        let capacity = self.alive_s * self.workers.max(1) as f64;
        if capacity > 0.0 {
            (self.busy_s / capacity).min(1.0)
        } else {
            0.0
        }
    }
}

/// What a shard thread returns when it exits.
pub(crate) struct ShardDone {
    pub(crate) outputs: Vec<SessionOutput>,
    pub(crate) stats: ShardStats,
}

/// One worker thread's private compute state: its own engine cache and
/// per-batch scratch, so workers of one shard share no mutable state.
struct WorkerState {
    engines: EngineCache,
    scratch: Vec<Complex64>,
}

/// The shard thread body: rounds of (drain commands → advance each live
/// session one batch → drain finished sessions), until shutdown and
/// empty. With `workers > 1` each round's live sessions are round-robin
/// partitioned (by position in the id-sorted list) across that many
/// scoped threads; outputs are bit-identical for every worker count
/// because sessions own all their streaming state and the per-worker
/// engines hold no cross-window state.
pub(crate) fn run_shard(
    shard_idx: usize,
    chan: std::sync::Arc<ShardChannel>,
    batch_len: usize,
    workers: usize,
) -> ShardDone {
    assert!(workers >= 1, "a shard needs at least one worker");
    let started = Instant::now();
    let mut worker_states: Vec<WorkerState> = (0..workers)
        .map(|_| WorkerState {
            engines: EngineCache::new(),
            scratch: Vec::with_capacity(batch_len),
        })
        .collect();
    let mut active: Vec<ActiveSession> = Vec::new();
    let mut outputs: Vec<SessionOutput> = Vec::new();
    let mut batch_latencies_s: Vec<f64> = Vec::new();
    let mut busy_s = 0.0f64;

    loop {
        let (cmds, shut) = chan.take(active.is_empty());
        for cmd in cmds {
            match cmd {
                Command::Open(spec) => {
                    let t0 = Instant::now();
                    let session = ActiveSession::open(*spec);
                    busy_s += t0.elapsed().as_secs_f64();
                    active.push(session);
                    // Rounds advance sessions in ascending id order so
                    // the interleave is submission-order-independent.
                    active.sort_by_key(|s| s.id);
                }
                Command::Close(id) => {
                    if let Some(s) = active.iter_mut().find(|s| s.id == id) {
                        s.closing = true;
                    }
                }
            }
        }
        if active.is_empty() {
            if shut {
                break;
            }
            continue;
        }
        if workers == 1 || active.len() == 1 {
            let ws = &mut worker_states[0];
            for s in active.iter_mut() {
                if s.done_streaming() {
                    continue;
                }
                let t0 = Instant::now();
                s.step(&mut ws.engines, batch_len, &mut ws.scratch);
                let dt = t0.elapsed().as_secs_f64();
                s.stream_s += dt;
                busy_s += dt;
                batch_latencies_s.push(dt);
            }
        } else {
            // Round-robin partition of the id-sorted list: worker w
            // advances sessions at positions w, w + workers, ... —
            // stable while the active prefix is stable, so a session
            // usually keeps hitting the same worker's warm engine
            // cache. Results merge in worker order, keeping telemetry
            // (not just outputs) schedule-independent.
            let mut parts: Vec<Vec<&mut ActiveSession>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, s) in active.iter_mut().enumerate() {
                parts[i % workers].push(s);
            }
            let results: Vec<(f64, Vec<f64>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .zip(worker_states.iter_mut())
                    .map(|(part, ws)| {
                        scope.spawn(move || {
                            let mut busy = 0.0f64;
                            let mut lats: Vec<f64> = Vec::new();
                            for s in part {
                                if s.done_streaming() {
                                    continue;
                                }
                                let t0 = Instant::now();
                                s.step(&mut ws.engines, batch_len, &mut ws.scratch);
                                let dt = t0.elapsed().as_secs_f64();
                                s.stream_s += dt;
                                busy += dt;
                                lats.push(dt);
                            }
                            (busy, lats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker thread panicked"))
                    .collect()
            });
            for (busy, lats) in results {
                busy_s += busy;
                batch_latencies_s.extend(lats);
            }
        }
        // Drain: move finished sessions out, preserving id order.
        let mut i = 0;
        while i < active.len() {
            if active[i].done_streaming() {
                let s = active.remove(i);
                outputs.push(s.finalize(shard_idx));
            } else {
                i += 1;
            }
        }
    }

    let stats = ShardStats {
        shard: shard_idx,
        workers,
        sessions: outputs.len(),
        batches: batch_latencies_s.len(),
        busy_s,
        alive_s: started.elapsed().as_secs_f64(),
        batch_latencies_s,
        engines: worker_states.iter().map(|w| w.engines.len()).sum(),
    };
    ShardDone { outputs, stats }
}
