//! Worker shards: each owns a set of live sessions and one set of
//! per-window engines.
//!
//! A shard is a plain `std::thread` (the same scoped-worker machinery the
//! bench runner uses, grown a command queue) looping over rounds: drain
//! the bounded command queue, then advance every live session by one
//! fixed-size batch, in ascending session-id order. Ordering by id — not
//! by arrival — plus the fact that sessions share no mutable state makes
//! every session's output independent of submission order and shard
//! count; the id order exists so the *wall-clock interleave* is
//! reproducible too, not just the outputs.
//!
//! With `workers_per_shard > 1` (see [`crate::ServeConfig`]) the shard
//! becomes a coordinator: each round it round-robin partitions the
//! id-sorted live sessions across that many scoped worker threads, each
//! owning a private engine cache and scratch. Outputs stay bit-identical
//! for every worker count — parallelism only changes wall-clock.
//!
//! The PR-1 zero-allocation design extends here from per-device to
//! per-shard: all sessions on a shard that share a configuration share
//! one resident engine — one steering table, one correlation matrix,
//! one eigendecomposition workspace — borrowed per batch through the
//! `Shared*` streaming stages. The engines live in the shard's keyed
//! [`EngineCache`], a registry open to any
//! engine type (see [`wivi_core::ShardEngine`]): a shard serving N
//! same-config sessions holds one engine, not N, and a downstream
//! sensing mode's engines are hosted exactly like the built-ins'.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use wivi_core::EngineCache;
use wivi_num::Complex64;
use wivi_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, WindowedCounter, WindowedHistogram,
};

use crate::session::{ActiveSession, SessionId, SessionOutput, SessionSpec};

/// A command routed to a shard.
pub(crate) enum Command {
    /// Admit a session (boxed: a spec carries a full device
    /// configuration plus scene and mode handles, and moves through
    /// queues and `try_open` round trips).
    Open(Box<SessionSpec>),
    /// Close a session early: it drains at its next batch boundary.
    Close(SessionId),
}

/// The bounded per-shard work queue. Producers (the engine's `open`)
/// block on [`Self::push_blocking`] while the queue is at capacity —
/// that is the engine's backpressure; the shard thread blocks on
/// [`Self::take`] only when it has no live sessions to advance.
pub(crate) struct ShardChannel {
    state: Mutex<QueueState>,
    /// Signals producers: space freed.
    can_push: Condvar,
    /// Signals the shard thread: work arrived or shutdown.
    has_work: Condvar,
}

struct QueueState {
    pending: VecDeque<Command>,
    capacity: usize,
    shut: bool,
}

/// The channel has been shut down: the command was not (and will never
/// be) enqueued. Returned instead of panicking so a producer racing
/// `finish()` gets a clean error and the queue mutex is never poisoned.
#[derive(Debug)]
pub(crate) struct ShutDown;

/// Why [`ShardChannel::try_push`] refused a command.
pub(crate) enum TryPushError {
    /// The queue is at capacity; the command is handed back for retry.
    Full(Command),
    /// The channel is shut down; the command can never be delivered.
    Shut,
}

impl ShardChannel {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(capacity),
                capacity,
                shut: false,
            }),
            can_push: Condvar::new(),
            has_work: Condvar::new(),
        }
    }

    /// Enqueues, blocking while the queue is full (backpressure).
    /// Returns [`ShutDown`] — instead of panicking and poisoning the
    /// mutex — if the channel shuts down while this producer waits (or
    /// already had): a connection racing `finish()` must not kill the
    /// engine.
    pub(crate) fn push_blocking(&self, cmd: Command) -> Result<(), ShutDown> {
        let mut st = self.state.lock().expect("shard queue poisoned");
        loop {
            if st.shut {
                return Err(ShutDown);
            }
            if st.pending.len() < st.capacity {
                break;
            }
            st = self.can_push.wait(st).expect("shard queue poisoned");
        }
        st.pending.push_back(cmd);
        self.has_work.notify_one();
        Ok(())
    }

    /// Enqueues without blocking; hands the command back if the queue is
    /// full, and reports shutdown as an error rather than a panic.
    pub(crate) fn try_push(&self, cmd: Command) -> Result<(), TryPushError> {
        let mut st = self.state.lock().expect("shard queue poisoned");
        if st.shut {
            return Err(TryPushError::Shut);
        }
        if st.pending.len() >= st.capacity {
            return Err(TryPushError::Full(cmd));
        }
        st.pending.push_back(cmd);
        self.has_work.notify_one();
        Ok(())
    }

    /// Queued commands right now (for backpressure introspection).
    pub(crate) fn queue_len(&self) -> usize {
        self.state
            .lock()
            .expect("shard queue poisoned")
            .pending
            .len()
    }

    /// Marks the stream of commands complete: the shard finishes its
    /// live sessions and exits.
    pub(crate) fn shutdown(&self) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        st.shut = true;
        self.has_work.notify_all();
        self.can_push.notify_all();
    }

    /// Drains all queued commands. Blocks until work or shutdown when
    /// `block` (the shard is otherwise idle); returns immediately when
    /// not. The second value is the shutdown flag.
    fn take(&self, block: bool) -> (Vec<Command>, bool) {
        let mut st = self.state.lock().expect("shard queue poisoned");
        if block {
            while st.pending.is_empty() && !st.shut {
                st = self.has_work.wait(st).expect("shard queue poisoned");
            }
        }
        let cmds: Vec<Command> = st.pending.drain(..).collect();
        let shut = st.shut;
        drop(st);
        if !cmds.is_empty() {
            self.can_push.notify_all();
        }
        (cmds, shut)
    }
}

/// The obs-registry handles one shard records its serving telemetry
/// into: always on (they replaced the hand-threaded `ShardStats`
/// plumbing the bench suite reads with `WIVI_OBS` off too), and shared
/// by value between the shard's workers and the engine — metrics are
/// `Arc`-backed atomics, so workers record *directly* and there is no
/// end-of-round merge to get wrong.
#[derive(Clone)]
pub(crate) struct ShardMetrics {
    pub(crate) shard: usize,
    pub(crate) workers: usize,
    /// Sessions served to completion.
    sessions: Counter,
    /// CPU-nanoseconds computing (calibration + batch steps), summed
    /// across workers.
    busy_ns: Counter,
    /// Wall-clock nanoseconds from shard start to exit.
    alive_ns: Counter,
    /// Distinct engines resident at exit, summed over workers.
    engines: Gauge,
    /// Per-batch processing wall-clock, nanoseconds.
    batch_latency_ns: Histogram,
    /// Rolling view over `batch_latency_ns` (~1 s ticks): what the
    /// `/metrics` rolling p50/p99 lines read. `Arc`: the window's tick
    /// ring is shared between the shard's workers and the engine.
    batch_window: Arc<WindowedHistogram>,
    /// Engine-wide SLO accounting the shard's workers tally into after
    /// every batch step.
    pub(crate) slo: SloMetrics,
}

impl ShardMetrics {
    /// Registers (or re-attaches to) shard `shard`'s metrics in `reg`.
    pub(crate) fn register(reg: &Registry, shard: usize, workers: usize, slo: SloMetrics) -> Self {
        let name = |metric: &str| format!("serve.shard{shard}.{metric}");
        let batch_latency_ns = reg.histogram(&name("batch_latency_ns"));
        Self {
            shard,
            workers,
            sessions: reg.counter(&name("sessions")),
            busy_ns: reg.counter(&name("busy_ns")),
            alive_ns: reg.counter(&name("alive_ns")),
            engines: reg.gauge(&name("engines")),
            batch_window: Arc::new(WindowedHistogram::new(batch_latency_ns.clone())),
            batch_latency_ns,
            slo,
        }
    }

    #[inline]
    fn record_step(&self, d: std::time::Duration) {
        self.busy_ns
            .add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        self.batch_latency_ns.record_duration(d);
        self.batch_window.maybe_tick();
    }

    /// The rolling batch-latency view over the trailing `window_ns`.
    pub(crate) fn rolling_batch(&self, window_ns: u64) -> HistogramSnapshot {
        self.batch_window.rolling(window_ns)
    }

    /// The shard's current telemetry as one owned row.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        let batch_latency_ns = self.batch_latency_ns.snapshot();
        ShardSnapshot {
            shard: self.shard,
            workers: self.workers,
            sessions: self.sessions.value() as usize,
            batches: batch_latency_ns.count as usize,
            busy_s: self.busy_ns.value() as f64 / 1e9,
            alive_s: self.alive_ns.value() as f64 / 1e9,
            engines: self.engines.value() as usize,
            batch_latency_ns,
        }
    }
}

/// Serving telemetry of one shard, snapshotted from the obs registry.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    pub shard: usize,
    /// Worker threads this shard advanced sessions on.
    pub workers: usize,
    /// Sessions this shard served to completion.
    pub sessions: usize,
    /// Batch steps executed (the latency histogram's sample count).
    pub batches: usize,
    /// CPU-seconds spent computing (calibration + batch steps), summed
    /// across the shard's workers — may exceed `alive_s` when
    /// `workers > 1`.
    pub busy_s: f64,
    /// Wall-clock from shard start to shard exit, seconds.
    pub alive_s: f64,
    /// Distinct engines resident at exit, summed over workers (the
    /// per-worker sharing degree: N same-config sessions on one worker
    /// still mean one engine).
    pub engines: usize,
    /// Per-batch processing latency, nanoseconds — the mergeable
    /// histogram that replaced the raw latency vector.
    pub batch_latency_ns: HistogramSnapshot,
}

impl ShardSnapshot {
    /// Busy fraction of the shard's worker threads over the shard's
    /// lifetime: `busy_s / (alive_s × workers)` — per-core occupancy,
    /// not a single-thread duty cycle.
    pub fn utilization(&self) -> f64 {
        let capacity = self.alive_s * self.workers.max(1) as f64;
        if capacity > 0.0 {
            (self.busy_s / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// The `p`-th percentile (0–100) of this shard's batch latency,
    /// seconds.
    pub fn batch_latency_percentile_s(&self, p: f64) -> f64 {
        self.batch_latency_ns.quantile(p) / 1e9
    }
}

/// The former name of [`ShardSnapshot`], kept for downstream callers.
#[deprecated(
    note = "renamed to ShardSnapshot; per-batch latencies are an obs histogram, not a raw vector"
)]
pub type ShardStats = ShardSnapshot;

/// Engine-wide SLO accounting against the serving hop budget (the
/// paper's 400 ms end-to-end window budget by default): every batch
/// window is tallied under/over, and a session's *first* breach dumps
/// the span flight recorder into the bounded incident buffer
/// ([`wivi_obs::capture_incident`]). Registered once per engine under
/// `serve.slo.*`; cloned into every shard's [`ShardMetrics`] so the
/// `Arc`-backed rolling windows share one tick ring.
#[derive(Clone)]
pub(crate) struct SloMetrics {
    /// The hop budget one batch window is held to, nanoseconds.
    pub(crate) budget_ns: u64,
    /// All batch windows measured (`serve.slo.windows`), with a rolling
    /// view for burn-rate-over-the-last-minute readouts.
    windows: Arc<WindowedCounter>,
    /// Windows over budget (`serve.slo.windows_over`).
    windows_over: Arc<WindowedCounter>,
    /// Sessions that breached at least once
    /// (`serve.slo.breached_sessions`).
    breached_sessions: Counter,
    /// Worst window seen, ns (`serve.slo.worst_ns`).
    worst: Gauge,
}

impl SloMetrics {
    /// Registers the engine-wide `serve.slo.*` metrics in `reg`.
    pub(crate) fn register(reg: &Registry, budget_ns: u64) -> Self {
        Self {
            budget_ns,
            windows: Arc::new(WindowedCounter::new(reg.counter("serve.slo.windows"))),
            windows_over: Arc::new(WindowedCounter::new(reg.counter("serve.slo.windows_over"))),
            breached_sessions: reg.counter("serve.slo.breached_sessions"),
            worst: reg.gauge("serve.slo.worst_ns"),
        }
    }

    /// Tallies one batch window of `d_ns` for session `s`. On the
    /// session's first breach, bumps the breach counter and captures a
    /// flight-recorder incident carrying the session's trace id.
    fn note_step(&self, s: &mut ActiveSession, d_ns: u64) {
        self.windows.counter().inc();
        // Worst window over ALL measured windows (matching the
        // SloSummary docs), breached or not; atomic max so concurrent
        // shard workers cannot lose a larger value.
        self.worst.set_max(d_ns as f64);
        if s.slo.note(d_ns, self.budget_ns) {
            self.windows_over.counter().inc();
            if s.slo.over == 1 {
                self.breached_sessions.inc();
                wivi_obs::capture_incident("slo.hop_budget", s.id, s.trace, d_ns);
            }
        }
        self.windows.maybe_tick();
        self.windows_over.maybe_tick();
    }

    /// Rolling `(windows, windows_over)` counts over the trailing
    /// `window_ns`.
    pub(crate) fn rolling(&self, window_ns: u64) -> (u64, u64) {
        (
            self.windows.rolling(window_ns),
            self.windows_over.rolling(window_ns),
        )
    }

    /// The cumulative aggregate, as surfaced in
    /// [`ServeSnapshot`](crate::ServeSnapshot).
    pub(crate) fn summary(&self) -> SloSummary {
        SloSummary {
            budget_ns: self.budget_ns,
            windows: self.windows.counter().value(),
            windows_over: self.windows_over.counter().value(),
            breached_sessions: self.breached_sessions.value(),
            worst_ns: self.worst.value() as u64,
        }
    }
}

/// The engine's SLO accounting, aggregated: how the serving run did
/// against its hop budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloSummary {
    /// The budget each batch window was held to, nanoseconds.
    pub budget_ns: u64,
    /// Batch windows measured.
    pub windows: u64,
    /// Windows that went over budget.
    pub windows_over: u64,
    /// Sessions that breached at least once (each triggered one
    /// flight-recorder incident).
    pub breached_sessions: u64,
    /// The worst window seen, nanoseconds.
    pub worst_ns: u64,
}

impl SloSummary {
    /// Fraction of measured windows that went over budget (0 when
    /// nothing was measured).
    pub fn burn_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.windows_over as f64 / self.windows as f64
        }
    }
}

/// One worker thread's private compute state: its own engine cache and
/// per-batch scratch, so workers of one shard share no mutable state.
struct WorkerState {
    engines: EngineCache,
    scratch: Vec<Complex64>,
}

/// The shard thread body: rounds of (drain commands → advance each live
/// session one batch → drain finished sessions), until shutdown and
/// empty. With `workers > 1` each round's live sessions are round-robin
/// partitioned (by position in the id-sorted list) across that many
/// scoped threads; outputs are bit-identical for every worker count
/// because sessions own all their streaming state and the per-worker
/// engines hold no cross-window state.
pub(crate) fn run_shard(
    shard_idx: usize,
    chan: std::sync::Arc<ShardChannel>,
    batch_len: usize,
    metrics: ShardMetrics,
    completions: Option<crate::engine::CompletionQueue>,
) -> Vec<SessionOutput> {
    let workers = metrics.workers;
    assert!(workers >= 1, "a shard needs at least one worker");
    let started = Instant::now();
    let mut worker_states: Vec<WorkerState> = (0..workers)
        .map(|_| WorkerState {
            engines: EngineCache::new(),
            scratch: Vec::with_capacity(batch_len),
        })
        .collect();
    let mut active: Vec<ActiveSession> = Vec::new();
    let mut outputs: Vec<SessionOutput> = Vec::new();
    // Reused across rounds by the finished-session partition pass, so
    // draining allocates only while the live set is still growing.
    let mut keep: Vec<ActiveSession> = Vec::new();

    loop {
        let (cmds, shut) = chan.take(active.is_empty());
        for cmd in cmds {
            match cmd {
                Command::Open(spec) => {
                    let t0 = Instant::now();
                    let session = ActiveSession::open(*spec);
                    metrics
                        .busy_ns
                        .add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    active.push(session);
                    // Rounds advance sessions in ascending id order so
                    // the interleave is submission-order-independent.
                    active.sort_by_key(|s| s.id);
                }
                Command::Close(id) => {
                    wivi_obs::event("session.close", id);
                    if let Some(s) = active.iter_mut().find(|s| s.id == id) {
                        s.closing = true;
                    }
                }
            }
        }
        if active.is_empty() {
            if shut {
                break;
            }
            continue;
        }
        if workers == 1 || active.len() == 1 {
            let ws = &mut worker_states[0];
            for s in active.iter_mut() {
                if s.done_streaming() {
                    continue;
                }
                let t0 = Instant::now();
                s.step(&mut ws.engines, batch_len, &mut ws.scratch);
                let d = t0.elapsed();
                s.stream_s += d.as_secs_f64();
                metrics.record_step(d);
                metrics
                    .slo
                    .note_step(s, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
            }
        } else {
            // Round-robin partition of the id-sorted list: worker w
            // advances sessions at positions w, w + workers, ... —
            // stable while the active prefix is stable, so a session
            // usually keeps hitting the same worker's warm engine
            // cache. Workers record telemetry straight into the shared
            // metric cells; histogram merging is order-invariant by
            // construction, so telemetry stays schedule-independent
            // without the old end-of-round merge in worker order.
            let mut parts: Vec<Vec<&mut ActiveSession>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, s) in active.iter_mut().enumerate() {
                parts[i % workers].push(s);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .zip(worker_states.iter_mut())
                    .map(|(part, ws)| {
                        let metrics = &metrics;
                        scope.spawn(move || {
                            for s in part {
                                if s.done_streaming() {
                                    continue;
                                }
                                let t0 = Instant::now();
                                s.step(&mut ws.engines, batch_len, &mut ws.scratch);
                                let d = t0.elapsed();
                                s.stream_s += d.as_secs_f64();
                                metrics.record_step(d);
                                metrics
                                    .slo
                                    .note_step(s, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("shard worker thread panicked");
                }
            });
        }
        // Drain: move finished sessions out in a single order-preserving
        // partition pass (the old `remove(i)`-in-a-loop was O(n²) per
        // round at wire-front session counts). `keep` is reused, so the
        // common all-still-streaming round does no work at all.
        if active.iter().any(ActiveSession::done_streaming) {
            for s in active.drain(..) {
                if s.done_streaming() {
                    let out = s.finalize(shard_idx);
                    metrics.sessions.inc();
                    if let Some(q) = &completions {
                        q.push(out.clone());
                    }
                    outputs.push(out);
                } else {
                    keep.push(s);
                }
            }
            std::mem::swap(&mut active, &mut keep);
        }
    }

    metrics
        .engines
        .set(worker_states.iter().map(|w| w.engines.len()).sum::<usize>() as f64);
    metrics
        .alive_ns
        .add(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn close_cmd(id: u64) -> Command {
        Command::Close(id)
    }

    /// Regression (PR 8): a producer blocked in `push_blocking` while
    /// the channel shuts down must get a clean `ShutDown`, not an
    /// assert that poisons the mutex — the exact race a networked
    /// client opening against a finishing engine hits.
    #[test]
    fn blocked_push_gets_shutdown_error_without_poisoning() {
        let chan = Arc::new(ShardChannel::new(1));
        chan.push_blocking(close_cmd(0)).expect("first push fits");

        let producer = {
            let chan = Arc::clone(&chan);
            std::thread::spawn(move || chan.push_blocking(close_cmd(1)))
        };
        // Let the producer reach the full-queue wait, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(50));
        chan.shutdown();
        let res = producer.join().expect("producer must not panic");
        assert!(res.is_err(), "blocked push must observe the shutdown");

        // The mutex survived: the channel still answers, and the one
        // command enqueued before shutdown is still there (drainable).
        assert_eq!(chan.queue_len(), 1, "pre-shutdown command lost");
        let (cmds, shut) = chan.take(false);
        assert_eq!(cmds.len(), 1);
        assert!(shut);
    }

    /// Pushes after shutdown fail cleanly on both entry points.
    #[test]
    fn push_after_shutdown_is_an_error_not_a_panic() {
        let chan = ShardChannel::new(4);
        chan.shutdown();
        assert!(chan.push_blocking(close_cmd(1)).is_err());
        assert!(matches!(
            chan.try_push(close_cmd(2)),
            Err(TryPushError::Shut)
        ));
        assert_eq!(chan.queue_len(), 0);
    }

    /// No lost commands under a storm of producers racing shutdown:
    /// every `Ok` push is delivered exactly once, every failed push is
    /// absent, and nobody panics.
    #[test]
    fn racing_producers_lose_nothing_and_never_poison() {
        for trial in 0..8u64 {
            let chan = Arc::new(ShardChannel::new(2));
            let producers: Vec<_> = (0..4u64)
                .map(|p| {
                    let chan = Arc::clone(&chan);
                    std::thread::spawn(move || {
                        let mut delivered = Vec::new();
                        for k in 0..16u64 {
                            let id = p * 1000 + k;
                            if chan.push_blocking(Command::Close(id)).is_ok() {
                                delivered.push(id);
                            } else {
                                // Shut: every later push must fail too.
                                assert!(chan.push_blocking(Command::Close(id)).is_err());
                                break;
                            }
                        }
                        delivered
                    })
                })
                .collect();

            // A consumer draining concurrently, then a mid-stream shutdown.
            let consumer = {
                let chan = Arc::clone(&chan);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        let (cmds, shut) = chan.take(true);
                        for c in cmds {
                            match c {
                                Command::Close(id) => seen.push(id),
                                Command::Open(_) => unreachable!(),
                            }
                        }
                        if shut {
                            // One final non-blocking sweep after the flag.
                            let (rest, _) = chan.take(false);
                            for c in rest {
                                if let Command::Close(id) = c {
                                    seen.push(id);
                                }
                            }
                            return seen;
                        }
                    }
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(1 + trial % 3));
            chan.shutdown();

            let mut delivered: Vec<u64> = producers
                .into_iter()
                .flat_map(|p| p.join().expect("producer panicked"))
                .collect();
            let mut seen = consumer.join().expect("consumer panicked");
            delivered.sort_unstable();
            seen.sort_unstable();
            assert_eq!(
                delivered, seen,
                "acknowledged pushes were lost or duplicated"
            );
        }
    }
}
