//! Sessions: what one subscriber asks the serving engine to sense.
//!
//! A [`SessionSpec`] is a self-contained description of one sensing
//! session — the scene behind the wall (owned, or shared through a
//! [`SceneHandle`] from a [`SceneStore`](wivi_rf::SceneStore)), the
//! device configuration, the deterministic seed, how long to record,
//! and which [`SensingMode`](crate::SensingMode) to run. The engine
//! routes it to a worker shard, which owns the session through its
//! lifecycle (open → stream → drain → close) and produces a
//! [`SessionOutput`].
//!
//! The per-session streaming state (`ActiveSession`, crate-private) is
//! deliberately thin: the mode's state holds only per-session data, and
//! the heavy per-window scratch (steering tables, FFT plans, the
//! eigendecomposition workspace) lives once per *shard* in the keyed
//! [`EngineCache`] and is borrowed per batch — see [`crate::shard`].

use wivi_core::{EngineCache, WiViConfig, WiViDevice};
use wivi_num::Complex64;
use wivi_rf::SceneHandle;
use wivi_track::TrackEvent;

use crate::mode::{ErasedState, ModeOutput, ModeRef};

/// Session identity. Must be unique across the engine's lifetime; ties
/// in the merged event stream break by it, and shard routing hashes it.
pub type SessionId = u64;

/// One session request, self-contained and owned (it moves to a shard
/// thread). Construct with [`SessionSpec::new`] or, field by field, with
/// [`SessionSpec::builder`].
pub struct SessionSpec {
    pub id: SessionId,
    /// The scene this session senses. A [`SceneHandle`] is a shared
    /// immutable view: fleet-style sessions observing the same room
    /// clone the handle (an `Arc` bump), not the scene. An owned
    /// [`Scene`](wivi_rf::Scene) converts implicitly.
    pub scene: SceneHandle,
    pub config: WiViConfig,
    /// Deterministic seed for the session's radio noise and trajectories.
    pub seed: u64,
    /// Recording duration, simulated seconds.
    pub duration_s: f64,
    /// Serving-clock offset of the session's start: event timestamps in
    /// the engine's merged stream are `start_s` + the session-relative
    /// window time.
    pub start_s: f64,
    /// The sensing mode to run — any registered [`SensingMode`]
    /// (built-in or downstream-defined), type-erased.
    ///
    /// [`SensingMode`]: crate::SensingMode
    pub mode: ModeRef,
    /// Request trace id linking this session's open/step/drain spans to
    /// the client-side open span (0 = untraced). Observability only:
    /// the session's outputs and events are bitwise independent of it.
    pub trace: u64,
}

impl SessionSpec {
    /// A spec starting at serving-clock zero. `scene` may be owned or a
    /// shared handle; `mode` may be a mode value (`Track`) or a
    /// [`ModeRef`] from a registry.
    pub fn new(
        id: SessionId,
        scene: impl Into<SceneHandle>,
        config: WiViConfig,
        seed: u64,
        duration_s: f64,
        mode: impl Into<ModeRef>,
    ) -> Self {
        Self {
            id,
            scene: scene.into(),
            config,
            seed,
            duration_s,
            start_s: 0.0,
            mode: mode.into(),
            trace: 0,
        }
    }

    /// Starts a field-by-field builder for session `id`.
    pub fn builder(id: SessionId) -> SessionSpecBuilder {
        SessionSpecBuilder {
            id,
            scene: None,
            config: WiViConfig::paper_default(),
            seed: 0,
            duration_s: None,
            start_s: 0.0,
            mode: None,
            trace: 0,
        }
    }
}

/// Builder for [`SessionSpec`]: scene, duration, and mode are required;
/// the configuration defaults to [`WiViConfig::paper_default`], the
/// seed to 0, and the start offset to serving-clock zero.
///
/// ```
/// use wivi_rf::{Material, Scene, SceneStore};
/// use wivi_serve::{modes::Count, SessionSpec};
///
/// let mut store = SceneStore::new();
/// let room = store.insert("lab", Scene::new(Material::HollowWall6In));
/// let spec = SessionSpec::builder(7)
///     .scene(room.clone()) // an Arc bump, not a scene copy
///     .seed(42)
///     .duration_s(4.0)
///     .start_s(1.5)
///     .mode(Count)
///     .build();
/// assert_eq!(spec.mode.tag(), "count");
/// ```
pub struct SessionSpecBuilder {
    id: SessionId,
    scene: Option<SceneHandle>,
    config: WiViConfig,
    seed: u64,
    duration_s: Option<f64>,
    start_s: f64,
    mode: Option<ModeRef>,
    trace: u64,
}

impl SessionSpecBuilder {
    /// The scene to sense — an owned [`Scene`](wivi_rf::Scene) or a
    /// shared [`SceneHandle`]. Required.
    pub fn scene(mut self, scene: impl Into<SceneHandle>) -> Self {
        self.scene = Some(scene.into());
        self
    }

    /// The device configuration (default: the paper's parameters).
    pub fn config(mut self, config: WiViConfig) -> Self {
        self.config = config;
        self
    }

    /// The deterministic seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Recording duration, simulated seconds. Required.
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = Some(duration_s);
        self
    }

    /// Serving-clock offset of the session's start (default 0).
    pub fn start_s(mut self, start_s: f64) -> Self {
        self.start_s = start_s;
        self
    }

    /// The sensing mode — a mode value or a [`ModeRef`]. Required.
    pub fn mode(mut self, mode: impl Into<ModeRef>) -> Self {
        self.mode = Some(mode.into());
        self
    }

    /// The request trace id carried into the session's spans
    /// (default 0 = untraced).
    pub fn trace(mut self, trace: u64) -> Self {
        self.trace = trace;
        self
    }

    /// Assembles the spec.
    ///
    /// # Panics
    /// Panics if the scene, duration, or mode was not set.
    pub fn build(self) -> SessionSpec {
        let id = self.id;
        SessionSpec {
            id,
            scene: self
                .scene
                .unwrap_or_else(|| panic!("session {id}: no scene set")),
            config: self.config,
            seed: self.seed,
            duration_s: self
                .duration_s
                .unwrap_or_else(|| panic!("session {id}: no duration set")),
            start_s: self.start_s,
            mode: self
                .mode
                .unwrap_or_else(|| panic!("session {id}: no mode set")),
            trace: self.trace,
        }
    }
}

/// Everything one session produced, plus serving telemetry.
#[derive(Clone, Debug)]
pub struct SessionOutput {
    pub id: SessionId,
    /// The shard that served the session.
    pub shard: usize,
    /// The tag of the mode the session ran ([`ModeRef::tag`]).
    pub mode: &'static str,
    pub start_s: f64,
    /// Channel samples requested (`duration_s` at the radio's rate).
    pub n_requested: usize,
    /// Channel samples actually streamed (< requested iff the session
    /// was closed early).
    pub n_samples: usize,
    /// Spectrogram columns (analysis windows) processed.
    pub n_columns: usize,
    /// `true` if an external `close()` cut the session short.
    pub closed_early: bool,
    /// Nulling achieved at session open, dB.
    pub nulling_db: f64,
    /// The mode's payload — downcast with [`ModeOutput::expect`] to the
    /// type the mode documents.
    pub result: ModeOutput,
    /// The session's tracker events (session-relative times, emission
    /// order), as returned by the mode's `finalize` — the one event
    /// path every mode shares; modes without an event stream return
    /// none. The engine merges these into its unified stream.
    pub events: Vec<TrackEvent>,
    /// Calibration wall-clock at open, seconds.
    pub calibrate_s: f64,
    /// Summed per-batch processing wall-clock, seconds.
    pub stream_s: f64,
}

/// A session being served by a shard: the device plus the mode's
/// type-erased streaming state.
pub(crate) struct ActiveSession {
    pub(crate) id: SessionId,
    mode: ModeRef,
    start_s: f64,
    dev: WiViDevice,
    state: Box<dyn ErasedState>,
    n_requested: usize,
    remaining: usize,
    nulling_db: f64,
    calibrate_s: f64,
    pub(crate) stream_s: f64,
    /// Set by an external close: drain at the next batch boundary.
    pub(crate) closing: bool,
    /// Request trace id carried into every lifecycle span (0 =
    /// untraced).
    pub(crate) trace: u64,
    /// Hop-budget accounting: batch windows that stayed under the SLO
    /// budget, windows that went over, and the worst window seen.
    /// Updated by the shard worker after each step.
    pub(crate) slo: SessionSlo,
}

/// Per-session hop-budget tallies against the serving SLO (the paper's
/// 400 ms end-to-end window budget by default).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SessionSlo {
    pub(crate) under: u64,
    pub(crate) over: u64,
    pub(crate) worst_ns: u64,
}

impl SessionSlo {
    /// Tallies one batch window of `d_ns` against `budget_ns`; returns
    /// `true` when this window breached the budget.
    pub(crate) fn note(&mut self, d_ns: u64, budget_ns: u64) -> bool {
        self.worst_ns = self.worst_ns.max(d_ns);
        if d_ns > budget_ns {
            self.over += 1;
            true
        } else {
            self.under += 1;
            false
        }
    }
}

impl ActiveSession {
    /// Opens the session: builds the device, calibrates (timing it), and
    /// opens the mode's streaming state against the *effective*
    /// configuration (the device derives the MUSIC noise floor from the
    /// radio), exactly as the standalone entry points do.
    pub(crate) fn open(spec: SessionSpec) -> Self {
        let _span = wivi_obs::span_traced("session.open", spec.id, spec.trace);
        let SessionSpec {
            id,
            scene,
            config,
            seed,
            duration_s,
            start_s,
            mode,
            trace,
        } = spec;
        let mut dev = WiViDevice::new(scene, config, seed);
        let t0 = std::time::Instant::now();
        let nulling_db = dev.calibrate().nulling_db();
        let calibrate_s = t0.elapsed().as_secs_f64();
        let eff = *dev.config();
        let state = mode.open_state(&dev, &eff);
        let n_requested = dev.trace_len(duration_s);
        Self {
            id,
            mode,
            start_s,
            dev,
            state,
            n_requested,
            remaining: n_requested,
            nulling_db,
            calibrate_s,
            stream_s: 0.0,
            closing: false,
            trace,
            slo: SessionSlo::default(),
        }
    }

    /// `true` once the session has nothing left to stream (exhausted or
    /// closing) and should be drained.
    pub(crate) fn done_streaming(&self) -> bool {
        self.remaining == 0 || self.closing
    }

    /// Advances the session by one batch of at most `batch_len` samples,
    /// borrowing the shard's engine cache for the per-window compute.
    /// `scratch` is the shard's reused sample buffer.
    pub(crate) fn step(
        &mut self,
        engines: &mut EngineCache,
        batch_len: usize,
        scratch: &mut Vec<Complex64>,
    ) {
        let n = batch_len.min(self.remaining);
        if n == 0 {
            return;
        }
        let _span = wivi_obs::span_traced("session.step", self.id, self.trace);
        self.dev.observe_batch_into(n, scratch);
        self.remaining -= n;
        self.state.step(engines, scratch);
    }

    /// Drains the session into its output (the close step of the
    /// lifecycle). Consumes the session; the device is dropped here.
    pub(crate) fn finalize(self, shard: usize) -> SessionOutput {
        let _span = wivi_obs::span_traced("session.drain", self.id, self.trace);
        let n_samples = self.n_requested - self.remaining;
        let closed_early = self.remaining > 0;
        let n_columns = self.state.columns();
        let (result, events) = self.state.finalize();
        SessionOutput {
            id: self.id,
            shard,
            mode: self.mode.tag(),
            start_s: self.start_s,
            n_requested: self.n_requested,
            n_samples,
            n_columns,
            closed_early,
            nulling_db: self.nulling_db,
            result,
            events,
            calibrate_s: self.calibrate_s,
            stream_s: self.stream_s,
        }
    }
}
