//! Sessions: what one subscriber asks the serving engine to sense.
//!
//! A [`SessionSpec`] is a self-contained description of one sensing
//! session — the scene behind the wall, the device configuration, the
//! deterministic seed, how long to record, and which of the device's
//! modes to run. The engine routes it to a worker shard, which owns the
//! session through its lifecycle (open → stream → drain → close) and
//! produces a [`SessionOutput`].
//!
//! The per-session streaming state (`ActiveSession`, crate-private) is
//! deliberately thin: the heavy per-window scratch (steering tables, FFT
//! plans, the eigendecomposition workspace) lives once per *shard* and
//! is borrowed per batch — see [`crate::shard`].

use wivi_core::counting::StreamingVariance;
use wivi_core::gesture::{decode, GestureDecode};
use wivi_core::{
    AngleSpectrogram, SharedStreamingBeamform, SharedStreamingMusic, WiViConfig, WiViDevice,
};
use wivi_image::{
    assert_device_geometry, nulling_tx_weight, ImageConfig, ImageFix, ImagingReport,
    PositionTracker, PositionTrackerConfig, SharedStreamingImage,
};
use wivi_num::Complex64;
use wivi_rf::Scene;
use wivi_track::{MultiTargetTracker, TrackEvent, TrackerConfig};

use crate::shard::EngineCache;

/// Session identity. Must be unique across the engine's lifetime; ties
/// in the merged event stream break by it, and shard routing hashes it.
pub type SessionId = u64;

/// Which of the device's modes a session runs. Dispatch over this enum
/// must stay exhaustive — `tests/modes.rs` serves one session per
/// [`Self::ALL`] entry so a new variant cannot silently miss an arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionMode {
    /// Mode 1, imaging: retain every spectrogram column, output the full
    /// `A′[θ, n]` (the serving twin of `WiViDevice::track_streaming`).
    Track,
    /// Mode 1, extended: multi-target tracking; outputs the
    /// [`TrackingReport`](wivi_track::TrackingReport) and contributes
    /// entry/exit/crossing/count events to the engine's unified stream
    /// (twin of `track_targets_streaming`).
    TrackTargets,
    /// Mode 1, counting: fold columns into the spatial-variance sink;
    /// nothing is retained (twin of
    /// `measure_spatial_variance_streaming`).
    Count,
    /// Mode 2: beamform incrementally, decode the gesture message when
    /// the session closes (twin of `decode_gestures_streaming`).
    Gestures,
    /// Mode 1, 2-D: backproject each imaging aperture onto the room
    /// grid, CFAR-detect per-window (x, y) fixes, and track positions
    /// (twin of `WiViDevice::image_streaming` from `wivi-image`).
    Image,
}

impl SessionMode {
    /// Every mode, in declaration order — the exhaustive-dispatch tests
    /// iterate this so a new mode cannot silently miss a match arm.
    pub const ALL: [SessionMode; 5] = [
        SessionMode::Track,
        SessionMode::TrackTargets,
        SessionMode::Count,
        SessionMode::Gestures,
        SessionMode::Image,
    ];

    /// Stable tag used in reports and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            SessionMode::Track => "track",
            SessionMode::TrackTargets => "track_targets",
            SessionMode::Count => "count",
            SessionMode::Gestures => "gestures",
            SessionMode::Image => "image",
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.tag() == tag)
    }
}

/// One session request, self-contained and owned (it moves to a shard
/// thread).
pub struct SessionSpec {
    pub id: SessionId,
    /// The scene this session senses. Each session owns its scene — no
    /// state is shared between sessions.
    pub scene: Scene,
    pub config: WiViConfig,
    /// Deterministic seed for the session's radio noise and trajectories.
    pub seed: u64,
    /// Recording duration, simulated seconds.
    pub duration_s: f64,
    /// Serving-clock offset of the session's start: event timestamps in
    /// the engine's merged stream are `start_s` + the session-relative
    /// window time.
    pub start_s: f64,
    pub mode: SessionMode,
}

impl SessionSpec {
    /// A spec starting at serving-clock zero.
    pub fn new(
        id: SessionId,
        scene: Scene,
        config: WiViConfig,
        seed: u64,
        duration_s: f64,
        mode: SessionMode,
    ) -> Self {
        Self {
            id,
            scene,
            config,
            seed,
            duration_s,
            start_s: 0.0,
            mode,
        }
    }
}

/// The mode-specific payload of a finished session. Modes whose output
/// needs at least one analysis window carry `Option`s: a zero-duration
/// (or immediately closed) session drains cleanly with `None` instead of
/// panicking.
#[derive(Clone, Debug)]
pub enum SessionResult {
    /// The retained spectrogram (`None` if no window ever completed).
    Track(Option<AngleSpectrogram>),
    /// The tracking report (empty — zero windows — if the session closed
    /// before one window).
    TrackTargets(wivi_track::TrackingReport),
    /// Mean spatial variance over the session (`None` if no window).
    Count(Option<f64>),
    /// The gesture decode (`None` if no window).
    Gestures(Option<GestureDecode>),
    /// The imaging report (empty — zero windows — if the session closed
    /// before one imaging aperture filled).
    Image(ImagingReport),
}

/// Everything one session produced, plus serving telemetry.
#[derive(Clone, Debug)]
pub struct SessionOutput {
    pub id: SessionId,
    /// The shard that served the session.
    pub shard: usize,
    pub mode: SessionMode,
    pub start_s: f64,
    /// Channel samples requested (`duration_s` at the radio's rate).
    pub n_requested: usize,
    /// Channel samples actually streamed (< requested iff the session
    /// was closed early).
    pub n_samples: usize,
    /// Spectrogram columns (analysis windows) processed.
    pub n_columns: usize,
    /// `true` if an external `close()` cut the session short.
    pub closed_early: bool,
    /// Nulling achieved at session open, dB.
    pub nulling_db: f64,
    pub result: SessionResult,
    /// The session's tracker events (session-relative times, emission
    /// order) — duplicated out of the report so the engine can merge
    /// streams without digging into mode-specific payloads. Empty for
    /// non-tracking modes.
    pub events: Vec<TrackEvent>,
    /// Calibration wall-clock at open, seconds.
    pub calibrate_s: f64,
    /// Summed per-batch processing wall-clock, seconds.
    pub stream_s: f64,
}

/// Per-mode streaming state. Variants hold only per-session data; the
/// per-window engines are borrowed from the shard's [`EngineCache`] at
/// every batch.
enum Drive {
    Track {
        stage: SharedStreamingMusic,
        rows: Vec<Vec<f64>>,
        times: Vec<f64>,
    },
    TrackTargets {
        stage: SharedStreamingMusic,
        /// Boxed: the tracker (live tracks, histories) dwarfs the other
        /// variants.
        tracker: Box<MultiTargetTracker>,
    },
    Count {
        stage: SharedStreamingMusic,
        sink: StreamingVariance,
    },
    Gestures {
        stage: SharedStreamingBeamform,
        rows: Vec<Vec<f64>>,
        times: Vec<f64>,
    },
    Image {
        stage: SharedStreamingImage,
        /// Boxed for symmetry with the angle tracker: live position
        /// tracks carry whole histories.
        tracker: Box<PositionTracker>,
        fixes: Vec<Vec<ImageFix>>,
    },
}

/// A session being served by a shard.
pub(crate) struct ActiveSession {
    pub(crate) id: SessionId,
    mode: SessionMode,
    start_s: f64,
    dev: WiViDevice,
    drive: Drive,
    n_requested: usize,
    remaining: usize,
    nulling_db: f64,
    calibrate_s: f64,
    pub(crate) stream_s: f64,
    /// Set by an external close: drain at the next batch boundary.
    pub(crate) closing: bool,
}

impl ActiveSession {
    /// Opens the session: builds the device, calibrates (timing it), and
    /// sets up the mode's streaming state. The *effective* configuration
    /// (the device derives the MUSIC noise floor from the radio) drives
    /// stage and tracker setup, exactly as the standalone entry points
    /// do.
    pub(crate) fn open(spec: SessionSpec) -> Self {
        let SessionSpec {
            id,
            scene,
            config,
            seed,
            duration_s,
            start_s,
            mode,
        } = spec;
        let mut dev = WiViDevice::new(scene, config, seed);
        let t0 = std::time::Instant::now();
        let nulling_db = dev.calibrate().nulling_db();
        let calibrate_s = t0.elapsed().as_secs_f64();
        let eff = *dev.config();
        let drive = match mode {
            SessionMode::Track => Drive::Track {
                stage: SharedStreamingMusic::new(&eff.music),
                rows: Vec::new(),
                times: Vec::new(),
            },
            SessionMode::TrackTargets => Drive::TrackTargets {
                stage: SharedStreamingMusic::new(&eff.music),
                tracker: Box::new(MultiTargetTracker::new(TrackerConfig::for_music(
                    &eff.music,
                ))),
            },
            SessionMode::Count => Drive::Count {
                stage: SharedStreamingMusic::new(&eff.music),
                sink: StreamingVariance::new(),
            },
            SessionMode::Gestures => Drive::Gestures {
                stage: SharedStreamingBeamform::new(&eff.music.isar),
                rows: Vec::new(),
                times: Vec::new(),
            },
            SessionMode::Image => {
                // The derived configuration plus the session's own
                // nulling weight — exactly what the standalone
                // `image_streaming` entry point uses (including its
                // geometry check against the session's scene).
                let icfg = ImageConfig::for_wivi(&eff);
                assert_device_geometry(&dev, &icfg);
                Drive::Image {
                    stage: SharedStreamingImage::new(&icfg, nulling_tx_weight(&dev)),
                    tracker: Box::new(PositionTracker::new(PositionTrackerConfig::for_image(
                        &icfg,
                    ))),
                    fixes: Vec::new(),
                }
            }
        };
        let n_requested = dev.trace_len(duration_s);
        Self {
            id,
            mode,
            start_s,
            dev,
            drive,
            n_requested,
            remaining: n_requested,
            nulling_db,
            calibrate_s,
            stream_s: 0.0,
            closing: false,
        }
    }

    /// `true` once the session has nothing left to stream (exhausted or
    /// closing) and should be drained.
    pub(crate) fn done_streaming(&self) -> bool {
        self.remaining == 0 || self.closing
    }

    /// Advances the session by one batch of at most `batch_len` samples,
    /// borrowing the shard's engine cache for the per-window compute.
    /// `scratch` is the shard's reused sample buffer.
    pub(crate) fn step(
        &mut self,
        engines: &mut EngineCache,
        batch_len: usize,
        scratch: &mut Vec<Complex64>,
    ) {
        let n = batch_len.min(self.remaining);
        if n == 0 {
            return;
        }
        self.dev.observe_batch_into(n, scratch);
        self.remaining -= n;
        let music = self.dev.config().music;
        match &mut self.drive {
            Drive::Track { stage, rows, times } => {
                let engine = engines.music(&music);
                stage.push_with(engine, scratch, |start, _thetas, row| {
                    rows.push(row.to_vec());
                    times.push(music.isar.window_center_s(start));
                });
            }
            Drive::TrackTargets { stage, tracker } => {
                let engine = engines.music(&music);
                stage.push_with(engine, scratch, |_start, thetas, row| {
                    tracker.push_column(thetas, row);
                });
            }
            Drive::Count { stage, sink } => {
                let engine = engines.music(&music);
                stage.push_with(engine, scratch, |_start, thetas, row| {
                    sink.push_column(thetas, row);
                });
            }
            Drive::Gestures { stage, rows, times } => {
                let engine = engines.beam(&music.isar);
                stage.push_with(engine, scratch, |start, _thetas, row| {
                    rows.push(row.to_vec());
                    times.push(music.isar.window_center_s(start));
                });
            }
            Drive::Image {
                stage,
                tracker,
                fixes,
            } => {
                let engine = engines.image(stage.cfg());
                stage.push_with(engine, scratch, |_start, frame| {
                    tracker.push_fixes(&frame);
                    fixes.push(frame);
                });
            }
        }
    }

    /// Drains the session into its output (the close step of the
    /// lifecycle). Consumes the session; the device is dropped here.
    pub(crate) fn finalize(self, shard: usize) -> SessionOutput {
        let n_samples = self.n_requested - self.remaining;
        let closed_early = self.remaining > 0;
        let gesture_cfg = self.dev.config().gesture;
        let (n_columns, result, events) = match self.drive {
            Drive::Track { stage, rows, times } => {
                let n = stage.n_columns();
                let spec = (!rows.is_empty())
                    .then(|| AngleSpectrogram::new(stage.thetas_deg().to_vec(), times, rows));
                (n, SessionResult::Track(spec), Vec::new())
            }
            Drive::TrackTargets { stage, tracker } => {
                let n = stage.n_columns();
                let report = tracker.finish();
                let events = report.events.clone();
                (n, SessionResult::TrackTargets(report), events)
            }
            Drive::Count { stage, sink } => {
                let n = stage.n_columns();
                let mean = (sink.n_columns() > 0).then(|| sink.mean());
                (n, SessionResult::Count(mean), Vec::new())
            }
            Drive::Gestures { stage, rows, times } => {
                let n = stage.n_columns();
                let decode = (!rows.is_empty()).then(|| {
                    let spec = AngleSpectrogram::new(stage.thetas_deg().to_vec(), times, rows);
                    decode(&spec, &gesture_cfg)
                });
                (n, SessionResult::Gestures(decode), Vec::new())
            }
            Drive::Image {
                stage,
                tracker,
                fixes,
            } => {
                let n = stage.n_frames();
                let report = ImagingReport::assemble(stage.cfg().grid, fixes, tracker.finish());
                (n, SessionResult::Image(report), Vec::new())
            }
        };
        SessionOutput {
            id: self.id,
            shard,
            mode: self.mode,
            start_s: self.start_s,
            n_requested: self.n_requested,
            n_samples,
            n_columns,
            closed_early,
            nulling_db: self.nulling_db,
            result,
            events,
            calibrate_s: self.calibrate_s,
            stream_s: self.stream_s,
        }
    }
}
