//! The device's five built-in sensing modes, as [`SensingMode`]
//! implementations.
//!
//! Each mode is the serving twin of one `WiViDevice` streaming entry
//! point, and each is *bitwise identical* to it: the per-session state
//! is the same `Shared*` stage the standalone path drives, the heavy
//! per-window engines come from the shard's [`EngineCache`] keyed by the
//! same configuration values, and finalization assembles the same
//! payload types. The golden traces and the determinism matrix pin
//! this.
//!
//! | mode | tag | payload ([`ModeOutput::expect`]) | twin of |
//! |------|-----|----------------------------------|---------|
//! | [`Track`] | `track` | `Option<AngleSpectrogram>` | `track_streaming` |
//! | [`TrackTargets`] | `track_targets` | `TrackingReport` | `track_targets_streaming` |
//! | [`Count`] | `count` | `Option<f64>` | `measure_spatial_variance_streaming` |
//! | [`Gestures`] | `gestures` | `Option<GestureDecode>` | `decode_gestures_streaming` |
//! | [`Image`] | `image` | `ImagingReport` | `image_streaming` |
//!
//! Modes whose output needs at least one analysis window carry
//! `Option`s: a zero-duration (or immediately closed) session drains
//! cleanly with `None` instead of panicking.

use wivi_core::counting::StreamingVariance;
use wivi_core::gesture::{decode, GestureDecoderConfig};
use wivi_core::{
    AngleSpectrogram, BeamformEngine, EngineCache, MusicConfig, MusicEngine,
    SharedStreamingBeamform, SharedStreamingMusic, WiViConfig, WiViDevice,
};
use wivi_image::{
    assert_device_geometry, nulling_tx_weight, ImageConfig, ImageFix, ImagingEngine, ImagingReport,
    PositionTracker, PositionTrackerConfig, SharedStreamingImage,
};
use wivi_num::Complex64;
use wivi_track::{MultiTargetTracker, TrackEvent, TrackerConfig};

use crate::mode::{ModeOutput, SensingMode};

/// Mode 1, imaging: retain every spectrogram column, output the full
/// `A′[θ, n]` (the serving twin of `WiViDevice::track_streaming`).
/// Payload: `Option<AngleSpectrogram>` (`None` if no window completed).
pub struct Track;

/// Per-session state of [`Track`].
pub struct TrackState {
    stage: SharedStreamingMusic,
    rows: Vec<Vec<f64>>,
    times: Vec<f64>,
    music: MusicConfig,
}

impl SensingMode for Track {
    type State = TrackState;

    fn tag(&self) -> &'static str {
        "track"
    }

    fn open(&self, _dev: &WiViDevice, eff: &WiViConfig) -> TrackState {
        TrackState {
            stage: SharedStreamingMusic::new(&eff.music),
            rows: Vec::new(),
            times: Vec::new(),
            music: eff.music,
        }
    }

    fn step(&self, state: &mut TrackState, engines: &mut EngineCache, samples: &[Complex64]) {
        let TrackState {
            stage,
            rows,
            times,
            music,
        } = state;
        let engine = engines.engine::<MusicEngine>(music);
        stage.push_with(engine, samples, |start, _thetas, row| {
            rows.push(row.to_vec());
            times.push(music.isar.window_center_s(start));
        });
    }

    fn columns(&self, state: &TrackState) -> usize {
        state.stage.n_columns()
    }

    fn finalize(&self, state: TrackState) -> (ModeOutput, Vec<TrackEvent>) {
        let TrackState {
            stage, rows, times, ..
        } = state;
        let spec = (!rows.is_empty())
            .then(|| AngleSpectrogram::new(stage.thetas_deg().to_vec(), times, rows));
        (ModeOutput::new(self.tag(), spec), Vec::new())
    }
}

/// Mode 1, extended: multi-target tracking; outputs the
/// [`TrackingReport`](wivi_track::TrackingReport) and contributes
/// entry/exit/crossing/count events to the engine's unified stream
/// (twin of `track_targets_streaming`). Payload: `TrackingReport`
/// (empty if zero windows).
pub struct TrackTargets;

/// Per-session state of [`TrackTargets`].
pub struct TrackTargetsState {
    stage: SharedStreamingMusic,
    /// Boxed: the tracker (live tracks, histories) dwarfs the stage.
    tracker: Box<MultiTargetTracker>,
    music: MusicConfig,
}

impl SensingMode for TrackTargets {
    type State = TrackTargetsState;

    fn tag(&self) -> &'static str {
        "track_targets"
    }

    fn open(&self, _dev: &WiViDevice, eff: &WiViConfig) -> TrackTargetsState {
        TrackTargetsState {
            stage: SharedStreamingMusic::new(&eff.music),
            tracker: Box::new(MultiTargetTracker::new(TrackerConfig::for_music(
                &eff.music,
            ))),
            music: eff.music,
        }
    }

    fn step(
        &self,
        state: &mut TrackTargetsState,
        engines: &mut EngineCache,
        samples: &[Complex64],
    ) {
        let TrackTargetsState {
            stage,
            tracker,
            music,
        } = state;
        let engine = engines.engine::<MusicEngine>(music);
        stage.push_with(engine, samples, |_start, thetas, row| {
            tracker.push_column(thetas, row);
        });
    }

    fn columns(&self, state: &TrackTargetsState) -> usize {
        state.stage.n_columns()
    }

    fn finalize(&self, state: TrackTargetsState) -> (ModeOutput, Vec<TrackEvent>) {
        let report = state.tracker.finish();
        let events = report.events.clone();
        (ModeOutput::new(self.tag(), report), events)
    }
}

/// Mode 1, counting: fold columns into the spatial-variance sink;
/// nothing is retained (twin of `measure_spatial_variance_streaming`).
/// Payload: `Option<f64>` (`None` if no window completed).
pub struct Count;

/// Per-session state of [`Count`].
pub struct CountState {
    stage: SharedStreamingMusic,
    sink: StreamingVariance,
    music: MusicConfig,
}

impl SensingMode for Count {
    type State = CountState;

    fn tag(&self) -> &'static str {
        "count"
    }

    fn open(&self, _dev: &WiViDevice, eff: &WiViConfig) -> CountState {
        CountState {
            stage: SharedStreamingMusic::new(&eff.music),
            sink: StreamingVariance::new(),
            music: eff.music,
        }
    }

    fn step(&self, state: &mut CountState, engines: &mut EngineCache, samples: &[Complex64]) {
        let CountState { stage, sink, music } = state;
        let engine = engines.engine::<MusicEngine>(music);
        stage.push_with(engine, samples, |_start, thetas, row| {
            sink.push_column(thetas, row);
        });
    }

    fn columns(&self, state: &CountState) -> usize {
        state.stage.n_columns()
    }

    fn finalize(&self, state: CountState) -> (ModeOutput, Vec<TrackEvent>) {
        let mean = (state.sink.n_columns() > 0).then(|| state.sink.mean());
        (ModeOutput::new(self.tag(), mean), Vec::new())
    }
}

/// Mode 2: beamform incrementally, decode the gesture message when the
/// session closes (twin of `decode_gestures_streaming`). Payload:
/// `Option<GestureDecode>` (`None` if no window completed).
pub struct Gestures;

/// Per-session state of [`Gestures`].
pub struct GesturesState {
    stage: SharedStreamingBeamform,
    rows: Vec<Vec<f64>>,
    times: Vec<f64>,
    music: MusicConfig,
    gesture: GestureDecoderConfig,
}

impl SensingMode for Gestures {
    type State = GesturesState;

    fn tag(&self) -> &'static str {
        "gestures"
    }

    fn open(&self, _dev: &WiViDevice, eff: &WiViConfig) -> GesturesState {
        GesturesState {
            stage: SharedStreamingBeamform::new(&eff.music.isar),
            rows: Vec::new(),
            times: Vec::new(),
            music: eff.music,
            gesture: eff.gesture,
        }
    }

    fn step(&self, state: &mut GesturesState, engines: &mut EngineCache, samples: &[Complex64]) {
        let GesturesState {
            stage,
            rows,
            times,
            music,
            ..
        } = state;
        let engine = engines.engine::<BeamformEngine>(&music.isar);
        stage.push_with(engine, samples, |start, _thetas, row| {
            rows.push(row.to_vec());
            times.push(music.isar.window_center_s(start));
        });
    }

    fn columns(&self, state: &GesturesState) -> usize {
        state.stage.n_columns()
    }

    fn finalize(&self, state: GesturesState) -> (ModeOutput, Vec<TrackEvent>) {
        let GesturesState {
            stage,
            rows,
            times,
            gesture,
            ..
        } = state;
        let decoded = (!rows.is_empty()).then(|| {
            let spec = AngleSpectrogram::new(stage.thetas_deg().to_vec(), times, rows);
            decode(&spec, &gesture)
        });
        (ModeOutput::new(self.tag(), decoded), Vec::new())
    }
}

/// Mode 1, 2-D: backproject each imaging aperture onto the room grid,
/// CFAR-detect per-window (x, y) fixes, and track positions (twin of
/// `WiViDevice::image_streaming` from `wivi-image`). Payload:
/// `ImagingReport` (empty if no aperture filled).
pub struct Image;

/// Per-session state of [`Image`].
pub struct ImageState {
    stage: SharedStreamingImage,
    /// Boxed for symmetry with the angle tracker: live position tracks
    /// carry whole histories.
    tracker: Box<PositionTracker>,
    fixes: Vec<Vec<ImageFix>>,
}

impl SensingMode for Image {
    type State = ImageState;

    fn tag(&self) -> &'static str {
        "image"
    }

    fn open(&self, dev: &WiViDevice, eff: &WiViConfig) -> ImageState {
        // The derived configuration plus the session's own nulling
        // weight — exactly what the standalone `image_streaming` entry
        // point uses (including its geometry check against the
        // session's scene).
        let icfg = ImageConfig::for_wivi(eff);
        assert_device_geometry(dev, &icfg);
        ImageState {
            stage: SharedStreamingImage::new(&icfg, nulling_tx_weight(dev)),
            tracker: Box::new(PositionTracker::new(PositionTrackerConfig::for_image(
                &icfg,
            ))),
            fixes: Vec::new(),
        }
    }

    fn step(&self, state: &mut ImageState, engines: &mut EngineCache, samples: &[Complex64]) {
        let ImageState {
            stage,
            tracker,
            fixes,
        } = state;
        let cfg = *stage.cfg();
        let engine = engines.engine::<ImagingEngine>(&cfg);
        stage.push_with(engine, samples, |_start, frame| {
            tracker.push_fixes(&frame);
            fixes.push(frame);
        });
    }

    fn columns(&self, state: &ImageState) -> usize {
        state.stage.n_frames()
    }

    fn finalize(&self, state: ImageState) -> (ModeOutput, Vec<TrackEvent>) {
        let ImageState {
            stage,
            tracker,
            fixes,
        } = state;
        let report = ImagingReport::assemble(stage.cfg().grid, fixes, tracker.finish());
        (ModeOutput::new(self.tag(), report), Vec::new())
    }
}
