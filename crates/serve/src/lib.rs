//! `wivi-serve` — the sharded multi-session serving engine.
//!
//! The paper's end state is a device that continuously sees through a
//! wall; the roadmap's end state is that capability *as a service* —
//! many concurrent sensing sessions multiplexed on one machine. This
//! crate is that serving layer:
//!
//! * [`SessionSpec`] — one session: a scene, a device configuration, a
//!   seed, a duration, and one of the device's modes
//!   (track / track-targets / count / gestures / image).
//! * [`ServeEngine`] — owns N worker shards; sessions route to shards by
//!   a stable hash of their id, stream incrementally in fixed-size
//!   batches, and obey the lifecycle open → stream → drain → close.
//!   Each shard's bounded command queue gives [`ServeEngine::open`]
//!   backpressure semantics; [`ServeEngine::close`] cuts a session short
//!   at its next batch boundary.
//! * [`ServeReport`] — per-session outputs plus the unified
//!   timestamp-ordered event stream merged across sessions
//!   ([`wivi_num::merge_streams`]) and per-shard utilization / batch
//!   latency telemetry.
//!
//! Shards extend the PR-1 zero-allocation design from per-device to
//! per-shard: all sessions on a shard share one set of per-window
//! engines (steering tables, correlation matrix, eig workspace) through
//! the [`wivi_core::SharedStreamingMusic`] stages, so a shard's resident
//! scratch is one engine per distinct configuration — not per session.
//!
//! **The serving contract is bitwise.** A session served by the engine
//! produces exactly the output of running it standalone through the
//! device's `*_streaming` entry points, for every shard count and
//! submission order (`tests/serving_equivalence.rs` and the determinism
//! matrix pin this). Determinism is inherited, not re-proven: sessions
//! own all their state, shared engines hold no cross-window state, and
//! the event merge is a deterministic function of the output set.
//!
//! ```no_run
//! use wivi_core::WiViConfig;
//! use wivi_rf::{Material, Scene};
//! use wivi_serve::{ServeConfig, ServeEngine, SessionMode, SessionSpec};
//!
//! let mut engine = ServeEngine::start(ServeConfig::with_shards(4));
//! for id in 0..64 {
//!     let scene = Scene::new(Material::HollowWall6In)
//!         .with_office_clutter(Scene::conference_room_small());
//!     engine.open(SessionSpec::new(
//!         id,
//!         scene,
//!         WiViConfig::paper_default(),
//!         1000 + id,
//!         4.0,
//!         SessionMode::TrackTargets,
//!     ));
//! }
//! let report = engine.finish();
//! println!(
//!     "{} sessions, {} events, {:.0} samples/sec",
//!     report.outputs.len(),
//!     report.events.len(),
//!     report.samples_per_sec()
//! );
//! ```

pub mod engine;
pub mod session;
pub mod shard;

pub use engine::{shard_of, ServeConfig, ServeEngine, ServeEvent, ServeReport};
pub use session::{SessionId, SessionMode, SessionOutput, SessionResult, SessionSpec};
pub use shard::ShardStats;
