//! `wivi-serve` — the sharded multi-session serving engine.
//!
//! The paper's end state is a device that continuously sees through a
//! wall; the roadmap's end state is that capability *as a service* —
//! many concurrent sensing sessions multiplexed on one machine. This
//! crate is that serving layer:
//!
//! * [`SensingMode`] — the pluggable read-out API: one radio, many
//!   inference heads. The five built-ins live in [`modes`]
//!   (track / track-targets / count / gestures / image); any crate can
//!   define a sixth (see the example below) — the engine dispatches
//!   through type-erased [`ModeRef`]s and never enumerates modes.
//! * [`ModeRegistry`] — the one table mapping stable tags to modes;
//!   [`ModeRegistry::builtin`] holds the native five.
//! * [`SessionSpec`] — one session: a scene (owned, or shared through a
//!   [`SceneHandle`](wivi_rf::SceneHandle) from a copy-on-write
//!   [`SceneStore`](wivi_rf::SceneStore) so fleet sessions observing the
//!   same room share one scene), a device configuration, a seed, a
//!   duration, and a mode. Built with [`SessionSpec::new`] or the
//!   [`SessionSpec::builder`].
//! * [`ServeEngine`] — owns N worker shards; sessions route to shards by
//!   a stable hash of their id, stream incrementally in fixed-size
//!   batches, and obey the lifecycle open → stream → drain → close.
//!   Each shard's bounded command queue gives [`ServeEngine::open`]
//!   backpressure semantics; [`ServeEngine::close`] cuts a session short
//!   at its next batch boundary.
//! * [`ServeReport`] — per-session outputs plus the unified
//!   timestamp-ordered event stream merged across sessions
//!   ([`wivi_num::merge_streams`]) and per-shard utilization / batch
//!   latency telemetry.
//!
//! Shards extend the PR-1 zero-allocation design from per-device to
//! per-shard: all sessions on a shard share one set of per-window
//! engines (steering tables, correlation matrix, eig workspace) through
//! the keyed [`EngineCache`] — a registry open to any engine type via
//! [`ShardEngine`], so new modes bring their own shard-resident engines.
//!
//! **The serving contract is bitwise.** A session served by the engine
//! produces exactly the output of running it standalone through the
//! device's `*_streaming` entry points, for every shard count and
//! submission order (`tests/serving_equivalence.rs` and the determinism
//! matrix pin this). Determinism is inherited, not re-proven: sessions
//! own all their state, shared engines hold no cross-window state, and
//! the event merge is a deterministic function of the output set.
//!
//! ```no_run
//! use wivi_core::WiViConfig;
//! use wivi_rf::{Material, Scene, SceneStore};
//! use wivi_serve::{modes::TrackTargets, ServeConfig, ServeEngine, SessionSpec};
//!
//! // Fleet serving: 64 sessions observing ONE shared room.
//! let mut scenes = SceneStore::new();
//! let room = scenes.insert(
//!     "conference-small",
//!     Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small()),
//! );
//! let mut engine = ServeEngine::start(ServeConfig::with_shards(4));
//! for id in 0..64 {
//!     engine
//!         .open(
//!             SessionSpec::builder(id)
//!                 .scene(room.clone()) // an Arc bump — no per-session scene copy
//!                 .config(WiViConfig::paper_default())
//!                 .seed(1000 + id)
//!                 .duration_s(4.0)
//!                 .mode(TrackTargets)
//!                 .build(),
//!         )
//!         .unwrap();
//! }
//! let report = engine.finish();
//! println!(
//!     "{} sessions, {} events, {:.0} samples/sec",
//!     report.outputs.len(),
//!     report.events.len(),
//!     report.samples_per_sec()
//! );
//! ```
//!
//! # Defining a sensing mode outside this crate
//!
//! The mode API is the extension point: implement [`SensingMode`]
//! (bringing your own shard-resident engine through [`ShardEngine`] if
//! you need heavy per-window scratch), register it, and serve sessions
//! with it — no edits to `wivi-serve`. The example below defines a toy
//! "mean residual power" mode and runs it end-to-end:
//!
//! ```
//! use wivi_core::{EngineCache, ShardEngine, WiViConfig, WiViDevice};
//! use wivi_num::Complex64;
//! use wivi_rf::{Material, Scene};
//! use wivi_serve::{
//!     ModeOutput, ModeRegistry, SensingMode, ServeConfig, ServeEngine, SessionSpec,
//! };
//! use wivi_track::TrackEvent;
//!
//! /// A (trivial) shard-resident engine: proves downstream modes can
//! /// host their own engines in the shard's keyed cache.
//! struct PowerEngine {
//!     scale: f64,
//! }
//! impl ShardEngine for PowerEngine {
//!     type Config = u32; // cached per distinct value, like any engine
//!     fn build(cfg: &u32) -> Self {
//!         PowerEngine { scale: *cfg as f64 }
//!     }
//! }
//!
//! /// The sixth mode: mean |h|² of the nulled residual, scaled.
//! struct MeanPower;
//! struct MeanPowerState {
//!     sum: f64,
//!     n: usize,
//! }
//! impl SensingMode for MeanPower {
//!     type State = MeanPowerState;
//!     fn tag(&self) -> &'static str {
//!         "mean_power"
//!     }
//!     fn open(&self, _dev: &WiViDevice, _eff: &WiViConfig) -> MeanPowerState {
//!         MeanPowerState { sum: 0.0, n: 0 }
//!     }
//!     fn step(&self, st: &mut MeanPowerState, engines: &mut EngineCache, h: &[Complex64]) {
//!         let engine = engines.engine::<PowerEngine>(&1); // shared per shard
//!         st.sum += h.iter().map(|z| z.norm_sqr() * engine.scale).sum::<f64>();
//!         st.n += h.len();
//!     }
//!     fn columns(&self, st: &MeanPowerState) -> usize {
//!         st.n // every sample is a "window" for this toy
//!     }
//!     fn finalize(&self, st: MeanPowerState) -> (ModeOutput, Vec<TrackEvent>) {
//!         let mean = (st.n > 0).then(|| st.sum / st.n as f64);
//!         (ModeOutput::new(self.tag(), mean), Vec::new())
//!     }
//! }
//!
//! // Register it next to the built-ins and serve a session with it.
//! let mut registry = ModeRegistry::builtin();
//! let mean_power = registry.register(MeanPower);
//! assert_eq!(registry.get("mean_power").unwrap().tag(), "mean_power");
//!
//! let scene = Scene::new(Material::HollowWall6In)
//!     .with_office_clutter(Scene::conference_room_small());
//! let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
//! engine
//!     .open(SessionSpec::new(
//!         1,
//!         scene,
//!         WiViConfig::fast_test(),
//!         9,
//!         0.25,
//!         mean_power,
//!     ))
//!     .unwrap();
//! let report = engine.finish();
//! let out = report.output(1).unwrap();
//! assert_eq!(out.mode, "mean_power");
//! let mean = out.result.expect::<Option<f64>>();
//! assert!(mean.unwrap() > 0.0);
//! ```

pub mod admission;
pub mod engine;
pub mod error;
pub mod mode;
pub mod modes;
pub mod net;
pub mod session;
pub mod shard;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, AdmitError, TokenSpec};
pub use engine::{
    shard_of, CompletionQueue, ServeConfig, ServeEngine, ServeEvent, ServeReport, ServeSnapshot,
    DEFAULT_SLO_BUDGET_NS,
};
pub use error::ServeError;
pub use mode::{ModeOutput, ModeRef, ModeRegistry, SensingMode};
pub use net::{WireClient, WireServer, WireServerConfig, WireServerReport};
pub use session::{SessionId, SessionOutput, SessionSpec, SessionSpecBuilder};
#[allow(deprecated)]
pub use shard::ShardStats;
pub use shard::{ShardSnapshot, SloSummary};
pub use wire::{Frame, OpenRequest, WireError, MIN_WIRE_VERSION, WIRE_VERSION};
// Re-exported so mode implementors depend only on this crate's surface.
pub use wivi_core::{EngineCache, ShardEngine};
