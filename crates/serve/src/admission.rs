//! Admission control: the gate between the wire and the shard queues.
//!
//! Every wire `OPEN` walks one fixed pipeline before it is allowed to
//! touch an engine queue:
//!
//! ```text
//! OPEN ──▶ auth ──▶ quota ──▶ placement ──▶ try_open ──▶ OPEN_OK
//!           │         │                        │
//!           ▼         ▼                        ▼
//!       ERROR(auth) ERROR(quota)       ERROR(overloaded)  ← shed
//! ```
//!
//! * **auth** — the connection's HELLO token must name a registered
//!   [`TokenSpec`] (or the server runs [`AdmissionConfig::open_access`]).
//! * **quota** — each token carries a live-session budget; a tenant
//!   cannot monopolize the engine by opening sessions faster than it
//!   drains them.
//! * **placement** — [`shard_of`](crate::shard_of): the same stable
//!   hash the in-process path uses, so a session lands on the same
//!   shard whether it arrives by wire or by function call.
//! * **shed** — admission uses [`ServeEngine::try_open`], never the
//!   blocking `open`: when the placed shard's queue is at capacity the
//!   session is *refused*, not queued on the reactor thread. An
//!   overloaded server answers `ERROR(overloaded)` in microseconds
//!   instead of stalling every other connection behind a full shard —
//!   load-shedding at the boundary is what keeps one hot tenant from
//!   freezing the listener.
//!
//! Every decision increments a counter in the engine's own metrics
//! registry (`serve.admission.*`), so the `/metrics` endpoint exposes
//! admitted/shed/rejected rates next to the shard telemetry they
//! explain.

use std::collections::HashMap;

use wivi_obs::{Counter, Gauge, Registry};

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::session::{SessionId, SessionSpec};

/// One tenant: an auth token and its live-session budget.
#[derive(Clone, Debug, PartialEq)]
pub struct TokenSpec {
    pub token: String,
    /// Maximum sessions this token may have live (admitted, not yet
    /// completed) at once.
    pub max_live: usize,
}

impl TokenSpec {
    pub fn new(token: impl Into<String>, max_live: usize) -> Self {
        Self {
            token: token.into(),
            max_live,
        }
    }
}

/// Admission policy for a [`WireServer`](crate::net::WireServer).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdmissionConfig {
    /// Registered tenants. With `open_access`, these still apply to the
    /// tokens they name; unknown tokens get an unlimited budget.
    pub tokens: Vec<TokenSpec>,
    /// Accept any token (lab / loopback deployments). Without it, a
    /// HELLO with an unregistered token is refused.
    pub open_access: bool,
}

impl AdmissionConfig {
    /// Accept everything: any token, unlimited quota. The loopback and
    /// bench default.
    pub fn open_access() -> Self {
        Self {
            tokens: Vec::new(),
            open_access: true,
        }
    }

    /// Only the given tenants, each with its own quota.
    pub fn with_tokens(tokens: Vec<TokenSpec>) -> Self {
        Self {
            tokens,
            open_access: false,
        }
    }
}

/// Why admission refused an operation. `code()` is the stable tag the
/// wire `ERROR` frame carries.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmitError {
    /// Unknown auth token.
    Auth,
    /// The token is at its live-session budget.
    Quota { live: usize, max: usize },
    /// The placed shard's queue is full: shed.
    Overloaded { shard: usize },
    /// Session id already used on this engine.
    Duplicate(SessionId),
    /// The engine is shutting down.
    ShuttingDown,
}

impl AdmitError {
    /// Stable machine tag for wire `ERROR` frames and logs.
    pub fn code(&self) -> &'static str {
        match self {
            AdmitError::Auth => "auth",
            AdmitError::Quota { .. } => "quota",
            AdmitError::Overloaded { .. } => "overloaded",
            AdmitError::Duplicate(_) => "duplicate_id",
            AdmitError::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Auth => write!(f, "unknown auth token"),
            AdmitError::Quota { live, max } => {
                write!(f, "token at live-session quota ({live}/{max})")
            }
            AdmitError::Overloaded { shard } => {
                write!(f, "shard {shard} queue full: session shed")
            }
            AdmitError::Duplicate(id) => write!(f, "duplicate session id {id}"),
            AdmitError::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// The admission gate. Owns per-token live-session accounting; all
/// engine interaction goes through [`Admission::admit`] /
/// [`Admission::session_done`].
pub struct Admission {
    cfg: AdmissionConfig,
    /// live-session count per token, and which token owns which live id
    /// (so completions can be credited back without the caller keeping
    /// book).
    live_by_token: HashMap<String, usize>,
    owner_of: HashMap<SessionId, String>,
    admitted: Counter,
    rejected_auth: Counter,
    rejected_quota: Counter,
    shed: Counter,
    live: Gauge,
}

impl Admission {
    /// Builds the gate and registers its `serve.admission.*` metrics in
    /// `registry` (normally the engine's own, so one `/metrics` scrape
    /// sees both).
    pub fn new(cfg: AdmissionConfig, registry: &Registry) -> Self {
        Self {
            cfg,
            live_by_token: HashMap::new(),
            owner_of: HashMap::new(),
            admitted: registry.counter("serve.admission.admitted"),
            rejected_auth: registry.counter("serve.admission.rejected_auth"),
            rejected_quota: registry.counter("serve.admission.rejected_quota"),
            shed: registry.counter("serve.admission.shed"),
            live: registry.gauge("serve.admission.live"),
        }
    }

    fn spec_for(&self, token: &str) -> Option<&TokenSpec> {
        self.cfg.tokens.iter().find(|t| t.token == token)
    }

    /// HELLO-time check: is this token allowed to talk at all?
    /// (Quota is enforced per-OPEN, not here — a tenant at budget can
    /// still connect to close or drain sessions.)
    pub fn authenticate(&self, token: &str) -> Result<(), AdmitError> {
        if self.cfg.open_access || self.spec_for(token).is_some() {
            Ok(())
        } else {
            self.rejected_auth.inc();
            Err(AdmitError::Auth)
        }
    }

    /// Runs the full pipeline for one OPEN: auth → quota → placement →
    /// `try_open`. On success the session is queued and counted against
    /// `token`; returns the shard it was placed on.
    pub fn admit(
        &mut self,
        token: &str,
        engine: &mut ServeEngine,
        spec: SessionSpec,
    ) -> Result<usize, AdmitError> {
        self.authenticate(token)?;
        let live = *self.live_by_token.get(token).unwrap_or(&0);
        let max = match self.spec_for(token) {
            Some(t) => t.max_live,
            None => usize::MAX, // open-access tenant: unlimited
        };
        if live >= max {
            self.rejected_quota.inc();
            return Err(AdmitError::Quota { live, max });
        }
        let id = spec.id;
        let shard = engine.shard_of(id);
        match engine.try_open(spec) {
            Ok(()) => {
                self.live_by_token.insert(token.to_owned(), live + 1);
                self.owner_of.insert(id, token.to_owned());
                self.admitted.inc();
                self.live.set(self.owner_of.len() as f64);
                Ok(shard)
            }
            Err(ServeError::QueueFull(_)) => {
                // The spec is dropped here by design: shedding hands
                // nothing back to retry on the reactor thread.
                self.shed.inc();
                Err(AdmitError::Overloaded { shard })
            }
            Err(ServeError::DuplicateId(id)) => Err(AdmitError::Duplicate(id)),
            Err(ServeError::ShutDown) => Err(AdmitError::ShuttingDown),
        }
    }

    /// Credits a completed session back to its token's budget.
    pub fn session_done(&mut self, id: SessionId) {
        if let Some(token) = self.owner_of.remove(&id) {
            if let Some(n) = self.live_by_token.get_mut(&token) {
                *n = n.saturating_sub(1);
            }
            self.live.set(self.owner_of.len() as f64);
        }
    }

    /// Live (admitted, not yet completed) sessions across all tokens.
    pub fn live_sessions(&self) -> usize {
        self.owner_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::modes;
    use wivi_core::WiViConfig;
    use wivi_rf::{Material, Scene};

    fn spec(id: SessionId) -> SessionSpec {
        SessionSpec::new(
            id,
            Scene::new(Material::HollowWall6In),
            WiViConfig::fast_test(),
            1,
            0.0,
            modes::Count,
        )
    }

    #[test]
    fn unknown_tokens_are_refused_unless_open_access() {
        let reg = Registry::new();
        let gate = Admission::new(
            AdmissionConfig::with_tokens(vec![TokenSpec::new("alice", 4)]),
            &reg,
        );
        assert_eq!(gate.authenticate("alice"), Ok(()));
        assert_eq!(gate.authenticate("mallory"), Err(AdmitError::Auth));
        assert_eq!(
            reg.snapshot(false).counter("serve.admission.rejected_auth"),
            Some(1)
        );

        let open = Admission::new(AdmissionConfig::open_access(), &reg);
        assert_eq!(open.authenticate("anyone"), Ok(()));
    }

    #[test]
    fn quota_blocks_the_token_and_frees_on_completion() {
        let reg = Registry::new();
        let mut gate = Admission::new(
            AdmissionConfig::with_tokens(vec![TokenSpec::new("alice", 2)]),
            &reg,
        );
        let mut engine = ServeEngine::start(ServeConfig::with_shards_workers(1, 1));
        assert!(gate.admit("alice", &mut engine, spec(1)).is_ok());
        assert!(gate.admit("alice", &mut engine, spec(2)).is_ok());
        assert_eq!(
            gate.admit("alice", &mut engine, spec(3)),
            Err(AdmitError::Quota { live: 2, max: 2 })
        );
        gate.session_done(1);
        assert!(gate.admit("alice", &mut engine, spec(3)).is_ok());
        assert_eq!(gate.live_sessions(), 2);
        let snap = reg.snapshot(false);
        assert_eq!(snap.counter("serve.admission.admitted"), Some(3));
        assert_eq!(snap.counter("serve.admission.rejected_quota"), Some(1));
        engine.finish();
    }

    #[test]
    fn queue_full_sheds_with_a_counter_instead_of_blocking() {
        let reg = Registry::new();
        let mut gate = Admission::new(AdmissionConfig::open_access(), &reg);
        // One shard, queue bound 1, and sessions long enough that the
        // queue cannot drain between admits.
        let mut cfg = ServeConfig::with_shards_workers(1, 1);
        cfg.queue_capacity = 1;
        let mut engine = ServeEngine::start(cfg);
        let mut shed = 0usize;
        for id in 0..16 {
            match gate.admit("t", &mut engine, spec(id)) {
                Ok(_) => {}
                Err(AdmitError::Overloaded { shard }) => {
                    assert_eq!(shard, 0);
                    shed += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(shed > 0, "a 1-deep queue must shed under a 16-open burst");
        assert_eq!(
            reg.snapshot(false).counter("serve.admission.shed"),
            Some(shed as u64)
        );
        engine.finish();
    }

    #[test]
    fn duplicates_and_shutdown_surface_with_stable_codes() {
        let reg = Registry::new();
        let mut gate = Admission::new(AdmissionConfig::open_access(), &reg);
        let mut engine = ServeEngine::start(ServeConfig::with_shards_workers(1, 1));
        gate.admit("t", &mut engine, spec(7)).unwrap();
        let err = gate.admit("t", &mut engine, spec(7)).unwrap_err();
        assert_eq!(err, AdmitError::Duplicate(7));
        assert_eq!(err.code(), "duplicate_id");
        engine.finish();
    }
}
