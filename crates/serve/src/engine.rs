//! The serving engine: session routing, backpressure, and the unified
//! event stream.
//!
//! [`ServeEngine::start`] spawns N worker shards ([`crate::shard`]).
//! [`ServeEngine::open`] routes a [`SessionSpec`] to the shard selected
//! by a stable FNV-1a hash of its session id — never by load, arrival
//! order, or thread scheduling — and blocks while that shard's bounded
//! queue is full (the backpressure surface; [`ServeEngine::try_open`] is
//! the non-blocking variant). Sessions stream to completion on their
//! shard, can be cut short with [`ServeEngine::close`], and
//! [`ServeEngine::finish`] drains everything into a [`ServeReport`].
//!
//! **Determinism.** Each session's output depends only on its spec:
//! sessions own their scene, device, and RNG; the per-shard engines they
//! share hold no cross-window state; and the merged event stream orders
//! by `(timestamp, session id, emission order)` through
//! [`wivi_num::merge_streams`]. Shard count, submission order, and
//! scheduling therefore cannot change a single bit of the report's
//! outputs or events — the `serving_equivalence` and determinism-matrix
//! integration tests pin this.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wivi_num::{merge_streams, TimedStream};
use wivi_obs::{HistogramSnapshot, Registry};
use wivi_track::TrackEvent;

use crate::error::ServeError;
use crate::session::{SessionId, SessionOutput, SessionSpec};
use crate::shard::{
    run_shard, Command, ShardChannel, ShardMetrics, ShardSnapshot, SloMetrics, SloSummary,
    TryPushError,
};

/// Engine sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker shards. Sessions hash-route here; more shards than cores
    /// is legal (they time-share).
    pub n_shards: usize,
    /// Worker threads *inside* each shard: every round, the shard
    /// round-robin partitions its id-sorted live sessions across this
    /// many scoped threads, each owning a private engine cache and
    /// scratch buffer. Sessions share no mutable state, so outputs and
    /// the merged event stream are bit-identical for every worker
    /// count; only wall-clock changes. `1` is the classic
    /// single-threaded shard.
    pub workers_per_shard: usize,
    /// Channel samples each session advances per turn — the serving
    /// analogue of the UHD frame chunk.
    pub batch_len: usize,
    /// Bound of each shard's command queue; `open` blocks when the
    /// target shard's queue is at capacity.
    pub queue_capacity: usize,
    /// The SLO hop budget each batch window is held to, nanoseconds
    /// (the paper's 400 ms end-to-end window budget by default).
    /// Accounting only — nothing is throttled on a breach: the window
    /// is tallied in `serve.slo.*`, and a session's first breach dumps
    /// the span flight recorder into the incident buffer.
    pub slo_budget_ns: u64,
}

/// The default SLO hop budget: the paper's 400 ms end-to-end window.
pub const DEFAULT_SLO_BUDGET_NS: u64 = 400_000_000;

impl ServeConfig {
    /// `n_shards` shards with the device's default batching, a
    /// 32-command queue bound, and the `WIVI_SERVE_WORKERS` worker
    /// count (default 1).
    pub fn with_shards(n_shards: usize) -> Self {
        Self::with_shards_workers(n_shards, default_workers_per_shard())
    }

    /// `n_shards` shards × `workers_per_shard` threads, with the
    /// device's default batching and a 32-command queue bound.
    pub fn with_shards_workers(n_shards: usize, workers_per_shard: usize) -> Self {
        Self {
            n_shards,
            workers_per_shard,
            batch_len: wivi_core::device::DEFAULT_BATCH_LEN,
            queue_capacity: 32,
            slo_budget_ns: DEFAULT_SLO_BUDGET_NS,
        }
    }

    /// Total worker threads this configuration spins up.
    pub fn threads(&self) -> usize {
        self.n_shards * self.workers_per_shard
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero shards, workers, batch length, or queue capacity.
    pub fn validate(&self) {
        assert!(self.n_shards >= 1, "need at least one shard");
        assert!(
            self.workers_per_shard >= 1,
            "need at least one worker per shard"
        );
        assert!(self.batch_len >= 1, "batch length must be positive");
        assert!(self.queue_capacity >= 1, "queue capacity must be positive");
        assert!(self.slo_budget_ns >= 1, "SLO budget must be positive");
    }
}

/// The `WIVI_SERVE_WORKERS` default worker count, read once per
/// process: unset, unparsable, or zero mean 1 worker per shard.
pub fn default_workers_per_shard() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("WIVI_SERVE_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// One event of the engine's unified stream: a tracker event stamped
/// with its session and the serving-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeEvent {
    /// Serving-clock timestamp: session `start_s` + the event's
    /// session-relative window time.
    pub time_s: f64,
    pub session: SessionId,
    /// The event's emission index within its session (the merge's final
    /// tie-break, and the key to re-derive per-session order).
    pub seq: usize,
    pub event: TrackEvent,
}

/// Engine-wide serving telemetry, assembled from the engine's obs
/// registry ([`ServeEngine::registry`]) at [`ServeEngine::finish`]: one
/// [`ShardSnapshot`] row per shard plus the machine-level context
/// (threads spun up, cores available) that used to be scattered across
/// callers.
#[derive(Clone, Debug)]
pub struct ServeSnapshot {
    /// Total worker threads that executed session batches: the sum of
    /// every shard's worker count.
    pub threads_used: usize,
    /// Logical cores the host reports
    /// ([`std::thread::available_parallelism`]).
    pub cores_available: usize,
    /// Per-shard serving telemetry, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// How the run did against its SLO hop budget.
    pub slo: SloSummary,
}

impl ServeSnapshot {
    /// All shards' per-batch latency histograms merged into one, in
    /// nanoseconds. Merging is element-wise and order-invariant, so the
    /// result is identical however the shards interleaved.
    pub fn batch_latency_ns(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for s in &self.shards {
            merged.merge(&s.batch_latency_ns);
        }
        merged
    }
}

/// Everything a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// One output per opened session, in session-id order.
    pub outputs: Vec<SessionOutput>,
    /// The unified cross-session event stream, ordered by
    /// `(time, session id, emission order)`.
    pub events: Vec<ServeEvent>,
    /// Engine-wide telemetry: per-shard rows plus thread/core context.
    pub snapshot: ServeSnapshot,
    /// Engine wall-clock from start to finish, seconds.
    pub wall_s: f64,
}

impl ServeReport {
    /// The output of session `id`, if it was served. `outputs` is
    /// id-sorted (the engine sorts at `finish`), so this is a binary
    /// search — O(log n) at wire-front session counts, where the old
    /// linear scan made report post-processing quadratic.
    pub fn output(&self, id: SessionId) -> Option<&SessionOutput> {
        self.outputs
            .binary_search_by_key(&id, |o| o.id)
            .ok()
            .map(|i| &self.outputs[i])
    }

    /// Total channel samples streamed across all sessions.
    pub fn total_samples(&self) -> usize {
        self.outputs.iter().map(|o| o.n_samples).sum()
    }

    /// Aggregate streaming throughput, channel samples per wall-clock
    /// second.
    pub fn samples_per_sec(&self) -> f64 {
        self.total_samples() as f64 / self.wall_s.max(1e-12)
    }

    /// Sessions served per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.outputs.len() as f64 / self.wall_s.max(1e-12)
    }

    /// Per-shard telemetry rows, in shard order.
    pub fn shards(&self) -> &[ShardSnapshot] {
        &self.snapshot.shards
    }

    /// Total worker threads that executed session batches: the sum of
    /// every shard's worker count.
    pub fn threads_used(&self) -> usize {
        self.snapshot.threads_used
    }

    /// The `p`-th percentile (0–100) of per-batch processing latency
    /// across all shards, seconds; 0 if no batches ran. Read from the
    /// merged latency histogram (≤6.25 % relative bucket width), not a
    /// raw sample vector.
    pub fn batch_latency_percentile_s(&self, p: f64) -> f64 {
        self.snapshot.batch_latency_ns().quantile(p) / 1e9
    }
}

/// Stable shard routing: FNV-1a over the session id's little-endian
/// bytes. Depends only on (id, n_shards) — never on submission order or
/// load — so a given deployment shape always places a session
/// identically.
pub fn shard_of(id: SessionId, n_shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % n_shards as u64) as usize
}

/// Finished sessions, delivered live. Shards push a clone of each
/// [`SessionOutput`] here the moment the session finalizes — hundreds
/// of batch rounds before `finish()` would surface it — so a serving
/// front can stream results back to clients while the engine keeps
/// running. The payload clone is an `Arc` bump. Cloning the queue
/// handle shares the same underlying queue.
#[derive(Clone, Default)]
pub struct CompletionQueue(Arc<Mutex<VecDeque<SessionOutput>>>);

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&self, out: SessionOutput) {
        self.0
            .lock()
            .expect("completion queue poisoned")
            .push_back(out);
    }

    /// Takes everything completed since the last drain, in completion
    /// order (per shard; cross-shard interleave is scheduling). Never
    /// blocks.
    pub fn drain(&self) -> Vec<SessionOutput> {
        self.0
            .lock()
            .expect("completion queue poisoned")
            .drain(..)
            .collect()
    }

    /// Completed-but-undrained outputs right now.
    pub fn len(&self) -> usize {
        self.0.lock().expect("completion queue poisoned").len()
    }

    /// `true` if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The sharded multi-session serving engine.
pub struct ServeEngine {
    cfg: ServeConfig,
    channels: Vec<Arc<ShardChannel>>,
    workers: Vec<std::thread::JoinHandle<Vec<SessionOutput>>>,
    /// This engine's private metrics registry: shard workers record
    /// into it live, [`Self::finish`] snapshots it into the report.
    registry: Registry,
    metrics: Vec<ShardMetrics>,
    slo: SloMetrics,
    opened_ids: Vec<SessionId>,
    started: Instant,
}

impl ServeEngine {
    /// Starts the engine: spawns `cfg.n_shards` worker threads, each
    /// with its own bounded command queue and engine cache.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn start(cfg: ServeConfig) -> Self {
        Self::start_inner(cfg, None)
    }

    /// [`Self::start`], plus a live [`CompletionQueue`] the shards push
    /// every finished session into — what the network front drains to
    /// stream outputs back without waiting for [`Self::finish`].
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn start_with_completions(cfg: ServeConfig) -> (Self, CompletionQueue) {
        let q = CompletionQueue::new();
        (Self::start_inner(cfg, Some(q.clone())), q)
    }

    fn start_inner(cfg: ServeConfig, completions: Option<CompletionQueue>) -> Self {
        cfg.validate();
        let registry = Registry::new();
        let channels: Vec<Arc<ShardChannel>> = (0..cfg.n_shards)
            .map(|_| Arc::new(ShardChannel::new(cfg.queue_capacity)))
            .collect();
        let slo = SloMetrics::register(&registry, cfg.slo_budget_ns);
        let metrics: Vec<ShardMetrics> = (0..cfg.n_shards)
            .map(|i| ShardMetrics::register(&registry, i, cfg.workers_per_shard, slo.clone()))
            .collect();
        let workers = channels
            .iter()
            .enumerate()
            .map(|(i, chan)| {
                let chan = Arc::clone(chan);
                let batch_len = cfg.batch_len;
                let m = metrics[i].clone();
                let q = completions.clone();
                std::thread::Builder::new()
                    .name(format!("wivi-shard-{i}"))
                    .spawn(move || run_shard(i, chan, batch_len, m, q))
                    .expect("failed to spawn shard worker")
            })
            .collect();
        Self {
            cfg,
            channels,
            workers,
            registry,
            metrics,
            slo,
            opened_ids: Vec::new(),
            started: Instant::now(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The engine's metrics registry. Shard telemetry
    /// (`serve.shard{i}.*`) accumulates here *while the engine runs* —
    /// snapshot or export it live for a `/metrics`-style endpoint, or
    /// wait for the aggregated [`ServeSnapshot`] in the final report.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shard session `id` routes to.
    pub fn shard_of(&self, id: SessionId) -> usize {
        shard_of(id, self.cfg.n_shards)
    }

    /// Commands currently queued at `shard` (backpressure
    /// introspection).
    pub fn queue_len(&self, shard: usize) -> usize {
        self.channels[shard].queue_len()
    }

    /// `true` while shard `shard`'s worker thread is still running —
    /// the `/healthz` liveness probe. A shard exits only at shutdown or
    /// on a panic, so `false` before `finish()` means the shard died.
    pub fn shard_alive(&self, shard: usize) -> bool {
        !self.workers[shard].is_finished()
    }

    /// The engine's live SLO aggregate: windows under/over the hop
    /// budget, the worst window, and sessions that breached.
    pub fn slo_summary(&self) -> SloSummary {
        self.slo.summary()
    }

    /// Rolling `(windows, windows_over)` SLO counts over the trailing
    /// `window_ns` — the burn-rate-right-now readout behind
    /// `/healthz`.
    pub fn slo_rolling(&self, window_ns: u64) -> (u64, u64) {
        self.slo.rolling(window_ns)
    }

    /// All shards' rolling batch-latency views over the trailing
    /// `window_ns`, merged into one snapshot. Snapshot diff commutes
    /// with merge, so this equals the rolling view of one engine-wide
    /// histogram — partitioning across shards cannot change it.
    pub fn rolling_batch_latency(&self, window_ns: u64) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for m in &self.metrics {
            merged.merge(&m.rolling_batch(window_ns));
        }
        merged
    }

    /// Opens a session, blocking while its shard's queue is full — the
    /// engine's backpressure. The session streams to completion (or
    /// [`Self::close`]) on its shard.
    ///
    /// The id is registered only once the push succeeds (the same
    /// contract as [`Self::try_open`]): a failed push does not burn the
    /// id. Errors with [`ServeError::ShutDown`] — instead of panicking —
    /// if the engine shuts down while this call blocks, and
    /// [`ServeError::DuplicateId`] on an id reuse.
    pub fn open(&mut self, spec: SessionSpec) -> Result<(), ServeError> {
        self.check_unique(spec.id)?;
        let shard = self.shard_of(spec.id);
        let id = spec.id;
        self.channels[shard]
            .push_blocking(Command::Open(Box::new(spec)))
            .map_err(|_| ServeError::ShutDown)?;
        self.opened_ids.push(id);
        Ok(())
    }

    /// Non-blocking [`Self::open`]: errors with
    /// [`ServeError::QueueFull`] — handing the spec back (boxed — it
    /// owns a whole scene) — if the target shard's queue is at
    /// capacity. The id is then *not* considered used, so the caller
    /// may retry; this queue-full boundary is where the admission
    /// layer's overload shedding engages.
    pub fn try_open(&mut self, spec: SessionSpec) -> Result<(), ServeError> {
        self.check_unique(spec.id)?;
        let shard = self.shard_of(spec.id);
        let id = spec.id;
        match self.channels[shard].try_push(Command::Open(Box::new(spec))) {
            Ok(()) => {
                self.opened_ids.push(id);
                Ok(())
            }
            Err(TryPushError::Full(Command::Open(spec))) => Err(ServeError::QueueFull(spec)),
            Err(TryPushError::Full(Command::Close(_))) => unreachable!("pushed an Open"),
            Err(TryPushError::Shut) => Err(ServeError::ShutDown),
        }
    }

    fn check_unique(&self, id: SessionId) -> Result<(), ServeError> {
        if self.opened_ids.contains(&id) {
            return Err(ServeError::DuplicateId(id));
        }
        Ok(())
    }

    /// Requests an early close: the session drains at its next batch
    /// boundary, producing a prefix of its full output (no events lost
    /// or duplicated — the drain runs the normal finalize path).
    /// Unknown or already-finished ids are ignored by the shard. Errors
    /// with [`ServeError::ShutDown`] if the engine shut down first.
    pub fn close(&mut self, id: SessionId) -> Result<(), ServeError> {
        let shard = self.shard_of(id);
        self.channels[shard]
            .push_blocking(Command::Close(id))
            .map_err(|_| ServeError::ShutDown)
    }

    /// Declares the command stream complete, drains every shard, joins
    /// the workers, and assembles the report: outputs in session-id
    /// order and the timestamp-ordered merged event stream.
    ///
    /// # Panics
    /// Panics if a shard worker panicked.
    pub fn finish(self) -> ServeReport {
        for chan in &self.channels {
            chan.shutdown();
        }
        let mut outputs: Vec<SessionOutput> = Vec::new();
        for w in self.workers {
            outputs.extend(w.join().expect("shard worker panicked"));
        }
        outputs.sort_by_key(|o| o.id);
        let events = merge_session_events(&outputs);
        // Shards have exited, so the registry is quiescent: the
        // snapshot rows are final (and already in shard order).
        let shards: Vec<ShardSnapshot> = self.metrics.iter().map(|m| m.snapshot()).collect();
        let snapshot = ServeSnapshot {
            threads_used: shards.iter().map(|s| s.workers).sum(),
            cores_available: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards,
            slo: self.slo.summary(),
        };
        ServeReport {
            outputs,
            events,
            snapshot,
            wall_s: self.started.elapsed().as_secs_f64(),
        }
    }
}

/// Builds the unified stream: per session, stamp events with the serving
/// clock and their emission index, pre-sort by time (entry events are
/// back-dated, so emission order is not time order), then k-way merge
/// with ties broken by session id and emission order.
///
/// `pub(crate)`: the wire server replays this exact merge over each
/// connection's own outputs, so a connection's EVENT stream is the same
/// deterministic function of its session set as the in-process report's.
pub(crate) fn merge_session_events(outputs: &[SessionOutput]) -> Vec<ServeEvent> {
    let streams: Vec<TimedStream<ServeEvent>> = outputs
        .iter()
        .filter(|o| !o.events.is_empty())
        .map(|o| {
            let mut items: Vec<ServeEvent> = o
                .events
                .iter()
                .enumerate()
                .map(|(seq, &event)| ServeEvent {
                    time_s: o.start_s + event.time_s,
                    session: o.id,
                    seq,
                    event,
                })
                .collect();
            // Stable: equal times keep emission order.
            items.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
            TimedStream { tag: o.id, items }
        })
        .collect();
    merge_streams(&streams, |e| e.time_s)
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_spreads() {
        for id in 0..64u64 {
            assert_eq!(shard_of(id, 4), shard_of(id, 4));
        }
        // All shards get some of the first 64 ids.
        for shard in 0..4 {
            assert!(
                (0..64u64).any(|id| shard_of(id, 4) == shard),
                "shard {shard} never selected"
            );
        }
        // Single shard degenerates correctly.
        assert!((0..64u64).all(|id| shard_of(id, 1) == 0));
    }

    #[test]
    fn config_validation() {
        let cfg = ServeConfig::with_shards(2);
        cfg.validate();
        let bad = ServeConfig { n_shards: 0, ..cfg };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
    }

    fn tiny_spec(id: SessionId) -> SessionSpec {
        SessionSpec::new(
            id,
            wivi_rf::Scene::new(wivi_rf::Material::HollowWall6In),
            wivi_core::WiViConfig::fast_test(),
            1,
            0.0,
            crate::modes::Count,
        )
    }

    /// Regression (PR 8): `open`/`close` racing a shutdown return a
    /// clean [`ServeError::ShutDown`] — the old assert panicked and
    /// poisoned the shard queue. The failed open must not burn the id.
    #[test]
    fn open_and_close_after_shutdown_error_cleanly() {
        let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
        for ch in &engine.channels {
            ch.shutdown();
        }
        let err = engine.open(tiny_spec(7)).unwrap_err();
        assert!(matches!(err, ServeError::ShutDown), "got {err:?}");
        assert!(
            engine.opened_ids.is_empty(),
            "a failed open must not register the id"
        );
        assert!(matches!(engine.close(7), Err(ServeError::ShutDown)));
        // A second attempt with the same id still reports ShutDown, not
        // DuplicateId — the id was never consumed.
        assert!(matches!(
            engine.open(tiny_spec(7)),
            Err(ServeError::ShutDown)
        ));
        let report = engine.finish();
        assert!(report.outputs.is_empty());
    }

    /// Duplicate ids are a clean error on both open paths (a malicious
    /// or buggy wire client must not be able to panic the engine).
    #[test]
    fn duplicate_ids_error_on_both_open_paths() {
        let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
        engine.open(tiny_spec(3)).unwrap();
        assert!(matches!(
            engine.open(tiny_spec(3)),
            Err(ServeError::DuplicateId(3))
        ));
        assert!(matches!(
            engine.try_open(tiny_spec(3)),
            Err(ServeError::DuplicateId(3))
        ));
        let report = engine.finish();
        assert_eq!(report.outputs.len(), 1);
    }

    #[test]
    fn report_output_binary_search_finds_every_id() {
        let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
        let ids: Vec<SessionId> = (0..9).map(|i| 5 + 11 * i).collect();
        for &id in &ids {
            engine.open(tiny_spec(id)).unwrap();
        }
        let report = engine.finish();
        for &id in &ids {
            assert_eq!(report.output(id).expect("served").id, id);
        }
        assert!(report.output(4).is_none());
        assert!(report.output(9999).is_none());
    }

    #[test]
    fn completion_queue_sees_every_session_before_finish() {
        let (mut engine, completions) =
            ServeEngine::start_with_completions(ServeConfig::with_shards(2));
        for id in 0..4u64 {
            engine.open(tiny_spec(id)).unwrap();
        }
        // Zero-duration sessions finalize on their first round; poll the
        // live queue without finishing the engine.
        let mut live = Vec::new();
        let t0 = Instant::now();
        while live.len() < 4 && t0.elapsed().as_secs() < 30 {
            live.extend(completions.drain());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(live.len(), 4, "completions not delivered live");
        let report = engine.finish();
        assert_eq!(report.outputs.len(), 4);
        assert!(completions.is_empty(), "nothing new after the last drain");
        let mut ids: Vec<u64> = live.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
