//! Registry-exhaustiveness coverage: every mode registered in
//! [`ModeRegistry::builtin`] round-trips its tag and actually serves
//! end-to-end, with the result payload downcasting to the type the mode
//! documents. The payload `match` below is deliberately written over an
//! *explicit* tag list with a panicking fallback, and the expected-tag
//! list is asserted against the registry — so registering a new
//! built-in mode fails this test until its payload contract is spelled
//! out: the registry cannot silently grow past its coverage.
//!
//! This file is also an out-of-crate extension-point proof: integration
//! tests link `wivi_serve` as an external crate, and the toy mode at the
//! bottom implements [`SensingMode`] — with its own shard-resident
//! engine through the keyed [`EngineCache`] — without touching the
//! serving crate.

use wivi_core::gesture::GestureDecode;
use wivi_core::{AngleSpectrogram, EngineCache, ShardEngine, WiViConfig, WiViDevice};
use wivi_image::ImagingReport;
use wivi_num::Complex64;
use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};
use wivi_serve::{ModeOutput, ModeRegistry, SensingMode, ServeConfig, ServeEngine, SessionSpec};
use wivi_track::{TrackEvent, TrackingReport};

fn scene() -> Scene {
    Scene::new(Material::HollowWall6In)
        .with_office_clutter(Scene::conference_room_small())
        .with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-2.0, 2.5), Point::new(2.0, 2.5)],
            1.0,
        )))
}

/// The payload contract this test knows how to check — must cover the
/// registry exactly (asserted in the tests below).
const KNOWN_TAGS: [&str; 5] = ["track", "track_targets", "count", "gestures", "image"];

#[test]
fn every_registered_mode_label_round_trips() {
    let reg = ModeRegistry::builtin();
    // The registry and this test's coverage must agree exactly: a new
    // registered mode must be added to KNOWN_TAGS (and the payload
    // match below) before this suite passes again.
    assert_eq!(reg.tags(), KNOWN_TAGS.to_vec(), "registry coverage drift");
    for mode in reg.modes() {
        let by_tag = reg.get(mode.tag()).expect("tag resolves");
        assert_eq!(by_tag.tag(), mode.tag());
        assert_eq!(&by_tag, mode, "tag round-trip changed the mode");
    }
    assert!(reg.get("no_such_mode").is_none());
    // Tags are unique (the registry enforces it at registration).
    for (i, a) in reg.tags().iter().enumerate() {
        for b in &reg.tags()[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn every_registered_mode_serves_and_returns_its_own_payload() {
    let reg = ModeRegistry::builtin();
    let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
    for (i, mode) in reg.modes().iter().enumerate() {
        engine
            .open(
                SessionSpec::builder(i as u64)
                    .scene(scene())
                    .config(WiViConfig::fast_test())
                    .seed(100 + i as u64)
                    .duration_s(2.5)
                    .mode(mode.clone())
                    .build(),
            )
            .unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.outputs.len(), reg.len());
    for (i, mode) in reg.modes().iter().enumerate() {
        let out = report.output(i as u64).expect("session served");
        assert_eq!(out.mode, mode.tag());
        assert_eq!(out.result.tag(), mode.tag());
        assert_eq!(out.n_samples, out.n_requested);
        assert!(out.n_columns > 0, "{} produced no windows", mode.tag());
        // Explicit tag list with panicking fallback: a newly registered
        // mode must declare its payload here.
        match out.mode {
            "track" => {
                assert!(out.result.expect::<Option<AngleSpectrogram>>().is_some());
            }
            "track_targets" => {
                assert!(!out.result.expect::<TrackingReport>().times_s.is_empty());
            }
            "count" => {
                assert!(out.result.expect::<Option<f64>>().is_some());
            }
            "gestures" => {
                assert!(out.result.expect::<Option<GestureDecode>>().is_some());
            }
            "image" => {
                assert!(out.result.expect::<ImagingReport>().n_windows() > 0);
            }
            other => panic!("registered mode '{other}' has no payload check"),
        }
    }
}

// ---- Out-of-crate toy mode ------------------------------------------

/// A shard-resident engine defined outside wivi-serve: a precomputed
/// Hann-like window the mode applies per batch. Shards build it once
/// per configuration and share it across sessions.
struct TaperEngine {
    taper: Vec<f64>,
}

impl ShardEngine for TaperEngine {
    type Config = usize; // taper length

    fn build(cfg: &usize) -> Self {
        let n = (*cfg).max(1);
        TaperEngine {
            taper: (0..n)
                .map(|i| {
                    let x = i as f64 / n as f64;
                    0.5 - 0.5 * (std::f64::consts::TAU * x).cos()
                })
                .collect(),
        }
    }
}

/// The toy sixth mode: tapered mean power of the nulled residual.
struct TaperedPower;

struct TaperedPowerState {
    sum: f64,
    n: usize,
    batch_len: usize,
}

impl SensingMode for TaperedPower {
    type State = TaperedPowerState;

    fn tag(&self) -> &'static str {
        "tapered_power"
    }

    fn open(&self, _dev: &WiViDevice, _eff: &WiViConfig) -> TaperedPowerState {
        TaperedPowerState {
            sum: 0.0,
            n: 0,
            batch_len: 16,
        }
    }

    fn step(&self, st: &mut TaperedPowerState, engines: &mut EngineCache, h: &[Complex64]) {
        let engine = engines.engine::<TaperEngine>(&st.batch_len);
        for (i, z) in h.iter().enumerate() {
            st.sum += z.norm_sqr() * engine.taper[i % engine.taper.len()];
        }
        st.n += h.len();
    }

    fn columns(&self, st: &TaperedPowerState) -> usize {
        st.n
    }

    fn finalize(&self, st: TaperedPowerState) -> (ModeOutput, Vec<TrackEvent>) {
        let mean = (st.n > 0).then(|| st.sum / st.n as f64);
        (ModeOutput::new(self.tag(), mean), Vec::new())
    }
}

#[test]
fn out_of_crate_mode_registers_and_serves_next_to_builtins() {
    let mut reg = ModeRegistry::builtin();
    let toy = reg.register(TaperedPower);
    assert_eq!(reg.len(), KNOWN_TAGS.len() + 1);
    assert_eq!(reg.get("tapered_power").unwrap().tag(), "tapered_power");

    // One toy session multiplexed with a built-in on the same engine.
    let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
    engine
        .open(
            SessionSpec::builder(1)
                .scene(scene())
                .config(WiViConfig::fast_test())
                .seed(7)
                .duration_s(0.5)
                .mode(toy)
                .build(),
        )
        .unwrap();
    engine
        .open(
            SessionSpec::builder(2)
                .scene(scene())
                .config(WiViConfig::fast_test())
                .seed(8)
                .duration_s(0.5)
                .mode(reg.get("count").unwrap())
                .build(),
        )
        .unwrap();
    let report = engine.finish();
    assert_eq!(report.outputs.len(), 2);

    let toy_out = report.output(1).unwrap();
    assert_eq!(toy_out.mode, "tapered_power");
    let mean = toy_out.result.expect::<Option<f64>>();
    assert!(mean.unwrap() > 0.0, "toy mode saw no residual power");
    assert!(toy_out.events.is_empty(), "toy mode contributes no events");

    let count_out = report.output(2).unwrap();
    assert_eq!(count_out.mode, "count");
    assert!(count_out.result.expect::<Option<f64>>().is_some());
    // The shard hosted the toy engine next to the built-in MUSIC engine.
    assert!(report.shards()[0].engines >= 2);
}
