//! Exhaustive `SessionMode` dispatch coverage: every variant has a
//! round-tripping label and actually serves end-to-end, with the result
//! payload matching the mode. The `match` expressions here are
//! deliberately written *without* wildcard arms, so adding a variant to
//! [`SessionMode`] fails compilation in this test until its dispatch is
//! spelled out — the enum cannot silently grow past the serving layer.

use wivi_core::WiViConfig;
use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};
use wivi_serve::{ServeConfig, ServeEngine, SessionMode, SessionResult, SessionSpec};

fn scene() -> Scene {
    Scene::new(Material::HollowWall6In)
        .with_office_clutter(Scene::conference_room_small())
        .with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-2.0, 2.5), Point::new(2.0, 2.5)],
            1.0,
        )))
}

#[test]
fn every_mode_label_round_trips() {
    for mode in SessionMode::ALL {
        // No-wildcard match: a new variant must add its tag here.
        let tag = match mode {
            SessionMode::Track => "track",
            SessionMode::TrackTargets => "track_targets",
            SessionMode::Count => "count",
            SessionMode::Gestures => "gestures",
            SessionMode::Image => "image",
        };
        assert_eq!(mode.tag(), tag);
        assert_eq!(SessionMode::from_tag(tag), Some(mode));
    }
    assert_eq!(SessionMode::from_tag("no_such_mode"), None);
    // ALL is exhaustive and duplicate-free.
    for (i, a) in SessionMode::ALL.iter().enumerate() {
        for b in &SessionMode::ALL[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn every_mode_serves_and_returns_its_own_payload() {
    let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
    for (i, mode) in SessionMode::ALL.into_iter().enumerate() {
        engine.open(SessionSpec::new(
            i as u64,
            scene(),
            WiViConfig::fast_test(),
            100 + i as u64,
            2.5,
            mode,
        ));
    }
    let report = engine.finish();
    assert_eq!(report.outputs.len(), SessionMode::ALL.len());
    for (i, mode) in SessionMode::ALL.into_iter().enumerate() {
        let out = report.output(i as u64).expect("session served");
        assert_eq!(out.mode, mode);
        assert_eq!(out.n_samples, out.n_requested);
        assert!(out.n_columns > 0, "{mode:?} produced no windows");
        // No-wildcard match: a new variant must declare its payload.
        match (&out.result, mode) {
            (SessionResult::Track(spec), SessionMode::Track) => {
                assert!(spec.is_some());
            }
            (SessionResult::TrackTargets(r), SessionMode::TrackTargets) => {
                assert!(!r.times_s.is_empty());
            }
            (SessionResult::Count(v), SessionMode::Count) => {
                assert!(v.is_some());
            }
            (SessionResult::Gestures(d), SessionMode::Gestures) => {
                assert!(d.is_some());
            }
            (SessionResult::Image(r), SessionMode::Image) => {
                assert!(r.n_windows() > 0);
            }
            (result, mode) => panic!("mode {mode:?} produced mismatched payload {result:?}"),
        }
    }
}
