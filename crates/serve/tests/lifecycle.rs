//! Session-lifecycle edge cases: early close mid-stream, zero-duration
//! sessions, more sessions than shards, and a full queue exercising
//! backpressure — each asserting that no events (or sessions) are lost
//! or duplicated.

use wivi_core::gesture::GestureDecode;
use wivi_core::{AngleSpectrogram, WiViConfig, WiViDevice};
use wivi_image::ImagingReport;
use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};
use wivi_serve::{modes, ModeRef, ServeConfig, ServeEngine, SessionSpec};
use wivi_track::{TrackTargets, TrackingReport};

fn crossing_scene() -> Scene {
    Scene::new(Material::HollowWall6In)
        .with_office_clutter(Scene::conference_room_small())
        .with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-1.5, 3.8), Point::new(0.5, 1.0)],
            0.8,
        )))
        .with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(0.9, 1.1), Point::new(1.6, 3.7)],
            0.5,
        )))
}

fn spec(id: u64, duration_s: f64, mode: impl Into<ModeRef>) -> SessionSpec {
    SessionSpec::new(
        id,
        crossing_scene(),
        WiViConfig::fast_test(),
        81,
        duration_s,
        mode,
    )
}

#[test]
fn zero_duration_sessions_drain_cleanly() {
    let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
    engine.open(spec(1, 0.0, modes::Track)).unwrap();
    engine.open(spec(2, 0.0, modes::TrackTargets)).unwrap();
    engine.open(spec(3, 0.0, modes::Count)).unwrap();
    engine.open(spec(4, 0.0, modes::Gestures)).unwrap();
    engine.open(spec(5, 0.0, modes::Image)).unwrap();
    let report = engine.finish();
    assert_eq!(report.outputs.len(), 5);
    assert!(report.events.is_empty());
    for out in &report.outputs {
        assert_eq!(out.n_requested, 0);
        assert_eq!(out.n_samples, 0);
        assert_eq!(out.n_columns, 0);
        assert!(!out.closed_early, "a zero-duration session is complete");
        assert!(out.events.is_empty());
        match out.mode {
            "track" => assert!(out.result.expect::<Option<AngleSpectrogram>>().is_none()),
            "track_targets" => {
                let r = out.result.expect::<TrackingReport>();
                assert_eq!(r.n_windows(), 0);
                assert!(r.tracks.is_empty() && r.events.is_empty());
            }
            "count" => assert!(out.result.expect::<Option<f64>>().is_none()),
            "gestures" => assert!(out.result.expect::<Option<GestureDecode>>().is_none()),
            "image" => {
                let r = out.result.expect::<ImagingReport>();
                assert_eq!(r.n_windows(), 0);
                assert!(r.fixes.is_empty() && r.tracks.is_empty());
            }
            other => panic!("unexpected mode '{other}'"),
        }
    }
}

#[test]
fn more_sessions_than_shards_all_complete_exactly_once() {
    let n = 6usize;
    let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
    for id in 0..n as u64 {
        engine.open(spec(id, 1.5, modes::TrackTargets)).unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.outputs.len(), n);
    let mut ids: Vec<u64> = report.outputs.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "a session was duplicated or lost");
    assert_eq!(
        report.shards().iter().map(|s| s.sessions).sum::<usize>(),
        n,
        "shard session counts disagree with outputs"
    );

    // Identical seeds/scenes ⇒ identical outputs; multiplexing ≥ 3
    // same-config sessions per shard must not perturb any of them, and
    // engine sharing means each shard holds ONE music engine.
    let mut dev = WiViDevice::new(crossing_scene(), WiViConfig::fast_test(), 81);
    dev.calibrate();
    let reference = dev.track_targets_streaming(1.5, engine_batch());
    for out in &report.outputs {
        let r = out.result.expect::<TrackingReport>();
        assert_eq!(r, &reference, "session {}", out.id);
        assert_eq!(out.events, reference.events);
    }
    for s in report.shards() {
        if s.sessions > 0 {
            assert_eq!(s.engines, 1, "same-config sessions must share one engine");
        }
    }
}

fn engine_batch() -> usize {
    ServeConfig::with_shards(1).batch_len
}

#[test]
fn closing_mid_stream_yields_an_exact_prefix_with_no_event_loss() {
    // One long tracking session; close it while it streams. The output
    // must equal a standalone run truncated to exactly the samples the
    // engine processed — same columns, same events, nothing lost or
    // duplicated at the cut.
    let duration = 60.0; // ~18'750 samples ≈ seconds of compute: close lands mid-stream
    let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
    engine.open(spec(9, duration, modes::TrackTargets)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    engine.close(9).unwrap();
    let report = engine.finish();

    let out = report.output(9).expect("closed session must still report");
    assert!(
        out.closed_early,
        "close arrived after completion — lengthen the trial"
    );
    assert!(out.n_samples < out.n_requested);
    assert_eq!(
        out.n_samples % engine_batch(),
        0,
        "close must land on a batch boundary"
    );

    // Standalone reference over exactly the streamed prefix.
    let rate = WiViConfig::fast_test().radio.channel_rate_hz;
    let truncated_duration = out.n_samples as f64 / rate;
    let mut dev = WiViDevice::new(crossing_scene(), WiViConfig::fast_test(), 81);
    dev.calibrate();
    assert_eq!(dev.trace_len(truncated_duration), out.n_samples);
    let reference = dev.track_targets_streaming(truncated_duration, engine_batch());

    let r = out.result.expect::<TrackingReport>();
    assert_eq!(r.n_windows(), reference.n_windows());
    assert_eq!(
        r.events, reference.events,
        "events lost or duplicated at close"
    );
    assert_eq!(r, &reference, "closed session is not an exact prefix");
    // The merged stream carries exactly the session's events.
    assert_eq!(report.events.len(), out.events.len());
}

#[test]
fn full_queue_backpressures_and_loses_nothing() {
    // One shard, queue bound 1. The shard spends a long time opening
    // (calibrating) the first session, so the queue stays full long
    // enough for try_open to observe backpressure deterministically.
    let mut engine = ServeEngine::start(ServeConfig {
        queue_capacity: 1,
        batch_len: 16,
        ..ServeConfig::with_shards_workers(1, 1)
    });
    engine.open(spec(0, 0.5, modes::Count)).unwrap();
    engine.open(spec(1, 0.5, modes::Count)).unwrap();

    let mut rejected = 0usize;
    let mut pending = spec(2, 0.5, modes::Count);
    loop {
        match engine.try_open(pending) {
            Ok(()) => break,
            Err(e) => {
                rejected += 1;
                assert_eq!(e.tag(), "queue_full");
                let back = e.into_spec().expect("QueueFull hands the spec back");
                assert_eq!(back.id, 2, "rejected spec must come back intact");
                pending = *back;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
        assert!(rejected < 10_000, "backpressure never cleared");
    }
    assert!(
        rejected > 0,
        "queue of capacity 1 with a busy shard never backpressured"
    );

    let report = engine.finish();
    assert_eq!(report.outputs.len(), 3, "backpressure dropped a session");
    let mut ids: Vec<u64> = report.outputs.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2]);
    for out in &report.outputs {
        assert!(!out.closed_early);
        assert_eq!(out.n_samples, out.n_requested);
    }
}

#[test]
fn duplicate_session_ids_are_rejected() {
    let mut engine = ServeEngine::start(ServeConfig::with_shards(1));
    engine.open(spec(5, 0.5, modes::Count)).unwrap();
    let err = engine
        .open(spec(5, 0.5, modes::Count))
        .expect_err("duplicate id must be refused");
    assert!(matches!(err, wivi_serve::ServeError::DuplicateId(5)));
    // try_open enforces the same uniqueness.
    let err = engine
        .try_open(spec(5, 0.5, modes::Count))
        .expect_err("duplicate id must be refused on try_open too");
    assert_eq!(err.tag(), "duplicate_id");
    let report = engine.finish();
    assert_eq!(report.outputs.len(), 1, "the refused opens must not run");
}

#[test]
fn closing_unknown_or_finished_sessions_is_harmless() {
    let mut engine = ServeEngine::start(ServeConfig::with_shards(2));
    engine.open(spec(1, 0.5, modes::Count)).unwrap();
    engine.close(999).unwrap(); // never existed
    let report = engine.finish();
    assert_eq!(report.outputs.len(), 1);
    assert!(!report.outputs[0].closed_early);
}

#[test]
fn shard_stats_are_consistent() {
    let mut engine = ServeEngine::start(ServeConfig::with_shards(3));
    for id in 0..5u64 {
        engine.open(spec(id, 1.0, modes::Count)).unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.shards().len(), 3);
    let mut total_batches = 0usize;
    for s in report.shards() {
        assert!(s.utilization() >= 0.0 && s.utilization() <= 1.0);
        assert_eq!(s.batches, s.batch_latency_ns.count as usize);
        total_batches += s.batches;
    }
    // 1.0s at 312.5 Hz = 313 samples = ⌈313/16⌉ = 20 batches per session.
    assert_eq!(total_batches, 5 * 20);
    assert!(report.batch_latency_percentile_s(50.0) > 0.0);
    assert!(report.batch_latency_percentile_s(99.0) >= report.batch_latency_percentile_s(50.0));
}
