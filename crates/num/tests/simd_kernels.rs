//! Property tests pinning the SIMD complex kernels to their scalar
//! references — the contract that lets the golden traces survive
//! vectorization.
//!
//! The container has no third-party crates, so instead of `proptest`
//! these drive each invariant over a deterministic [`Rng64`] sample
//! sweep. Every dispatched kernel is exercised at every SIMD level the
//! host supports, across odd lengths, unaligned sub-slices, and
//! denormal-adjacent magnitudes:
//!
//! * **bitwise** for the dispatch-stable kernels (rotations, caxpy,
//!   outer-product rows, butterflies, focus sums, the fused
//!   rotate-and-mirror) and for the whole eigensolver end to end;
//! * **≤ 1e-12 relative** for `cdot`, whose FMA lanes reassociate.
//!
//! Forcing a SIMD level mutates process-global state, so every test
//! serializes on one mutex and restores auto-detection on drop.

use std::sync::{Mutex, MutexGuard, OnceLock};

use wivi_num::rng::Rng64;
use wivi_num::simd::{self, SimdLevel};
use wivi_num::{hermitian_eig, CMatrix, Complex64};

/// Serializes tests that force a global SIMD level.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores auto-detection when a forcing test exits (even on panic).
struct ForcedGuard;
impl Drop for ForcedGuard {
    fn drop(&mut self) {
        simd::set_forced(None);
    }
}

fn force(level: SimdLevel) -> ForcedGuard {
    simd::set_forced(Some(level));
    ForcedGuard
}

/// Every level the host can actually run (scalar always).
fn available_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    if simd::avx2_supported() {
        levels.push(SimdLevel::Avx2);
    }
    if simd::avx512_supported() {
        levels.push(SimdLevel::Avx512);
    }
    levels
}

/// Odd, prime, power-of-two, and routing-boundary lengths: covers the
/// vector body, the scalar tail, and the `AVX512_MIN_N` length split.
const LENGTHS: &[usize] = &[1, 2, 3, 5, 7, 8, 13, 31, 50, 64, 127, 255, 256, 257, 625];

/// Magnitude scales: normal-range values and denormal-adjacent ones
/// whose products underflow — SIMD lanes must flush identically to the
/// scalar loop (Rust never enables FTZ/DAZ).
const SCALES: &[f64] = &[1.0, 1e-300];

fn signal(rng: &mut Rng64, len: usize, scale: f64) -> Vec<Complex64> {
    (0..len)
        .map(|_| {
            Complex64::new(
                scale * rng.gen_range(-10.0, 10.0),
                scale * rng.gen_range(-10.0, 10.0),
            )
        })
        .collect()
}

fn assert_bits_eq(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: element {i} drifted: {x:?} vs {y:?}"
        );
    }
}

/// Runs `op` once per (level, length, scale, alignment-offset) case,
/// handing it a fresh deterministic RNG so SIMD and scalar see the same
/// inputs.
fn sweep(mut op: impl FnMut(SimdLevel, usize, f64, usize, &mut Rng64)) {
    for &level in &available_levels() {
        for &len in LENGTHS {
            for &scale in SCALES {
                // Offset 1 breaks 32- and 64-byte vector alignment
                // (Complex64 keeps 16-byte alignment).
                for offset in [0usize, 1] {
                    let mut rng = Rng64::seed_from_u64(
                        0x51AD ^ (len as u64) << 16 ^ scale.to_bits() >> 32 ^ offset as u64,
                    );
                    op(level, len, scale, offset, &mut rng);
                }
            }
        }
    }
}

#[test]
fn givens_rotate_is_bitwise_scalar_at_every_level() {
    let _l = force_lock();
    sweep(|level, len, scale, offset, rng| {
        let x0 = signal(rng, len + offset, scale);
        let y0 = signal(rng, len + offset, scale);
        let (c, s) = (rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));
        let e = Complex64::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));

        let (mut xs, mut ys) = (x0.clone(), y0.clone());
        simd::givens_rotate_scalar(&mut xs[offset..], &mut ys[offset..], c, s, e);

        let _g = force(level);
        let (mut xv, mut yv) = (x0, y0);
        simd::givens_rotate(&mut xv[offset..], &mut yv[offset..], c, s, e);
        let what = format!(
            "givens_rotate {} n={len} scale={scale:e} off={offset}",
            level.name()
        );
        assert_bits_eq(&xv, &xs, &what);
        assert_bits_eq(&yv, &ys, &what);
    });
}

#[test]
fn caxpy_and_outer_row_are_bitwise_scalar_at_every_level() {
    let _l = force_lock();
    sweep(|level, len, scale, offset, rng| {
        let acc0 = signal(rng, len + offset, scale);
        let x = signal(rng, len + offset, scale);
        let a = Complex64::new(rng.gen_range(-2.0, 2.0), rng.gen_range(-2.0, 2.0));
        let s = rng.gen_range(0.0, 2.0);

        let mut acc_s = acc0.clone();
        simd::caxpy_scalar(&mut acc_s[offset..], &x[offset..], a);
        let mut row_s = acc0.clone();
        simd::accumulate_outer_row_scalar(&mut row_s[offset..], &x[offset..], a, s);

        let _g = force(level);
        let mut acc_v = acc0.clone();
        simd::caxpy(&mut acc_v[offset..], &x[offset..], a);
        let mut row_v = acc0;
        simd::accumulate_outer_row(&mut row_v[offset..], &x[offset..], a, s);
        let what = format!("{} n={len} scale={scale:e} off={offset}", level.name());
        assert_bits_eq(&acc_v, &acc_s, &format!("caxpy {what}"));
        assert_bits_eq(&row_v, &row_s, &format!("accumulate_outer_row {what}"));
    });
}

#[test]
fn butterflies_and_focus_are_bitwise_scalar_at_every_level() {
    let _l = force_lock();
    sweep(|level, len, scale, offset, rng| {
        let lo0 = signal(rng, len + offset, scale);
        let hi0 = signal(rng, len + offset, scale);
        let w = signal(rng, len + offset, 1.0);
        let t2 = signal(rng, len + offset, 1.0);

        let (mut lo_s, mut hi_s) = (lo0.clone(), hi0.clone());
        simd::butterflies_scalar(&mut lo_s[offset..], &mut hi_s[offset..], &w[offset..]);
        let focus_s = simd::focus_accumulate_scalar(&lo0[offset..], &w[offset..], &t2[offset..]);

        let _g = force(level);
        let (mut lo_v, mut hi_v) = (lo0.clone(), hi0.clone());
        simd::butterflies(&mut lo_v[offset..], &mut hi_v[offset..], &w[offset..]);
        let focus_v = simd::focus_accumulate(&lo0[offset..], &w[offset..], &t2[offset..]);
        let what = format!("{} n={len} scale={scale:e} off={offset}", level.name());
        assert_bits_eq(&lo_v, &lo_s, &format!("butterflies lo {what}"));
        assert_bits_eq(&hi_v, &hi_s, &format!("butterflies hi {what}"));
        assert_bits_eq(&focus_v, &focus_s, &format!("focus_accumulate {what}"));
    });
}

#[test]
fn cdot_matches_scalar_to_1e12_at_every_level() {
    let _l = force_lock();
    sweep(|level, len, scale, offset, rng| {
        let a = signal(rng, len + offset, scale);
        let b = signal(rng, len + offset, scale);
        let want = simd::cdot_scalar(&a[offset..], &b[offset..]);

        let _g = force(level);
        let got = simd::cdot(&a[offset..], &b[offset..]);
        let norm: f64 = a[offset..]
            .iter()
            .zip(&b[offset..])
            .map(|(x, y)| x.abs() * y.abs())
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        assert!(
            (got - want).abs() <= 1e-12 * norm,
            "cdot {} n={len} scale={scale:e} off={offset}: {got:?} vs {want:?}",
            level.name()
        );
    });
}

#[test]
fn fused_rotate_mirror_is_bitwise_scalar_at_every_level() {
    let _l = force_lock();
    for &level in &available_levels() {
        for &n in &[2usize, 3, 5, 8, 13, 50] {
            for &scale in SCALES {
                let mut rng = Rng64::seed_from_u64(0xF0CA ^ n as u64);
                let m0 = signal(&mut rng, n * n, scale);
                let (c, s) = (rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));
                let e = Complex64::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));
                for &(p, q) in &[(0, 1), (0, n - 1), (n / 2, n - 1)] {
                    if p >= q {
                        continue;
                    }
                    let mut ms = m0.clone();
                    simd::rotate_rows_mirror_scalar(&mut ms, n, p, q, c, s, e);

                    let _g = force(level);
                    let mut mv = m0.clone();
                    simd::rotate_rows_mirror(&mut mv, n, p, q, c, s, e);
                    assert_bits_eq(
                        &mv,
                        &ms,
                        &format!(
                            "rotate_rows_mirror {} n={n} p={p} q={q} scale={scale:e}",
                            level.name()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn whole_eigensolver_is_bitwise_identical_at_every_level() {
    let _l = force_lock();
    for &n in &[5usize, 13, 50] {
        let mut rng = Rng64::seed_from_u64(0xE16 ^ n as u64);
        let a = CMatrix::from_fn(n, n, |_, _| {
            Complex64::new(rng.gen_range(-10.0, 10.0), rng.gen_range(-10.0, 10.0))
        });
        // (A + A^H)/2 is bit-Hermitian: both (i,j) and (j,i) fold the
        // same two values through one commuting add, so the mirror
        // fast path engages exactly as it does on real correlation
        // matrices.
        let mut h = &a + &a.hermitian();
        h.scale_mut(0.5);

        let reference = {
            let _g = force(SimdLevel::Scalar);
            hermitian_eig(&h)
        };
        for &level in &available_levels()[1..] {
            let _g = force(level);
            let got = hermitian_eig(&h);
            for (i, (ev_ref, ev_got)) in reference.values.iter().zip(&got.values).enumerate() {
                assert_eq!(
                    ev_ref.to_bits(),
                    ev_got.to_bits(),
                    "eigenvalue {i} drifted at {} (n={n})",
                    level.name()
                );
            }
            assert_bits_eq(
                got.vectors.as_slice(),
                reference.vectors.as_slice(),
                &format!("eigenvectors at {} (n={n})", level.name()),
            );
        }
    }
}
