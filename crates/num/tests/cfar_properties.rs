//! Property-style tests for the CFAR detector and the grid indexing
//! helper, in the deterministic seeded-[`Rng64`] sweep style of
//! `merge_properties.rs`: each case generates a random image (noise
//! field plus optional injected targets) and checks the detector's
//! defining invariants — scale invariance of the detection set, a
//! bounded false-alarm rate on target-free noise, and exact recovery of
//! well-separated injected targets.

use wivi_num::cfar::{ca_cfar_2d, CfarConfig, CfarDetection};
use wivi_num::grid2d::Grid2d;
use wivi_num::rng::{complex_gaussian, Rng64};

const CASES: u64 = 48;

/// A random exponential-ish noise field: `|CN(0, σ²)|²` per cell — the
/// magnitude-squared statistics a matched-filter image has on a
/// target-free window.
fn noise_image(rng: &mut Rng64, grid: Grid2d, sigma: f64) -> Vec<f64> {
    (0..grid.len())
        .map(|_| complex_gaussian(rng, sigma).norm_sqr())
        .collect()
}

fn random_grid(rng: &mut Rng64) -> Grid2d {
    Grid2d::new(
        8 + rng.gen_below(12) as usize,
        8 + rng.gen_below(12) as usize,
    )
}

fn keys(dets: &[CfarDetection]) -> Vec<(usize, usize)> {
    dets.iter().map(|d| (d.ix, d.iy)).collect()
}

#[test]
fn detections_are_invariant_under_global_power_scaling() {
    // The C in CFAR: the test is a pure power ratio, so scaling the
    // whole image — RX gain, TX boost, path loss — must not change the
    // detection set.
    let mut rng = Rng64::seed_from_u64(401);
    let cfg = CfarConfig::default();
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let mut img = noise_image(&mut rng, grid, 1.0);
        // Inject up to three strong cells.
        for _ in 0..rng.gen_below(4) {
            let i = rng.gen_below(grid.len() as u64) as usize;
            img[i] += 50.0 + rng.gen_range(0.0, 100.0);
        }
        let base = ca_cfar_2d(&img, grid, &cfg);
        for scale in [1e-6, 0.125, 3.0, 4096.0] {
            let scaled: Vec<f64> = img.iter().map(|p| p * scale).collect();
            let got = ca_cfar_2d(&scaled, grid, &cfg);
            assert_eq!(
                keys(&got),
                keys(&base),
                "case {case}: detection set changed under ×{scale}"
            );
            // Powers and noise estimates scale along; SNR does not.
            for (a, b) in got.iter().zip(&base) {
                assert!((a.snr_db() - b.snr_db()).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn flat_noise_false_alarm_rate_is_bounded_and_falls_with_threshold() {
    // On a target-free noise field the ratio threshold over an 8+-cell
    // average plus the peak requirement keeps false alarms rare. The
    // exact rate is distribution-dependent; the invariants worth
    // pinning are an aggregate bound well below one alarm per image,
    // and monotone decay as the threshold rises.
    let mut rng = Rng64::seed_from_u64(402);
    let rate_at = |threshold_db: f64, rng: &mut Rng64| {
        let cfg = CfarConfig {
            threshold_db,
            ..CfarConfig::default()
        };
        let mut cells = 0usize;
        let mut alarms = 0usize;
        for _ in 0..CASES {
            let grid = random_grid(rng);
            let img = noise_image(rng, grid, 2.0);
            cells += grid.len();
            alarms += ca_cfar_2d(&img, grid, &cfg).len();
        }
        (alarms as f64 / cells as f64, alarms, cells)
    };
    let (r7, a7, c7) = rate_at(7.0, &mut rng);
    let (r9, _, _) = rate_at(9.0, &mut rng);
    let (r12, _, _) = rate_at(12.0, &mut rng);
    assert!(
        r7 < 2e-2,
        "7 dB false-alarm rate {r7:.2e} ({a7}/{c7} cells)"
    );
    assert!(r9 < 3e-3, "9 dB false-alarm rate {r9:.2e}");
    assert!(r12 < 1e-3, "12 dB false-alarm rate {r12:.2e}");
    assert!(
        r12 <= r9 && r9 <= r7,
        "rate must fall with threshold: {r7:.2e} → {r9:.2e} → {r12:.2e}"
    );
}

#[test]
fn injected_separated_targets_are_all_recovered() {
    let mut rng = Rng64::seed_from_u64(403);
    let cfg = CfarConfig::default();
    for case in 0..CASES {
        let grid = Grid2d::new(16 + rng.gen_below(8) as usize, 16);
        let mut img = noise_image(&mut rng, grid, 0.3);
        // Targets on a coarse lattice, interior only, far enough apart
        // that no target sits in another's training ring.
        let mut targets: Vec<(usize, usize)> = Vec::new();
        for _ in 0..(1 + rng.gen_below(3)) {
            let ix = 4 + 7 * rng.gen_below(((grid.nx - 5) / 7) as u64 + 1) as usize;
            let iy = 4 + 7 * rng.gen_below(((grid.ny - 5) / 7) as u64 + 1) as usize;
            if !targets.contains(&(ix, iy)) {
                img[grid.idx(ix, iy)] += 200.0;
                targets.push((ix, iy));
            }
        }
        targets.sort_by_key(|&(ix, iy)| grid.idx(ix, iy));
        let got = keys(&ca_cfar_2d(&img, grid, &cfg));
        for t in &targets {
            assert!(
                got.contains(t),
                "case {case}: target {t:?} missed ({got:?})"
            );
        }
    }
}

#[test]
fn grid2d_roundtrip_holds_for_random_shapes() {
    let mut rng = Rng64::seed_from_u64(404);
    for _ in 0..CASES {
        let grid = random_grid(&mut rng);
        // Flat scan order is (0,0), (1,0), … — x fastest.
        assert_eq!(grid.coords(0), (0, 0));
        assert_eq!(grid.coords(1), (1, 0));
        for _ in 0..32 {
            let i = rng.gen_below(grid.len() as u64) as usize;
            let (ix, iy) = grid.coords(i);
            assert_eq!(grid.idx(ix, iy), i);
            assert!(grid.contains(ix as isize, iy as isize));
        }
        assert!(!grid.contains(grid.nx as isize, 0));
        assert!(!grid.contains(0, grid.ny as isize));
        assert!(!grid.contains(-1, -1));
    }
}
