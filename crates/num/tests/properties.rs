//! Property-style tests for the numerics substrate.
//!
//! The container has no third-party crates, so instead of `proptest` these
//! drive each invariant over a deterministic [`Rng64`] sample sweep — same
//! properties, reproducible cases.

use wivi_num::rng::Rng64;
use wivi_num::{fft, hermitian_eig, CMatrix, Complex64};

const CASES: u64 = 64;

fn random_complex(rng: &mut Rng64) -> Complex64 {
    Complex64::new(rng.gen_range(-10.0, 10.0), rng.gen_range(-10.0, 10.0))
}

fn random_signal(rng: &mut Rng64, len: usize) -> Vec<Complex64> {
    (0..len).map(|_| random_complex(rng)).collect()
}

fn random_hermitian(rng: &mut Rng64, n: usize) -> CMatrix {
    let a = CMatrix::from_fn(n, n, |_, _| random_complex(rng));
    // (A + A^H)/2 is Hermitian for any A.
    let mut h = &a + &a.hermitian();
    h.scale_mut(0.5);
    h
}

#[test]
fn fft_ifft_round_trip() {
    let mut rng = Rng64::seed_from_u64(101);
    for _ in 0..CASES {
        let x = random_signal(&mut rng, 64);
        let y = fft::ifft_owned(&fft::fft_owned(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}

#[test]
fn fft_preserves_energy() {
    let mut rng = Rng64::seed_from_u64(102);
    for _ in 0..CASES {
        let x = random_signal(&mut rng, 32);
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = fft::fft_owned(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time - freq).abs() <= 1e-9 * (1.0 + time));
    }
}

#[test]
fn fft_is_linear() {
    let mut rng = Rng64::seed_from_u64(103);
    for _ in 0..CASES {
        let x = random_signal(&mut rng, 16);
        let y = random_signal(&mut rng, 16);
        let k = rng.gen_range(-5.0, 5.0);
        let lhs: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + b.scale(k)).collect();
        let f_lhs = fft::fft_owned(&lhs);
        let fx = fft::fft_owned(&x);
        let fy = fft::fft_owned(&y);
        for i in 0..16 {
            assert!((f_lhs[i] - (fx[i] + fy[i].scale(k))).abs() < 1e-8);
        }
    }
}

#[test]
fn eig_reconstructs_hermitian() {
    let mut rng = Rng64::seed_from_u64(104);
    for case in 0..CASES {
        let a = random_hermitian(&mut rng, 6);
        let e = hermitian_eig(&a);
        let err = (&e.reconstruct() - &a).frobenius_norm();
        assert!(
            err < 1e-8 * (1.0 + a.frobenius_norm()),
            "case {case}: err {err}"
        );
    }
}

#[test]
fn eig_vectors_orthonormal() {
    let mut rng = Rng64::seed_from_u64(105);
    for _ in 0..CASES {
        let a = random_hermitian(&mut rng, 5);
        let e = hermitian_eig(&a);
        let gram = &e.vectors.hermitian() * &e.vectors;
        assert!((&gram - &CMatrix::identity(5)).frobenius_norm() < 1e-8);
    }
}

#[test]
fn eig_values_sorted_and_real_trace_preserved() {
    let mut rng = Rng64::seed_from_u64(106);
    for _ in 0..CASES {
        let a = random_hermitian(&mut rng, 5);
        let e = hermitian_eig(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        let trace: f64 = (0..5).map(|i| a[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * (1.0 + trace.abs()));
    }
}

#[test]
fn complex_field_axioms() {
    let mut rng = Rng64::seed_from_u64(107);
    for _ in 0..CASES {
        let a = random_complex(&mut rng);
        let b = random_complex(&mut rng);
        let c = random_complex(&mut rng);
        // Distributivity and associativity within numeric tolerance.
        assert!(
            ((a + b) * c - (a * c + b * c)).abs() < 1e-9 * (1.0 + c.abs() * (a.abs() + b.abs()))
        );
        assert!(((a * b) * c - a * (b * c)).abs() < 1e-9 * (1.0 + a.abs() * b.abs() * c.abs()));
        // |ab| = |a||b|.
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }
}

#[test]
fn percentile_is_monotone() {
    let mut rng = Rng64::seed_from_u64(108);
    for _ in 0..CASES {
        let len = 3 + rng.gen_below(37) as usize;
        let mut xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0, 100.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p1 = rng.gen_range(0.0, 100.0);
        let p2 = rng.gen_range(0.0, 100.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = wivi_num::stats::percentile(&xs, lo);
        let b = wivi_num::stats::percentile(&xs, hi);
        assert!(a <= b + 1e-12);
    }
}

#[test]
fn cdf_bounds_and_monotonicity() {
    let mut rng = Rng64::seed_from_u64(109);
    for _ in 0..CASES {
        let len = 1 + rng.gen_below(49) as usize;
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0, 50.0)).collect();
        let q = rng.next_f64();
        let cdf = wivi_num::stats::Cdf::new(&xs);
        let v = cdf.quantile(q);
        assert!(v >= cdf.min() - 1e-12 && v <= cdf.max() + 1e-12);
        assert!(cdf.eval(cdf.min() - 1.0) == 0.0);
        assert!(cdf.eval(cdf.max()) == 1.0);
    }
}

/// Brute-force optimal assignment: enumerate every per-row choice
/// (a column or a miss), reject column collisions, take the minimum.
fn brute_force_assignment(costs: &[Vec<f64>], miss: &[f64]) -> f64 {
    let n_rows = costs.len();
    let n_cols = costs.first().map_or(0, Vec::len);
    let mut best = f64::INFINITY;
    // Each row's choice encoded in base (n_cols + 1); digit n_cols = miss.
    let total = (n_cols as u64 + 1).pow(n_rows as u32);
    for code in 0..total {
        let mut c = code;
        let mut used = 0u32;
        let mut cost = 0.0;
        let mut ok = true;
        for i in 0..n_rows {
            let pick = (c % (n_cols as u64 + 1)) as usize;
            c /= n_cols as u64 + 1;
            if pick == n_cols {
                cost += miss[i];
            } else {
                if used & (1 << pick) != 0 {
                    ok = false;
                    break;
                }
                used |= 1 << pick;
                cost += costs[i][pick];
            }
        }
        if ok && cost < best {
            best = cost;
        }
    }
    best
}

#[test]
fn assignment_solver_matches_brute_force() {
    let mut rng = Rng64::seed_from_u64(110);
    for case in 0..CASES {
        let n_rows = 1 + rng.gen_below(4) as usize;
        let n_cols = 1 + rng.gen_below(4) as usize;
        let costs: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| {
                (0..n_cols)
                    .map(|_| {
                        // ~20 % of pairings gated out.
                        if rng.gen_bool(0.2) {
                            f64::INFINITY
                        } else {
                            rng.gen_range(0.0, 10.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let miss: Vec<f64> = (0..n_rows).map(|_| rng.gen_range(0.0, 10.0)).collect();

        let solved = wivi_num::solve_assignment(&costs, &miss);
        let brute = brute_force_assignment(&costs, &miss);
        assert!(
            (solved.total_cost - brute).abs() < 1e-9,
            "case {case}: solver {} vs brute force {brute} ({costs:?}, miss {miss:?})",
            solved.total_cost
        );

        // The reported pairing must be feasible and must reproduce the
        // reported total cost.
        let mut used = vec![false; n_cols];
        let mut replay = 0.0;
        for (i, p) in solved.pairing.iter().enumerate() {
            match p {
                None => replay += miss[i],
                Some(j) => {
                    assert!(!used[*j], "case {case}: column {j} assigned twice");
                    assert!(costs[i][*j].is_finite(), "case {case}: gated pairing used");
                    used[*j] = true;
                    replay += costs[i][*j];
                }
            }
        }
        assert!((replay - solved.total_cost).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn kalman_tracks_random_constant_velocity_targets() {
    let mut rng = Rng64::seed_from_u64(111);
    for case in 0..CASES {
        let v_true = rng.gen_range(-20.0, 20.0);
        let x0 = rng.gen_range(-60.0, 60.0);
        let r: f64 = 0.5;
        let dt = 0.05;
        let mut kf = wivi_num::Kalman2::from_observation(x0, 4.0, 100.0);
        for i in 1..300 {
            let t = i as f64 * dt;
            kf.predict(dt, 1.0);
            let z = x0 + v_true * t + wivi_num::rng::normal(&mut rng, 0.0, r.sqrt());
            kf.update(z, r);
        }
        assert!(
            (kf.velocity() - v_true).abs() < 2.0,
            "case {case}: v̂ {} vs {v_true}",
            kf.velocity()
        );
    }
}
