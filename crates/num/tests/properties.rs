//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use wivi_num::{fft, hermitian_eig, CMatrix, Complex64};

fn complex_strategy() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im))
}

fn signal_strategy(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec(complex_strategy(), len)
}

fn hermitian_strategy(n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex_strategy(), n * n).prop_map(move |v| {
        let a = CMatrix::from_rows(n, n, v);
        // (A + A^H)/2 is Hermitian for any A.
        let mut h = &a + &a.hermitian();
        h.scale_mut(0.5);
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_round_trip(x in signal_strategy(64)) {
        let y = fft::ifft_owned(&fft::fft_owned(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_preserves_energy(x in signal_strategy(32)) {
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = fft::fft_owned(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((time - freq).abs() <= 1e-9 * (1.0 + time));
    }

    #[test]
    fn fft_is_linear(x in signal_strategy(16), y in signal_strategy(16), k in -5.0f64..5.0) {
        let lhs: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + b.scale(k)).collect();
        let f_lhs = fft::fft_owned(&lhs);
        let fx = fft::fft_owned(&x);
        let fy = fft::fft_owned(&y);
        for i in 0..16 {
            prop_assert!((f_lhs[i] - (fx[i] + fy[i].scale(k))).abs() < 1e-8);
        }
    }

    #[test]
    fn eig_reconstructs_hermitian(a in hermitian_strategy(6)) {
        let e = hermitian_eig(&a);
        let err = (&e.reconstruct() - &a).frobenius_norm();
        prop_assert!(err < 1e-8 * (1.0 + a.frobenius_norm()), "err {err}");
    }

    #[test]
    fn eig_vectors_orthonormal(a in hermitian_strategy(5)) {
        let e = hermitian_eig(&a);
        let gram = &e.vectors.hermitian() * &e.vectors;
        prop_assert!((&gram - &CMatrix::identity(5)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn eig_values_sorted_and_real_trace_preserved(a in hermitian_strategy(5)) {
        let e = hermitian_eig(&a);
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        let trace: f64 = (0..5).map(|i| a[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * (1.0 + trace.abs()));
    }

    #[test]
    fn complex_field_axioms(a in complex_strategy(), b in complex_strategy(), c in complex_strategy()) {
        // Distributivity and associativity within numeric tolerance.
        prop_assert!(((a + b) * c - (a * c + b * c)).abs() < 1e-9 * (1.0 + c.abs() * (a.abs() + b.abs())));
        prop_assert!(((a * b) * c - a * (b * c)).abs() < 1e-9 * (1.0 + a.abs() * b.abs() * c.abs()));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn percentile_is_monotone(mut xs in proptest::collection::vec(-100.0f64..100.0, 3..40),
                              p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = wivi_num::stats::percentile(&xs, lo);
        let b = wivi_num::stats::percentile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn cdf_bounds_and_monotonicity(xs in proptest::collection::vec(-50.0f64..50.0, 1..50), q in 0.0f64..1.0) {
        let cdf = wivi_num::stats::Cdf::new(&xs);
        let v = cdf.quantile(q);
        prop_assert!(v >= cdf.min() - 1e-12 && v <= cdf.max() + 1e-12);
        prop_assert!(cdf.eval(cdf.min() - 1.0) == 0.0);
        prop_assert!(cdf.eval(cdf.max()) == 1.0);
    }
}
