//! Property-style tests for the event-stream merge kernel.
//!
//! Like `properties.rs`, these replace `proptest` with deterministic
//! [`Rng64`] sample sweeps: each case generates a random set of sorted
//! per-session streams (the shape the serving engine produces) and checks
//! the merge invariants — globally time-ordered output, stable
//! tie-breaking by session id, per-stream subsequence preservation, and
//! invariance under stream-order shuffling.

use wivi_num::rng::Rng64;
use wivi_num::{merge_streams, TimedStream};

const CASES: u64 = 64;

/// An event stand-in: (time, payload). The payload makes items
/// distinguishable so subsequence checks are exact.
type Ev = (f64, u64);

/// Generates a random session's stream: sorted times (with deliberate
/// duplicates, both within and across streams — ridge events genuinely
/// share window-centre timestamps) and unique payloads.
fn random_stream(rng: &mut Rng64, tag: u64, max_len: usize) -> TimedStream<Ev> {
    let len = rng.gen_below(max_len as u64 + 1) as usize;
    let mut times: Vec<f64> = (0..len)
        .map(|_| {
            // Quantized times force cross- and within-stream ties.
            (rng.gen_below(20) as f64) * 0.25
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let items = times
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, tag * 1_000 + i as u64))
        .collect();
    TimedStream { tag, items }
}

fn random_streams(rng: &mut Rng64, max_streams: usize, max_len: usize) -> Vec<TimedStream<Ev>> {
    let n = 1 + rng.gen_below(max_streams as u64) as usize;
    (0..n)
        .map(|k| random_stream(rng, k as u64 + 1, max_len))
        .collect()
}

/// Fisher–Yates over the stream order, seeded.
fn shuffled<T: Clone>(rng: &mut Rng64, xs: &[T]) -> Vec<T> {
    let mut out = xs.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
    out
}

#[test]
fn output_is_sorted_by_time_then_tag() {
    let mut rng = Rng64::seed_from_u64(301);
    for _ in 0..CASES {
        let streams = random_streams(&mut rng, 8, 12);
        let out = merge_streams(&streams, |e| e.0);
        for w in out.windows(2) {
            let (ta, a) = (&w[0].1 .0, w[0].0);
            let (tb, b) = (&w[1].1 .0, w[1].0);
            match ta.total_cmp(tb) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    assert!(a <= b, "tie at t={ta} ordered {a} after {b}")
                }
                std::cmp::Ordering::Greater => panic!("time went backwards: {ta} > {tb}"),
            }
        }
    }
}

#[test]
fn every_stream_survives_as_a_subsequence() {
    let mut rng = Rng64::seed_from_u64(302);
    for _ in 0..CASES {
        let streams = random_streams(&mut rng, 6, 10);
        let out = merge_streams(&streams, |e| e.0);
        let total: usize = streams.iter().map(|s| s.items.len()).sum();
        assert_eq!(out.len(), total, "items lost or duplicated");
        for s in &streams {
            let got: Vec<Ev> = out
                .iter()
                .filter(|(tag, _)| *tag == s.tag)
                .map(|(_, e)| *e)
                .collect();
            assert_eq!(got, s.items, "stream {} reordered or corrupted", s.tag);
        }
    }
}

#[test]
fn merge_is_invariant_under_stream_shuffling() {
    let mut rng = Rng64::seed_from_u64(303);
    for _ in 0..CASES {
        let streams = random_streams(&mut rng, 8, 10);
        let baseline = merge_streams(&streams, |e| e.0);
        for _ in 0..3 {
            let perm = shuffled(&mut rng, &streams);
            let out = merge_streams(&perm, |e| e.0);
            assert_eq!(out, baseline, "submission order leaked into the merge");
        }
    }
}

#[test]
fn single_stream_merges_to_itself() {
    let mut rng = Rng64::seed_from_u64(304);
    for _ in 0..CASES {
        let s = random_stream(&mut rng, 5, 16);
        let out = merge_streams(std::slice::from_ref(&s), |e| e.0);
        let items: Vec<Ev> = out.into_iter().map(|(_, e)| e).collect();
        assert_eq!(items, s.items);
    }
}

#[test]
fn merge_equals_stable_sort_of_concatenation() {
    // The spec in one line: merging sorted streams must equal
    // concatenating (in tag order) and stable-sorting by time.
    let mut rng = Rng64::seed_from_u64(305);
    for _ in 0..CASES {
        let streams = random_streams(&mut rng, 6, 10);
        let out = merge_streams(&streams, |e| e.0);

        let mut tagged: Vec<(u64, Ev)> = Vec::new();
        let mut by_tag: Vec<&TimedStream<Ev>> = streams.iter().collect();
        by_tag.sort_by_key(|s| s.tag);
        for s in by_tag {
            tagged.extend(s.items.iter().map(|e| (s.tag, *e)));
        }
        tagged.sort_by(|a, b| a.1 .0.total_cmp(&b.1 .0));
        assert_eq!(out, tagged);
    }
}
