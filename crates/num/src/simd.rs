//! Runtime-dispatched SIMD kernels for the complex hot loops.
//!
//! The whole pipeline funnels into a handful of inner loops — the Jacobi
//! eigensolver's Givens rotations, the correlation outer-product
//! accumulation, the FFT butterflies, the MUSIC steering projection, and
//! the imaging focus sweep. This module vectorizes exactly those, with a
//! dispatch contract the golden-trace suite depends on:
//!
//! **Bitwise pinning.** Every kernel in this module except [`cdot`]
//! produces output *bit-identical* to its `*_scalar` reference on every
//! input, on every dispatch level. This is achievable because the
//! kernels vectorize across *independent outputs* (different matrix
//! entries, different accumulators, different cells) while keeping each
//! output's arithmetic sequence — operand order, rounding points, no
//! FMA contraction — exactly the scalar one. Two IEEE-754 facts carry
//! the proofs: `a·b` and `b·a` round identically (so complex
//! multiplication commutes bitwise), and negation is a sign-bit flip (so
//! conjugation via XOR mask equals the scalar `-im`). The AVX2/AVX-512
//! paths therefore use explicit `mul`/`add`/`sub`/`addsub` — never
//! `fma` (the AVX-512 paths emulate `addsub` with an add, a sub, and a
//! lane blend, each lane still one IEEE operation) — and the golden
//! fixtures pass unchanged whichever level dispatch lands on.
//!
//! **Epsilon pinning.** [`cdot`] is the one reassociated kernel: four
//! interleaved accumulators plus FMA, ≈ 4× faster on long vectors but
//! only ≤ 1e-12-relatively equal to the sequential fold. It is kept off
//! the golden path (benches, diagnostics, and callers that tolerate
//! reassociation) — see DESIGN.md §12 for the per-kernel policy table.
//!
//! **Dispatch.** [`level`] detects AVX2 once (`is_x86_feature_detected!`)
//! and honours two overrides: the `WIVI_NO_SIMD=1` environment variable
//! (read once, for CI's forced-scalar leg) and the runtime
//! [`set_forced`] hook (for in-process scalar-vs-SIMD comparisons in
//! tests and the kernels bench). On non-x86 targets everything resolves
//! to the portable scalar fallbacks, which are unrolled four-wide where
//! it helps the autovectorizer but remain per-output sequential.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::Complex64;

/// The instruction set a kernel call will use. Levels are ordered:
/// forcing a level above what the CPU supports clamps down.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar fallback (always available, the reference).
    Scalar,
    /// AVX2 256-bit paths (x86-64 with runtime-detected support).
    Avx2,
    /// AVX-512 512-bit paths (requires `avx512f` + `avx512dq`).
    Avx512,
}

impl SimdLevel {
    /// Stable lower-case name for reports
    /// (`"scalar"` / `"avx2"` / `"avx512"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// 0 = auto (detected), 1 = force scalar, 2 = force AVX2, 3 = force
/// AVX-512 (forced levels are clamped to what the CPU supports).
static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

fn detected() -> SimdLevel {
    *DETECTED.get_or_init(|| {
        if std::env::var("WIVI_NO_SIMD").is_ok_and(|v| v == "1") {
            return SimdLevel::Scalar;
        }
        // `WIVI_SIMD_LEVEL=scalar|avx2|avx512` caps auto-detection — the
        // benchmarking knob for comparing levels across processes.
        let cap = match std::env::var("WIVI_SIMD_LEVEL").as_deref() {
            Ok("scalar") => SimdLevel::Scalar,
            Ok("avx2") => SimdLevel::Avx2,
            _ => SimdLevel::Avx512,
        };
        #[allow(unused_mut)]
        let mut hw = SimdLevel::Scalar;
        #[cfg(target_arch = "x86_64")]
        {
            // The AVX-512 level also requires AVX2: some of its kernels
            // delegate to the 256-bit implementations.
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                hw = SimdLevel::Avx512;
            } else if std::arch::is_x86_feature_detected!("avx2") {
                hw = SimdLevel::Avx2;
            }
        }
        hw.min(cap)
    })
}

/// The dispatch level kernel calls resolve to right now.
pub fn level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => detected().min(SimdLevel::Avx2),
        3 => detected(), // "force AVX-512" still requires hardware support
        _ => detected(),
    }
}

/// Overrides dispatch at runtime: `Some(Scalar)` forces the reference
/// path, `Some(Avx2)`/`Some(Avx512)` request that level (clamped to
/// hardware support), `None` restores auto-detection. Intended for the
/// kernels bench and the scalar-vs-SIMD property tests; affects all
/// threads.
pub fn set_forced(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(SimdLevel::Scalar) => 1,
        Some(SimdLevel::Avx2) => 2,
        Some(SimdLevel::Avx512) => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// `true` if the CPU supports the AVX2 paths (regardless of overrides).
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` if the CPU supports the AVX-512 paths (regardless of
/// overrides).
pub fn avx512_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` if the CPU additionally supports FMA (used only by [`cdot`]).
pub fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Minimum element count for which the 512-bit paths beat the 256-bit
/// ones on contiguous kernels (measured with the kernels bench: at the
/// length-50 Jacobi rows AVX-512 loses ~2× to AVX2 — wider-vector
/// startup and remainder overhead dominates — while at the 625-element
/// aperture it wins ~1.4×). Length-dependent *routing* only; every
/// route is bitwise pinned to the same scalar reference.
const AVX512_MIN_N: usize = 256;

// ---------------------------------------------------------------------------
// Givens rotation (the Jacobi eigensolver's inner loop)
// ---------------------------------------------------------------------------

/// Applies one complex Givens rotation to a pair of equal-length slices,
/// in place:
///
/// ```text
/// x[k] ← x[k]·c − (e·y[k])·s
/// y[k] ← (ē·x[k])·s + y[k]·c      (ē = conj(e), x[k] the original value)
/// ```
///
/// This is both the row update (`A ← V^H·A`, `e = e^{+iφ}`) and — via
/// [`givens_rotate_cols`] on strided columns — the column updates
/// (`A ← A·V`, `U ← U·V`, `e = e^{−iφ}`) of the Jacobi sweep. Bitwise
/// pinned to [`givens_rotate_scalar`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn givens_rotate(x: &mut [Complex64], y: &mut [Complex64], c: f64, s: f64, e: Complex64) {
    assert_eq!(x.len(), y.len(), "rotation pair length mismatch");
    #[cfg(target_arch = "x86_64")]
    match level() {
        SimdLevel::Avx512 if x.len() >= AVX512_MIN_N => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx512::givens_rotate(x, y, c, s, e) };
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx2::givens_rotate(x, y, c, s, e) };
        }
        SimdLevel::Scalar => {}
    }
    givens_rotate_scalar(x, y, c, s, e);
}

/// Scalar reference for [`givens_rotate`].
pub fn givens_rotate_scalar(
    x: &mut [Complex64],
    y: &mut [Complex64],
    c: f64,
    s: f64,
    e: Complex64,
) {
    assert_eq!(x.len(), y.len(), "rotation pair length mismatch");
    let ec = e.conj();
    for (xk, yk) in x.iter_mut().zip(y.iter_mut()) {
        let x0 = *xk;
        let y0 = *yk;
        *xk = x0.scale(c) - (e * y0).scale(s);
        *yk = (ec * x0).scale(s) + y0.scale(c);
    }
}

/// [`givens_rotate`] over the two strided columns `p` and `q` of a
/// row-major `rows × stride` buffer: rotates the element pairs
/// `(data[k·stride + p], data[k·stride + q])` for `k = 0..rows`.
/// Bitwise pinned to the scalar reference.
///
/// # Panics
/// Panics if the buffer is not `rows·stride` long or a column index is
/// out of range.
pub fn givens_rotate_cols(
    data: &mut [Complex64],
    stride: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    e: Complex64,
) {
    assert!(
        stride > 0 && data.len().is_multiple_of(stride),
        "ragged buffer"
    );
    assert!(p < stride && q < stride && p != q, "bad column pair");
    // The strided gathers don't widen profitably to 512 bits, so the
    // AVX-512 level reuses the 256-bit path.
    #[cfg(target_arch = "x86_64")]
    match level() {
        SimdLevel::Avx512 | SimdLevel::Avx2 => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx2::givens_rotate_cols(data, stride, p, q, c, s, e) };
        }
        SimdLevel::Scalar => {}
    }
    givens_rotate_cols_scalar(data, stride, p, q, c, s, e);
}

/// Scalar reference for [`givens_rotate_cols`].
pub fn givens_rotate_cols_scalar(
    data: &mut [Complex64],
    stride: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    e: Complex64,
) {
    let ec = e.conj();
    let rows = data.len() / stride;
    for k in 0..rows {
        let base = k * stride;
        let x0 = data[base + p];
        let y0 = data[base + q];
        data[base + p] = x0.scale(c) - (e * y0).scale(s);
        data[base + q] = (ec * x0).scale(s) + y0.scale(c);
    }
}

/// Hermitian mirror of one rotated row pair of a square row-major
/// matrix: writes `data[k·stride + p] = conj(data[p·stride + k])` and
/// `data[k·stride + q] = conj(data[q·stride + k])` for every `k`
/// outside `{p, q}`. Conjugation is exact (a sign-bit flip), so this
/// reproduces the bits a direct column rotation of a bit-Hermitian
/// matrix would produce — see [`crate::eig`]. Pure data movement, no
/// dispatch: one tight branch-free pass per column.
///
/// # Panics
/// Panics unless the buffer is square (`stride × stride`) and
/// `p != q` are in range.
pub fn conj_mirror_cols(data: &mut [Complex64], stride: usize, p: usize, q: usize) {
    assert!(
        stride > 0 && data.len() == stride * stride,
        "mirror requires a square buffer"
    );
    assert!(p < stride && q < stride && p != q, "bad column pair");
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    // SAFETY: all offsets are `k·stride + c` with `k, c < stride`, in
    // bounds by the asserts above. The reads come from rows p and q and
    // the writes go to rows k ∉ {p, q}, so no write clobbers a pending
    // read.
    unsafe {
        let base = data.as_mut_ptr();
        let row_p = base.add(p * stride) as *const Complex64;
        let row_q = base.add(q * stride) as *const Complex64;
        let mirror_range = |from: usize, to: usize| {
            for k in from..to {
                *base.add(k * stride + p) = (*row_p.add(k)).conj();
                *base.add(k * stride + q) = (*row_q.add(k)).conj();
            }
        };
        mirror_range(0, lo);
        mirror_range(lo + 1, hi);
        mirror_range(hi + 1, stride);
    }
}

/// Fused Jacobi pivot update for a bit-Hermitian square matrix: applies
/// the row rotation [`givens_rotate`] to rows `p` and `q` (`e` is the
/// row-update phase `e^{+iφ}`), then mirrors the rotated rows into
/// columns `p` and `q` as in [`conj_mirror_cols`] — one pass, one
/// dispatch per pivot.
///
/// The mirror **skips** `k ∈ {p, q}`: mirroring `k = p` mid-pass would
/// overwrite `data[p·stride + q]` (= `conj` of the rotated `row_q[p]`)
/// before the rotation of index `q` reads the original value, changing
/// the result. The caller clamps the four `{p, q} × {p, q}` entries
/// afterwards exactly as it would after the unfused sequence.
///
/// Bitwise pinned to [`rotate_rows_mirror_scalar`] (the mirror is pure
/// sign-bit data movement of final rotated values, so fusing does not
/// change any arithmetic).
///
/// # Panics
/// Panics unless the buffer is square (`stride × stride`) and
/// `p < q < stride`.
pub fn rotate_rows_mirror(
    data: &mut [Complex64],
    stride: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    e: Complex64,
) {
    assert!(
        stride > 0 && data.len() == stride * stride,
        "mirror requires a square buffer"
    );
    assert!(p < q && q < stride, "row pair must satisfy p < q < stride");
    #[cfg(target_arch = "x86_64")]
    match level() {
        SimdLevel::Avx512 => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx512::rotate_rows_mirror(data, stride, p, q, c, s, e) };
        }
        // SAFETY: level() reports this tier only after runtime CPU
        // detection confirmed the kernel's target features.
        SimdLevel::Avx2 => return unsafe { avx2::rotate_rows_mirror(data, stride, p, q, c, s, e) },
        SimdLevel::Scalar => {}
    }
    rotate_rows_mirror_scalar(data, stride, p, q, c, s, e);
}

/// Scalar reference for [`rotate_rows_mirror`]: the unfused
/// rotate-then-mirror sequence.
pub fn rotate_rows_mirror_scalar(
    data: &mut [Complex64],
    stride: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    e: Complex64,
) {
    assert!(
        stride > 0 && data.len() == stride * stride,
        "mirror requires a square buffer"
    );
    assert!(p < q && q < stride, "row pair must satisfy p < q < stride");
    {
        let (head, tail) = data.split_at_mut(q * stride);
        let row_p = &mut head[p * stride..(p + 1) * stride];
        let row_q = &mut tail[..stride];
        givens_rotate_scalar(row_p, row_q, c, s, e);
    }
    conj_mirror_cols(data, stride, p, q);
}

// ---------------------------------------------------------------------------
// caxpy (the MUSIC steering projection)
// ---------------------------------------------------------------------------

/// `acc[k] += a·x[k]` — the accumulation step of the loop-interchanged
/// MUSIC projection (one signal-row scalar against the angle-contiguous
/// steering table). Bitwise pinned to [`caxpy_scalar`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn caxpy(acc: &mut [Complex64], x: &[Complex64], a: Complex64) {
    assert_eq!(acc.len(), x.len(), "caxpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    match level() {
        SimdLevel::Avx512 if acc.len() >= AVX512_MIN_N => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx512::caxpy(acc, x, a) };
        }
        // SAFETY: level() reports this tier only after runtime CPU
        // detection confirmed the kernel's target features.
        SimdLevel::Avx512 | SimdLevel::Avx2 => return unsafe { avx2::caxpy(acc, x, a) },
        SimdLevel::Scalar => {}
    }
    caxpy_scalar(acc, x, a);
}

/// Scalar reference for [`caxpy`] (4-wide unrolled; per-element results
/// are independent so the unroll is bitwise-neutral).
pub fn caxpy_scalar(acc: &mut [Complex64], x: &[Complex64], a: Complex64) {
    assert_eq!(acc.len(), x.len(), "caxpy length mismatch");
    let mut ai = acc.chunks_exact_mut(4);
    let mut xi = x.chunks_exact(4);
    for (ac, xc) in ai.by_ref().zip(xi.by_ref()) {
        ac[0] += a * xc[0];
        ac[1] += a * xc[1];
        ac[2] += a * xc[2];
        ac[3] += a * xc[3];
    }
    for (ac, &xk) in ai.into_remainder().iter_mut().zip(xi.remainder()) {
        *ac += a * xk;
    }
}

// ---------------------------------------------------------------------------
// Outer-product row accumulation (smoothed correlation)
// ---------------------------------------------------------------------------

/// `row[k] += (x·conj(v[k]))·s` — one row of the correlation
/// accumulation `R += s·h·h^H` (`x = h[r]`, `v = h`). Bitwise pinned to
/// [`accumulate_outer_row_scalar`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn accumulate_outer_row(row: &mut [Complex64], v: &[Complex64], x: Complex64, s: f64) {
    assert_eq!(row.len(), v.len(), "outer-row length mismatch");
    #[cfg(target_arch = "x86_64")]
    match level() {
        SimdLevel::Avx512 if row.len() >= AVX512_MIN_N => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx512::accumulate_outer_row(row, v, x, s) };
        }
        SimdLevel::Avx512 | SimdLevel::Avx2 => {
            // SAFETY: level() reports this tier only after runtime CPU
            // detection confirmed the kernel's target features.
            return unsafe { avx2::accumulate_outer_row(row, v, x, s) };
        }
        SimdLevel::Scalar => {}
    }
    accumulate_outer_row_scalar(row, v, x, s);
}

/// Scalar reference for [`accumulate_outer_row`].
pub fn accumulate_outer_row_scalar(row: &mut [Complex64], v: &[Complex64], x: Complex64, s: f64) {
    assert_eq!(row.len(), v.len(), "outer-row length mismatch");
    for (rc, &vc) in row.iter_mut().zip(v) {
        *rc += (x * vc.conj()).scale(s);
    }
}

// ---------------------------------------------------------------------------
// FFT butterflies
// ---------------------------------------------------------------------------

/// One radix-2 butterfly stage over a block split into its low and high
/// halves: `lo[k], hi[k] ← lo[k] + hi[k]·w[k], lo[k] − hi[k]·w[k]`.
/// Bitwise pinned to [`butterflies_scalar`].
///
/// # Panics
/// Panics if the three slices differ in length.
pub fn butterflies(lo: &mut [Complex64], hi: &mut [Complex64], w: &[Complex64]) {
    assert!(
        lo.len() == hi.len() && lo.len() == w.len(),
        "butterfly length mismatch"
    );
    // FFT stages here are at most 32 butterflies (64-point OFDM), too
    // short for 512-bit lanes to pay off — AVX-512 reuses the 256-bit
    // path.
    #[cfg(target_arch = "x86_64")]
    match level() {
        // SAFETY: level() reports this tier only after runtime CPU
        // detection confirmed the kernel's target features.
        SimdLevel::Avx512 | SimdLevel::Avx2 => return unsafe { avx2::butterflies(lo, hi, w) },
        SimdLevel::Scalar => {}
    }
    butterflies_scalar(lo, hi, w);
}

/// Scalar reference for [`butterflies`].
pub fn butterflies_scalar(lo: &mut [Complex64], hi: &mut [Complex64], w: &[Complex64]) {
    for ((l, h), &wk) in lo.iter_mut().zip(hi.iter_mut()).zip(w) {
        let u = *l;
        let v = *h * wk;
        *l = u + v;
        *h = u - v;
    }
}

// ---------------------------------------------------------------------------
// Imaging focus accumulation
// ---------------------------------------------------------------------------

/// The per-cell backprojection inner loop: correlates the centred
/// window `h` against the two TX steering tables `t1`, `t2`, traversed
/// forward and reversed, returning `[a1f, a2f, a1r, a2r]` where
///
/// ```text
/// a1f = Σ_i h[i]·t1[i]          a2f = Σ_i h[i]·t2[i]
/// a1r = Σ_i h[n−1−i]·t1[i]      a2r = Σ_i h[n−1−i]·t2[i]
/// ```
///
/// Each accumulator's addition sequence is the scalar loop's, so the
/// result is bitwise pinned to [`focus_accumulate_scalar`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn focus_accumulate(h: &[Complex64], t1: &[Complex64], t2: &[Complex64]) -> [Complex64; 4] {
    assert!(
        h.len() == t1.len() && h.len() == t2.len(),
        "focus length mismatch"
    );
    crate::probe::count_kernel(crate::probe::Kernel::Focus, 1);
    // The four accumulators fill exactly one ymm pair; a 512-bit version
    // would change the (pinned) per-accumulator addition order, so the
    // AVX-512 level reuses the 256-bit path.
    #[cfg(target_arch = "x86_64")]
    match level() {
        // SAFETY: level() reports this tier only after runtime CPU
        // detection confirmed the kernel's target features.
        SimdLevel::Avx512 | SimdLevel::Avx2 => return unsafe { avx2::focus_accumulate(h, t1, t2) },
        SimdLevel::Scalar => {}
    }
    focus_accumulate_scalar(h, t1, t2)
}

/// Scalar reference for [`focus_accumulate`].
pub fn focus_accumulate_scalar(
    h: &[Complex64],
    t1: &[Complex64],
    t2: &[Complex64],
) -> [Complex64; 4] {
    let n = h.len();
    let mut a1f = Complex64::ZERO;
    let mut a2f = Complex64::ZERO;
    let mut a1r = Complex64::ZERO;
    let mut a2r = Complex64::ZERO;
    for i in 0..n {
        let hf = h[i];
        let hr = h[n - 1 - i];
        a1f += hf * t1[i];
        a2f += hf * t2[i];
        a1r += hr * t1[i];
        a2r += hr * t2[i];
    }
    [a1f, a2f, a1r, a2r]
}

// ---------------------------------------------------------------------------
// cdot — the one reassociated kernel
// ---------------------------------------------------------------------------

/// Conjugated dot product `Σ a[k]·conj(b[k])`, **reassociated**: four
/// interleaved accumulators and (where supported) FMA. Matches
/// [`cdot_scalar`] only to ≤ 1e-12 relative error — keep it off
/// bitwise-pinned paths (see the module docs).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn cdot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    crate::probe::count_kernel(crate::probe::Kernel::Cdot, 1);
    #[cfg(target_arch = "x86_64")]
    if level() >= SimdLevel::Avx2 && fma_supported() {
        // SAFETY: the guard above confirmed AVX2 and FMA at runtime.
        return unsafe { avx2::cdot(a, b) };
    }
    // Portable reassociated fallback: 4 lanes, same accumulator
    // structure as the AVX2 path minus the FMA contraction.
    let mut acc = [Complex64::ZERO; 4];
    let mut ai = a.chunks_exact(4);
    let mut bi = b.chunks_exact(4);
    for (ac, bc) in ai.by_ref().zip(bi.by_ref()) {
        for l in 0..4 {
            acc[l] += ac[l] * bc[l].conj();
        }
    }
    let mut tail = Complex64::ZERO;
    for (&ak, &bk) in ai.remainder().iter().zip(bi.remainder()) {
        tail += ak * bk.conj();
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Sequential-fold reference for [`cdot`].
pub fn cdot_scalar(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b)
        .fold(Complex64::ZERO, |acc, (&x, &y)| acc + x * y.conj())
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex64;
    use std::arch::x86_64::*;

    /// `[w.re, w.im, w.re, w.im]` — one complex broadcast to both slots.
    // SAFETY: register-only intrinsic arithmetic, no memory access;
    // every caller runs inside an AVX2 target_feature context that
    // the level() dispatch proved at runtime.
    #[inline]
    unsafe fn broadcast(w: Complex64) -> __m256d {
        _mm256_setr_pd(w.re, w.im, w.re, w.im)
    }

    /// Per-slot complex multiply of two ymm registers holding two
    /// interleaved complexes each. No FMA: `addsub(x·wr, swap(x)·wi)`
    /// reproduces the scalar operator's products and rounding exactly
    /// (the scalar `im` sums the same two products in the commuted
    /// order, which rounds identically).
    // SAFETY: register-only intrinsic arithmetic, no memory access;
    // every caller runs inside an AVX2 target_feature context that
    // the level() dispatch proved at runtime.
    #[inline]
    unsafe fn cmul(x: __m256d, w: __m256d) -> __m256d {
        let wr = _mm256_movedup_pd(w); //          [w0r, w0r, w1r, w1r]
        let wi = _mm256_permute_pd(w, 0b1111); //  [w0i, w0i, w1i, w1i]
        let xs = _mm256_permute_pd(x, 0b0101); //  [x0i, x0r, x1i, x1r]
        _mm256_addsub_pd(_mm256_mul_pd(x, wr), _mm256_mul_pd(xs, wi))
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn givens_rotate(
        x: &mut [Complex64],
        y: &mut [Complex64],
        c: f64,
        s: f64,
        e: Complex64,
    ) {
        let n = x.len();
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set1_pd(s);
        let ev = broadcast(e);
        let ecv = broadcast(e.conj());
        let xp = x.as_mut_ptr() as *mut f64;
        let yp = y.as_mut_ptr() as *mut f64;
        let pairs = n / 2;
        for k in 0..pairs {
            let xv = _mm256_loadu_pd(xp.add(4 * k));
            let yv = _mm256_loadu_pd(yp.add(4 * k));
            let m = cmul(yv, ev); //  e·y
            let w = cmul(xv, ecv); // ē·x
            let xn = _mm256_sub_pd(_mm256_mul_pd(xv, cv), _mm256_mul_pd(m, sv));
            let yn = _mm256_add_pd(_mm256_mul_pd(w, sv), _mm256_mul_pd(yv, cv));
            _mm256_storeu_pd(xp.add(4 * k), xn);
            _mm256_storeu_pd(yp.add(4 * k), yn);
        }
        if n % 2 == 1 {
            super::givens_rotate_scalar(&mut x[n - 1..], &mut y[n - 1..], c, s, e);
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn givens_rotate_cols(
        data: &mut [Complex64],
        stride: usize,
        p: usize,
        q: usize,
        c: f64,
        s: f64,
        e: Complex64,
    ) {
        let rows = data.len() / stride;
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set1_pd(s);
        let ev = broadcast(e);
        let ecv = broadcast(e.conj());
        let base = data.as_mut_ptr() as *mut f64;
        let mut k = 0;
        // Two rows per iteration: gather the strided (k, k+1) column
        // elements into full ymm registers, rotate, scatter back.
        while k + 2 <= rows {
            let p0 = base.add(2 * (k * stride + p));
            let p1 = base.add(2 * ((k + 1) * stride + p));
            let q0 = base.add(2 * (k * stride + q));
            let q1 = base.add(2 * ((k + 1) * stride + q));
            let xv = _mm256_set_m128d(_mm_loadu_pd(p1), _mm_loadu_pd(p0));
            let yv = _mm256_set_m128d(_mm_loadu_pd(q1), _mm_loadu_pd(q0));
            let m = cmul(yv, ev);
            let w = cmul(xv, ecv);
            let xn = _mm256_sub_pd(_mm256_mul_pd(xv, cv), _mm256_mul_pd(m, sv));
            let yn = _mm256_add_pd(_mm256_mul_pd(w, sv), _mm256_mul_pd(yv, cv));
            _mm_storeu_pd(p0, _mm256_castpd256_pd128(xn));
            _mm_storeu_pd(p1, _mm256_extractf128_pd(xn, 1));
            _mm_storeu_pd(q0, _mm256_castpd256_pd128(yn));
            _mm_storeu_pd(q1, _mm256_extractf128_pd(yn, 1));
            k += 2;
        }
        if k < rows {
            let b = k * stride;
            let ec = e.conj();
            let x0 = data[b + p];
            let y0 = data[b + q];
            data[b + p] = x0.scale(c) - (e * y0).scale(s);
            data[b + q] = (ec * x0).scale(s) + y0.scale(c);
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rotate_rows_mirror(
        data: &mut [Complex64],
        stride: usize,
        p: usize,
        q: usize,
        c: f64,
        s: f64,
        e: Complex64,
    ) {
        let cv = _mm256_set1_pd(c);
        let sv = _mm256_set1_pd(s);
        let ev = broadcast(e);
        let ecv = broadcast(e.conj());
        let ec = e.conj();
        let conj_mask = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
        // SAFETY: all offsets are `r·stride + j` with `r, j < stride`,
        // in bounds by the caller's square-buffer assert. Rotation
        // touches only rows p and q; mirror writes go to rows
        // k ∉ {p, q} — never a pending rotation input.
        let base = data.as_mut_ptr();
        let xp = base.add(p * stride) as *mut f64;
        let yp = base.add(q * stride) as *mut f64;
        // Column-store helper: mirror one rotated element pair into row
        // j's (p, q) slots, skipping the pivot block. The conjugates
        // come straight from registers — re-loading the just-stored row
        // would defeat store-to-load forwarding.
        let mirror = |j: usize, xcj: __m128d, ycj: __m128d| {
            if j != p && j != q {
                _mm_storeu_pd(base.add(j * stride + p) as *mut f64, xcj);
                _mm_storeu_pd(base.add(j * stride + q) as *mut f64, ycj);
            }
        };
        let mut k = 0;
        while k + 2 <= stride {
            let xv = _mm256_loadu_pd(xp.add(2 * k));
            let yv = _mm256_loadu_pd(yp.add(2 * k));
            let m = cmul(yv, ev);
            let w = cmul(xv, ecv);
            let xn = _mm256_sub_pd(_mm256_mul_pd(xv, cv), _mm256_mul_pd(m, sv));
            let yn = _mm256_add_pd(_mm256_mul_pd(w, sv), _mm256_mul_pd(yv, cv));
            _mm256_storeu_pd(xp.add(2 * k), xn);
            _mm256_storeu_pd(yp.add(2 * k), yn);
            let xc = _mm256_xor_pd(xn, conj_mask);
            let yc = _mm256_xor_pd(yn, conj_mask);
            mirror(k, _mm256_castpd256_pd128(xc), _mm256_castpd256_pd128(yc));
            mirror(
                k + 1,
                _mm256_extractf128_pd(xc, 1),
                _mm256_extractf128_pd(yc, 1),
            );
            k += 2;
        }
        while k < stride {
            let x0 = *base.add(p * stride + k);
            let y0 = *base.add(q * stride + k);
            let xn = x0.scale(c) - (e * y0).scale(s);
            let yn = (ec * x0).scale(s) + y0.scale(c);
            *base.add(p * stride + k) = xn;
            *base.add(q * stride + k) = yn;
            if k != p && k != q {
                *base.add(k * stride + p) = xn.conj();
                *base.add(k * stride + q) = yn.conj();
            }
            k += 1;
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn caxpy(acc: &mut [Complex64], x: &[Complex64], a: Complex64) {
        let n = acc.len();
        let av = broadcast(a);
        let ap = acc.as_mut_ptr() as *mut f64;
        let xp = x.as_ptr() as *const f64;
        let pairs = n / 2;
        for k in 0..pairs {
            let xv = _mm256_loadu_pd(xp.add(4 * k));
            let av0 = _mm256_loadu_pd(ap.add(4 * k));
            _mm256_storeu_pd(ap.add(4 * k), _mm256_add_pd(av0, cmul(xv, av)));
        }
        if n % 2 == 1 {
            acc[n - 1] += a * x[n - 1];
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_outer_row(
        row: &mut [Complex64],
        v: &[Complex64],
        x: Complex64,
        s: f64,
    ) {
        let n = row.len();
        let xb = broadcast(x);
        let sv = _mm256_set1_pd(s);
        // Conjugation = flipping the imaginary sign bits (IEEE negation).
        let conj_mask = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
        let rp = row.as_mut_ptr() as *mut f64;
        let vp = v.as_ptr() as *const f64;
        let pairs = n / 2;
        for k in 0..pairs {
            let vv = _mm256_xor_pd(_mm256_loadu_pd(vp.add(4 * k)), conj_mask);
            let prod = _mm256_mul_pd(cmul(vv, xb), sv);
            let r0 = _mm256_loadu_pd(rp.add(4 * k));
            _mm256_storeu_pd(rp.add(4 * k), _mm256_add_pd(r0, prod));
        }
        if n % 2 == 1 {
            row[n - 1] += (x * v[n - 1].conj()).scale(s);
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn butterflies(lo: &mut [Complex64], hi: &mut [Complex64], w: &[Complex64]) {
        let n = lo.len();
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let wp = w.as_ptr() as *const f64;
        let pairs = n / 2;
        for k in 0..pairs {
            let u = _mm256_loadu_pd(lp.add(4 * k));
            let hv = _mm256_loadu_pd(hp.add(4 * k));
            let wv = _mm256_loadu_pd(wp.add(4 * k));
            let v = cmul(hv, wv);
            _mm256_storeu_pd(lp.add(4 * k), _mm256_add_pd(u, v));
            _mm256_storeu_pd(hp.add(4 * k), _mm256_sub_pd(u, v));
        }
        if n % 2 == 1 {
            let u = lo[n - 1];
            let v = hi[n - 1] * w[n - 1];
            lo[n - 1] = u + v;
            hi[n - 1] = u - v;
        }
    }

    // SAFETY: callable only with AVX2 present — the level() dispatch
    // proves that at runtime. Every pointer offset below stays inside
    // the argument slices: the vector body covers whole pairs of
    // complexes and the odd tail is handled separately.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn focus_accumulate(
        h: &[Complex64],
        t1: &[Complex64],
        t2: &[Complex64],
    ) -> [Complex64; 4] {
        let n = h.len();
        // accf = [a1f, a2f], accr = [a1r, a2r]: lane pairing keeps each
        // accumulator's own (scalar) addition order.
        let mut accf = _mm256_setzero_pd();
        let mut accr = _mm256_setzero_pd();
        let t1p = t1.as_ptr() as *const f64;
        let t2p = t2.as_ptr() as *const f64;
        for i in 0..n {
            let hf = broadcast(*h.get_unchecked(i));
            let hr = broadcast(*h.get_unchecked(n - 1 - i));
            let tv = _mm256_set_m128d(_mm_loadu_pd(t2p.add(2 * i)), _mm_loadu_pd(t1p.add(2 * i)));
            accf = _mm256_add_pd(accf, cmul(tv, hf));
            accr = _mm256_add_pd(accr, cmul(tv, hr));
        }
        let mut out = [Complex64::ZERO; 4];
        let op = out.as_mut_ptr() as *mut f64;
        _mm256_storeu_pd(op, accf);
        _mm256_storeu_pd(op.add(4), accr);
        // accf layout: [a1f, a2f]; accr: [a1r, a2r] — already the
        // documented return order.
        out
    }

    // SAFETY: callable only with AVX2 and FMA present — the dispatch
    // guard proves both at runtime. Every pointer offset below stays
    // inside the argument slices (whole pairs, then a scalar tail).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn cdot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
        let n = a.len();
        let conj_mask = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
        let ap = a.as_ptr() as *const f64;
        let bp = b.as_ptr() as *const f64;
        // Four independent 2-complex accumulator pairs (8 complexes per
        // iteration) — reassociated by construction. The `a·b.re` and
        // `a_swapped·b.im` halves of each complex product accumulate in
        // separate FMA chains; one addsub at the end combines them with
        // the complex-multiply sign pattern (even: p − s, odd: p + s).
        let mut acc_p = [_mm256_setzero_pd(); 4];
        let mut acc_s = [_mm256_setzero_pd(); 4];
        let mut k = 0;
        while k + 8 <= n {
            for (l, (p, s)) in acc_p.iter_mut().zip(acc_s.iter_mut()).enumerate() {
                let av = _mm256_loadu_pd(ap.add(2 * (k + 2 * l)));
                let bv = _mm256_xor_pd(_mm256_loadu_pd(bp.add(2 * (k + 2 * l))), conj_mask);
                let br = _mm256_movedup_pd(bv);
                let bi = _mm256_permute_pd(bv, 0b1111);
                let asw = _mm256_permute_pd(av, 0b0101);
                *p = _mm256_fmadd_pd(av, br, *p);
                *s = _mm256_fmadd_pd(asw, bi, *s);
            }
            k += 8;
        }
        let psum = _mm256_add_pd(
            _mm256_add_pd(acc_p[0], acc_p[1]),
            _mm256_add_pd(acc_p[2], acc_p[3]),
        );
        let ssum = _mm256_add_pd(
            _mm256_add_pd(acc_s[0], acc_s[1]),
            _mm256_add_pd(acc_s[2], acc_s[3]),
        );
        let acc = _mm256_addsub_pd(psum, ssum);
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let sum2 = _mm_add_pd(lo, hi);
        let mut pair = [0.0f64; 2];
        _mm_storeu_pd(pair.as_mut_ptr(), sum2);
        let mut total = Complex64::new(pair[0], pair[1]);
        while k < n {
            total += *a.get_unchecked(k) * b.get_unchecked(k).conj();
            k += 1;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// AVX-512 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::Complex64;
    use std::arch::x86_64::*;

    /// `[w.re, w.im]` repeated to all four complex slots.
    // SAFETY: register-only intrinsic arithmetic, no memory access;
    // every caller runs inside an AVX-512 target_feature context that
    // the level() dispatch proved at runtime.
    #[inline]
    unsafe fn broadcast512(w: Complex64) -> __m512d {
        _mm512_set4_pd(w.im, w.re, w.im, w.re)
    }

    /// `addsub` (even lanes `a − b`, odd lanes `a + b`) emulated for
    /// zmm: one add, one sub, one lane blend — each lane still exactly
    /// one IEEE operation, so it is bitwise equal to
    /// `_mm256_addsub_pd` on the corresponding halves.
    // SAFETY: register-only intrinsic arithmetic, no memory access;
    // every caller runs inside an AVX-512 target_feature context that
    // the level() dispatch proved at runtime.
    #[inline]
    unsafe fn addsub512(a: __m512d, b: __m512d) -> __m512d {
        let dif = _mm512_sub_pd(a, b);
        let sum = _mm512_add_pd(a, b);
        _mm512_mask_blend_pd(0b1010_1010, dif, sum)
    }

    /// Per-slot complex multiply of four interleaved complexes — the
    /// 512-bit analogue of the AVX2 `cmul`, same operand order and
    /// rounding points, no FMA.
    // SAFETY: register-only intrinsic arithmetic, no memory access;
    // every caller runs inside an AVX-512 target_feature context that
    // the level() dispatch proved at runtime.
    #[inline]
    unsafe fn cmul512(x: __m512d, w: __m512d) -> __m512d {
        let wr = _mm512_movedup_pd(w);
        let wi = _mm512_permute_pd(w, 0xFF);
        let xs = _mm512_permute_pd(x, 0x55);
        addsub512(_mm512_mul_pd(x, wr), _mm512_mul_pd(xs, wi))
    }

    // SAFETY: callable only with AVX-512 F/DQ present — the level()
    // dispatch proves that at runtime. Every pointer offset below
    // stays inside the argument slices: the vector body covers whole
    // quads of complexes and the tail is handled separately.
    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    pub(super) unsafe fn givens_rotate(
        x: &mut [Complex64],
        y: &mut [Complex64],
        c: f64,
        s: f64,
        e: Complex64,
    ) {
        let n = x.len();
        let cv = _mm512_set1_pd(c);
        let sv = _mm512_set1_pd(s);
        let ev = broadcast512(e);
        let ecv = broadcast512(e.conj());
        let xp = x.as_mut_ptr() as *mut f64;
        let yp = y.as_mut_ptr() as *mut f64;
        let quads = n / 4;
        for k in 0..quads {
            let xv = _mm512_loadu_pd(xp.add(8 * k));
            let yv = _mm512_loadu_pd(yp.add(8 * k));
            let m = cmul512(yv, ev); //  e·y
            let w = cmul512(xv, ecv); // ē·x
            let xn = _mm512_sub_pd(_mm512_mul_pd(xv, cv), _mm512_mul_pd(m, sv));
            let yn = _mm512_add_pd(_mm512_mul_pd(w, sv), _mm512_mul_pd(yv, cv));
            _mm512_storeu_pd(xp.add(8 * k), xn);
            _mm512_storeu_pd(yp.add(8 * k), yn);
        }
        let done = quads * 4;
        if done < n {
            super::givens_rotate_scalar(&mut x[done..], &mut y[done..], c, s, e);
        }
    }

    // SAFETY: callable only with AVX-512 F/DQ present — the level()
    // dispatch proves that at runtime. Every pointer offset below
    // stays inside the argument slices: the vector body covers whole
    // quads of complexes and the tail is handled separately.
    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    pub(super) unsafe fn rotate_rows_mirror(
        data: &mut [Complex64],
        stride: usize,
        p: usize,
        q: usize,
        c: f64,
        s: f64,
        e: Complex64,
    ) {
        let cv = _mm512_set1_pd(c);
        let sv = _mm512_set1_pd(s);
        let ev = broadcast512(e);
        let ecv = broadcast512(e.conj());
        let ec = e.conj();
        let conj_mask = _mm512_set4_pd(-0.0, 0.0, -0.0, 0.0);
        // SAFETY: identical argument to the AVX2 version — rotation
        // touches only rows p and q, mirror writes only rows
        // k ∉ {p, q}.
        let base = data.as_mut_ptr();
        let xp = base.add(p * stride) as *mut f64;
        let yp = base.add(q * stride) as *mut f64;
        // Mirror straight from registers (see the AVX2 version for why
        // re-loading the stored rows would stall).
        let mirror = |j: usize, xcj: __m128d, ycj: __m128d| {
            if j != p && j != q {
                _mm_storeu_pd(base.add(j * stride + p) as *mut f64, xcj);
                _mm_storeu_pd(base.add(j * stride + q) as *mut f64, ycj);
            }
        };
        let mut k = 0;
        while k + 4 <= stride {
            let xv = _mm512_loadu_pd(xp.add(2 * k));
            let yv = _mm512_loadu_pd(yp.add(2 * k));
            let m = cmul512(yv, ev);
            let w = cmul512(xv, ecv);
            let xn = _mm512_sub_pd(_mm512_mul_pd(xv, cv), _mm512_mul_pd(m, sv));
            let yn = _mm512_add_pd(_mm512_mul_pd(w, sv), _mm512_mul_pd(yv, cv));
            _mm512_storeu_pd(xp.add(2 * k), xn);
            _mm512_storeu_pd(yp.add(2 * k), yn);
            let xc = _mm512_xor_pd(xn, conj_mask);
            let yc = _mm512_xor_pd(yn, conj_mask);
            mirror(
                k,
                _mm512_extractf64x2_pd(xc, 0),
                _mm512_extractf64x2_pd(yc, 0),
            );
            mirror(
                k + 1,
                _mm512_extractf64x2_pd(xc, 1),
                _mm512_extractf64x2_pd(yc, 1),
            );
            mirror(
                k + 2,
                _mm512_extractf64x2_pd(xc, 2),
                _mm512_extractf64x2_pd(yc, 2),
            );
            mirror(
                k + 3,
                _mm512_extractf64x2_pd(xc, 3),
                _mm512_extractf64x2_pd(yc, 3),
            );
            k += 4;
        }
        while k < stride {
            let x0 = *base.add(p * stride + k);
            let y0 = *base.add(q * stride + k);
            let xn = x0.scale(c) - (e * y0).scale(s);
            let yn = (ec * x0).scale(s) + y0.scale(c);
            *base.add(p * stride + k) = xn;
            *base.add(q * stride + k) = yn;
            if k != p && k != q {
                *base.add(k * stride + p) = xn.conj();
                *base.add(k * stride + q) = yn.conj();
            }
            k += 1;
        }
    }

    // SAFETY: callable only with AVX-512 F/DQ present — the level()
    // dispatch proves that at runtime. Every pointer offset below
    // stays inside the argument slices: the vector body covers whole
    // quads of complexes and the tail is handled separately.
    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    pub(super) unsafe fn caxpy(acc: &mut [Complex64], x: &[Complex64], a: Complex64) {
        let n = acc.len();
        let av = broadcast512(a);
        let ap = acc.as_mut_ptr() as *mut f64;
        let xp = x.as_ptr() as *const f64;
        let quads = n / 4;
        for k in 0..quads {
            let xv = _mm512_loadu_pd(xp.add(8 * k));
            let av0 = _mm512_loadu_pd(ap.add(8 * k));
            _mm512_storeu_pd(ap.add(8 * k), _mm512_add_pd(av0, cmul512(xv, av)));
        }
        for k in quads * 4..n {
            acc[k] += a * x[k];
        }
    }

    // SAFETY: callable only with AVX-512 F/DQ present — the level()
    // dispatch proves that at runtime. Every pointer offset below
    // stays inside the argument slices: the vector body covers whole
    // quads of complexes and the tail is handled separately.
    #[target_feature(enable = "avx512f", enable = "avx512dq")]
    pub(super) unsafe fn accumulate_outer_row(
        row: &mut [Complex64],
        v: &[Complex64],
        x: Complex64,
        s: f64,
    ) {
        let n = row.len();
        let xb = broadcast512(x);
        let sv = _mm512_set1_pd(s);
        // Conjugation = flipping the imaginary sign bits (IEEE negation).
        let conj_mask = _mm512_set4_pd(-0.0, 0.0, -0.0, 0.0);
        let rp = row.as_mut_ptr() as *mut f64;
        let vp = v.as_ptr() as *const f64;
        let quads = n / 4;
        for k in 0..quads {
            let vv = _mm512_xor_pd(_mm512_loadu_pd(vp.add(8 * k)), conj_mask);
            let prod = _mm512_mul_pd(cmul512(vv, xb), sv);
            let r0 = _mm512_loadu_pd(rp.add(8 * k));
            _mm512_storeu_pd(rp.add(8 * k), _mm512_add_pd(r0, prod));
        }
        for k in quads * 4..n {
            row[k] += (x * v[k].conj()).scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use std::sync::{Mutex, MutexGuard};

    /// `FORCED` is process-global; tests that mutate it serialize here
    /// (and restore auto-detection on drop via [`forced_guard`]).
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    struct ForcedGuard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for ForcedGuard {
        fn drop(&mut self) {
            set_forced(None);
        }
    }

    fn forced_guard() -> ForcedGuard {
        ForcedGuard(FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Every level the running CPU can actually execute.
    fn available_levels() -> Vec<SimdLevel> {
        let mut levels = vec![SimdLevel::Scalar];
        if avx2_supported() {
            levels.push(SimdLevel::Avx2);
        }
        if avx512_supported() {
            levels.push(SimdLevel::Avx512);
        }
        levels
    }

    fn vecs(n: usize, seed: u64) -> (Vec<Complex64>, Vec<Complex64>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut g = || Complex64::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));
        ((0..n).map(|_| g()).collect(), (0..n).map(|_| g()).collect())
    }

    #[test]
    fn level_override_roundtrip() {
        let _guard = forced_guard();
        let auto = level();
        set_forced(Some(SimdLevel::Scalar));
        assert_eq!(level(), SimdLevel::Scalar);
        set_forced(None);
        assert_eq!(level(), auto);
        // Forcing a level the CPU supports lands exactly there; forcing
        // one it doesn't clamps down to what it can run.
        for want in available_levels() {
            set_forced(Some(want));
            assert_eq!(level(), want.min(auto), "forcing {:?}", want);
        }
        set_forced(Some(SimdLevel::Avx512));
        assert!(level() <= auto, "forced level must clamp to hardware");
        set_forced(None);
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Avx512.name(), "avx512");
        assert!(SimdLevel::Scalar < SimdLevel::Avx2 && SimdLevel::Avx2 < SimdLevel::Avx512);
    }

    #[test]
    fn dispatched_kernels_match_scalar_bitwise() {
        // The heart of the pinning contract, at every available dispatch
        // level and every length class the pipeline uses (even/odd,
        // tiny, hot-path sizes).
        let _guard = forced_guard();
        for forced in available_levels() {
            set_forced(Some(forced));
            // 625 > AVX512_MIN_N exercises the length-routed 512-bit
            // arms; the small sizes cover remainders and the 256-bit
            // routes.
            for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 50, 63, 100, 181, 625] {
                let (x, y) = vecs(n, 1000 + n as u64);
                let e = Complex64::cis(0.7);
                let (c, s) = (0.8, 0.6);

                let (mut xs, mut ys) = (x.clone(), y.clone());
                givens_rotate_scalar(&mut xs, &mut ys, c, s, e);
                let (mut xv, mut yv) = (x.clone(), y.clone());
                givens_rotate(&mut xv, &mut yv, c, s, e);
                assert_bits(&xs, &xv, "givens x");
                assert_bits(&ys, &yv, "givens y");

                let a = Complex64::new(0.3, -1.2);
                let mut accs = y.clone();
                caxpy_scalar(&mut accs, &x, a);
                let mut accv = y.clone();
                caxpy(&mut accv, &x, a);
                assert_bits(&accs, &accv, "caxpy");

                let mut rows = y.clone();
                accumulate_outer_row_scalar(&mut rows, &x, a, 0.25);
                let mut rowv = y.clone();
                accumulate_outer_row(&mut rowv, &x, a, 0.25);
                assert_bits(&rows, &rowv, "outer row");

                let (w, _) = vecs(n, 2000 + n as u64);
                let (mut los, mut his) = (x.clone(), y.clone());
                butterflies_scalar(&mut los, &mut his, &w);
                let (mut lov, mut hiv) = (x.clone(), y.clone());
                butterflies(&mut lov, &mut hiv, &w);
                assert_bits(&los, &lov, "butterfly lo");
                assert_bits(&his, &hiv, "butterfly hi");

                let fs = focus_accumulate_scalar(&x, &y, &w);
                let fv = focus_accumulate(&x, &y, &w);
                assert_bits(&fs, &fv, "focus");
            }
        }
    }

    #[test]
    fn strided_column_rotation_matches_scalar_bitwise() {
        let _guard = forced_guard();
        for forced in available_levels() {
            set_forced(Some(forced));
            for (rows, stride) in [(1usize, 4usize), (2, 4), (5, 7), (50, 50), (8, 3)] {
                let (data, _) = vecs(rows * stride, 31 * rows as u64 + stride as u64);
                let (p, q) = (0, stride - 1);
                let e = Complex64::cis(-1.3);
                let mut ds = data.clone();
                givens_rotate_cols_scalar(&mut ds, stride, p, q, 0.6, 0.8, e);
                let mut dv = data.clone();
                givens_rotate_cols(&mut dv, stride, p, q, 0.6, 0.8, e);
                assert_bits(&ds, &dv, "strided rotation");
            }
        }
    }

    #[test]
    fn fused_rotate_mirror_matches_unfused_bitwise() {
        let _guard = forced_guard();
        for forced in available_levels() {
            set_forced(Some(forced));
            // Square sizes spanning remainder classes for both vector
            // widths, with pivot pairs that sit inside, straddle, and
            // bound the vector chunks.
            for n in [2usize, 3, 4, 5, 7, 8, 13, 50] {
                let (data, _) = vecs(n * n, 4242 + n as u64);
                for (p, q) in [(0usize, 1usize), (0, n - 1), (n / 2, n - 1)] {
                    if p >= q {
                        continue;
                    }
                    let e = Complex64::cis(0.9);
                    let (c, s) = (0.28, 0.96);
                    let mut expect = data.clone();
                    rotate_rows_mirror_scalar(&mut expect, n, p, q, c, s, e);
                    let mut got = data.clone();
                    rotate_rows_mirror(&mut got, n, p, q, c, s, e);
                    assert_bits(&expect, &got, "fused rotate+mirror");
                }
            }
        }
    }

    #[test]
    fn cdot_reassociation_stays_within_epsilon() {
        for n in [1usize, 3, 8, 17, 64, 625] {
            let (a, b) = vecs(n, 777 + n as u64);
            let exact = cdot_scalar(&a, &b);
            let fast = cdot(&a, &b);
            let err = (exact - fast).abs() / exact.abs().max(1e-30);
            assert!(err <= 1e-12, "n={n}: relative error {err}");
        }
    }

    fn assert_bits(a: &[Complex64], b: &[Complex64], what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{what}: lane {i} differs ({x} vs {y})"
            );
        }
    }
}
