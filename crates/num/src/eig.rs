//! Eigendecomposition of complex Hermitian matrices.
//!
//! Smoothed MUSIC (paper §5.2) needs the full eigensystem of the w′×w′
//! correlation matrix `R = E[h·h^H]` — eigenvalues to split signal from
//! noise subspace, eigenvectors to project steering vectors onto the noise
//! subspace. The matrices are Hermitian positive semi-definite and small
//! (w′ = 50 at the paper's parameters), so the classic cyclic Jacobi method
//! with complex (phase-aware) Givens rotations is the right tool: simple,
//! unconditionally stable, and accurate to machine precision.
//!
//! The rotation for pivot `(p, q)` zeroes `A[p][q] = r·e^{iφ}` with the
//! unitary
//!
//! ```text
//! V[p,p] =  c          V[p,q] = s·e^{iφ}
//! V[q,p] = -s·e^{-iφ}  V[q,q] = c
//! ```
//!
//! where `t = tan θ` solves `t² + 2τt − 1 = 0`, `τ = (A[q,q] − A[p,p])/(2r)`
//! — the textbook real-Jacobi angle applied to the off-diagonal *magnitude*.

use crate::{simd, CMatrix, Complex64};

/// The result of [`hermitian_eig`]: `A = U·diag(λ)·U^H`.
///
/// Eigenvalues are returned in **descending** order (MUSIC convention:
/// signal eigenvalues first), with `vectors.col(i)` the unit-norm
/// eigenvector for `values[i]`.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Real eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMatrix,
}

impl HermitianEig {
    /// Reconstructs `U·diag(λ)·U^H`; used by tests to validate round-trips.
    pub fn reconstruct(&self) -> CMatrix {
        let n = self.values.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &lambda) in self.values.iter().enumerate() {
            let v = self.vectors.col(i);
            m.add_outer(&v, lambda);
        }
        m
    }

    /// Number of eigenvalues exceeding `threshold` — MUSIC's signal-subspace
    /// dimension for a given noise floor estimate.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&v| v > threshold).count()
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Convergence is
/// quadratic; well-conditioned correlation matrices converge in < 10 sweeps.
const MAX_SWEEPS: usize = 64;

/// Reusable scratch for [`hermitian_eig_in`]: the working copy of the
/// matrix, the accumulated rotations, and the sorted output buffers.
///
/// The streaming MUSIC tracker eigendecomposes one `w′ × w′` correlation
/// matrix per analysis window at the channel rate; allocating five fresh
/// `O(n²)` buffers per window dominated the allocator profile. A workspace
/// is created once per tracker and reused for every window with **zero
/// per-call heap allocation**. Results are bitwise identical to
/// [`hermitian_eig`] (same sweep order, same rotation arithmetic).
#[derive(Clone, Debug)]
pub struct EigWorkspace {
    n: usize,
    /// Working copy, diagonalized in place.
    m: CMatrix,
    /// Accumulated unitary.
    u: CMatrix,
    /// Unsorted diagonal.
    lambdas: Vec<f64>,
    /// Descending-eigenvalue permutation.
    order: Vec<usize>,
    /// Sorted eigenvalues (the public output).
    values: Vec<f64>,
    /// Sorted eigenvectors (the public output).
    vectors: CMatrix,
}

impl EigWorkspace {
    /// Creates a workspace for `n × n` problems.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            m: CMatrix::zeros(n, n),
            u: CMatrix::zeros(n, n),
            lambdas: vec![0.0; n],
            order: (0..n).collect(),
            values: vec![0.0; n],
            vectors: CMatrix::zeros(n, n),
        }
    }

    /// The problem dimension this workspace serves.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Eigenvalues of the most recent [`hermitian_eig_in`] call, descending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvector matrix of the most recent call (column `i` pairs with
    /// `values()[i]`).
    pub fn vectors(&self) -> &CMatrix {
        &self.vectors
    }

    /// Number of eigenvalues exceeding `threshold` (MUSIC's signal-subspace
    /// dimension test, mirroring [`HermitianEig::count_above`]).
    pub fn count_above(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&v| v > threshold).count()
    }

    /// Copies the current result out as an owned [`HermitianEig`].
    pub fn to_eig(&self) -> HermitianEig {
        HermitianEig {
            values: self.values.clone(),
            vectors: self.vectors.clone(),
        }
    }
}

/// Computes the eigendecomposition of a Hermitian matrix by cyclic Jacobi
/// rotations, reusing `ws` for all scratch and output storage (zero heap
/// allocation per call). Results land in [`EigWorkspace::values`] /
/// [`EigWorkspace::vectors`].
///
/// The input is **assumed Hermitian**; only numerical (rounding-level)
/// deviation is tolerated. Use [`CMatrix::hermitian_deviation`] upstream if
/// the provenance of the matrix is in doubt.
///
/// # Panics
/// Panics if `a` is not square, if its dimension differs from the
/// workspace's, or if it deviates from Hermitian symmetry by more than
/// `1e-8 · (1 + ‖A‖_F)`.
pub fn hermitian_eig_in(a: &CMatrix, ws: &mut EigWorkspace) {
    assert!(a.is_square(), "eigendecomposition requires a square matrix");
    let n = a.rows();
    assert_eq!(n, ws.n, "workspace dimension mismatch");
    let scale = 1.0 + a.frobenius_norm();
    assert!(
        a.hermitian_deviation() <= 1e-8 * scale,
        "matrix is not Hermitian (deviation {} vs norm {})",
        a.hermitian_deviation(),
        scale
    );

    ws.m.copy_from(a);
    ws.u.set_identity();
    jacobi_diagonalize(&mut ws.m, &mut ws.u, scale);

    // Extract and sort descending.
    let m = &ws.m;
    for (i, l) in ws.lambdas.iter_mut().enumerate() {
        *l = m[(i, i)].re;
    }
    for (i, o) in ws.order.iter_mut().enumerate() {
        *o = i;
    }
    let lambdas = &ws.lambdas;
    ws.order
        .sort_by(|&i, &j| lambdas[j].partial_cmp(&lambdas[i]).unwrap());
    // ws.u holds U transposed (rows are eigenvectors) — see
    // `jacobi_diagonalize`; eigenvector c is its row order[c].
    for c in 0..n {
        ws.values[c] = ws.lambdas[ws.order[c]];
        let src = ws.u.row(ws.order[c]);
        for (r, &z) in src.iter().enumerate() {
            ws.vectors[(r, c)] = z;
        }
    }
}

/// Computes the eigendecomposition of a Hermitian matrix by cyclic Jacobi
/// rotations. Convenience wrapper over [`hermitian_eig_in`] that allocates
/// a fresh workspace; hot paths should hold an [`EigWorkspace`] instead.
///
/// # Panics
/// Panics if `a` is not square, or if it deviates from Hermitian symmetry
/// by more than `1e-8 · (1 + ‖A‖_F)`.
pub fn hermitian_eig(a: &CMatrix) -> HermitianEig {
    let mut ws = EigWorkspace::new(a.rows());
    hermitian_eig_in(a, &mut ws);
    HermitianEig {
        values: ws.values,
        vectors: ws.vectors,
    }
}

/// `true` if the strictly-off-diagonal part of `m` is Hermitian in
/// *bits*: `m[(c,r)]` is exactly the sign-flipped-imaginary image of
/// `m[(r,c)]`. Correlation matrices accumulated through
/// [`CMatrix::add_outer`] have this property exactly (each step writes
/// literal conjugate pairs); it is what licenses the mirrored fast path
/// in [`jacobi_diagonalize`].
fn bit_hermitian_off_diagonal(m: &CMatrix) -> bool {
    let n = m.rows();
    for r in 0..n {
        for c in (r + 1)..n {
            let a = m[(r, c)];
            let b = m[(c, r)];
            if a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != (-b.im).to_bits() {
                return false;
            }
        }
    }
    true
}

/// The cyclic-Jacobi sweep loop shared by the planned and unplanned entry
/// points: diagonalizes `m` in place, accumulating rotations into `ut` —
/// the **transpose** of the unitary (row `i` of `ut` is eigenvector `i`),
/// so the rotation touches two contiguous rows instead of two strided
/// columns. Per-element arithmetic is unchanged; only the layout is.
///
/// Every update funnels through the bitwise-pinned kernels in
/// [`wivi_num::simd`](crate::simd), so results are identical on every
/// dispatch level. When the input is Hermitian in bits (the correlation
/// path always is), the column half of each rotation is not recomputed
/// but *mirrored* from the freshly rotated rows: for `k ∉ {p,q}` the
/// scalar column update `akp·c − (e⁻·akq)·s` is the exact conjugate of
/// the row update `apk·c − (e⁺·aqk)·s` — conjugation distributes
/// bitwise over IEEE multiply/add/subtract — so writing
/// `conj(m[(p,k)])` reproduces the textbook loop's bits while keeping
/// all arithmetic on contiguous rows. Inputs that are only
/// approximately Hermitian take the direct strided-column path instead.
fn jacobi_diagonalize(m: &mut CMatrix, ut: &mut CMatrix, scale: f64) {
    let n = m.rows();

    // Absolute threshold under which an off-diagonal entry counts as zero.
    let tol = 1e-14 * scale;
    let mirror = bit_hermitian_off_diagonal(m);

    // Probe counts aggregate in locals and flush once per solve — the
    // pivot body is ~100 ns, far too hot for per-call counting.
    let mut sweeps = 0u64;
    let mut rotations = 0u64;

    for _sweep in 0..MAX_SWEEPS {
        if m.off_diagonal_energy().sqrt() <= tol * n as f64 {
            break;
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let r = apq.abs();
                if r <= tol {
                    continue;
                }
                let phi = apq.arg();
                let alpha = m[(p, p)].re;
                let beta = m[(q, q)].re;

                // Stable tangent of the rotation angle.
                let tau = (beta - alpha) / (2.0 * r);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                let e_pos = Complex64::cis(phi); //  e^{+iφ}
                let e_neg = e_pos.conj(); //          e^{-iφ}

                // A ← A·V   (columns p and q):
                //   m[(k,p)] = akp·c − (e⁻·akq)·s
                //   m[(k,q)] = (e⁺·akp)·s + akq·c
                if mirror {
                    // Only the 2×2 pivot block needs the column update
                    // computed directly (the row update below reads it);
                    // every other column entry is mirrored from the
                    // freshly rotated rows.
                    let app = m[(p, p)];
                    let apq2 = m[(p, q)];
                    let aqp = m[(q, p)];
                    let aqq = m[(q, q)];
                    m[(p, p)] = app.scale(c) - (e_neg * apq2).scale(s);
                    m[(p, q)] = (e_pos * app).scale(s) + apq2.scale(c);
                    m[(q, p)] = aqp.scale(c) - (e_neg * aqq).scale(s);
                    m[(q, q)] = (e_pos * aqp).scale(s) + aqq.scale(c);
                    // A ← V^H·A rows plus the conjugate column images
                    // outside the pivot block, fused into one pass
                    // (bitwise equal to the direct column update — see
                    // the function docs).
                    simd::rotate_rows_mirror(m.as_mut_slice(), n, p, q, c, s, e_pos);
                } else {
                    simd::givens_rotate_cols(m.as_mut_slice(), n, p, q, c, s, e_neg);
                    // A ← V^H·A  (rows p and q):
                    //   m[(p,k)] = apk·c − (e⁺·aqk)·s
                    //   m[(q,k)] = (e⁻·apk)·s + aqk·c
                    let (row_p, row_q) = m.row_pair_mut(p, q);
                    simd::givens_rotate(row_p, row_q, c, s, e_pos);
                }
                // Clamp the now-annihilated pair and enforce real diagonal,
                // preventing rounding drift from accumulating over sweeps.
                m[(p, q)] = Complex64::ZERO;
                m[(q, p)] = Complex64::ZERO;
                m[(p, p)] = Complex64::from_re(m[(p, p)].re);
                m[(q, q)] = Complex64::from_re(m[(q, q)].re);

                // U ← U·V — in transposed storage the two columns are the
                // contiguous rows p and q of ut, same arithmetic:
                //   ut[(p,k)] = ukp·c − (e⁻·ukq)·s
                //   ut[(q,k)] = (e⁺·ukp)·s + ukq·c
                let (ut_p, ut_q) = ut.row_pair_mut(p, q);
                simd::givens_rotate(ut_p, ut_q, c, s, e_neg);
                rotations += 1;
            }
        }
    }
    crate::probe::count_eig(sweeps, rotations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random_hermitian(n: usize, seed: u64) -> CMatrix {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut a = CMatrix::zeros(n, n);
        for r in 0..n {
            a[(r, r)] = Complex64::from_re(rng.gen_range(-2.0, 2.0));
            for c in (r + 1)..n {
                let z = Complex64::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0));
                a[(r, c)] = z;
                a[(c, r)] = z.conj();
            }
        }
        a
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation_bitwise() {
        // One workspace across many different matrices must behave exactly
        // like allocating fresh buffers per call — no state may leak from
        // one decomposition into the next.
        let mut ws = EigWorkspace::new(8);
        for seed in 0..6 {
            let a = random_hermitian(8, seed);
            hermitian_eig_in(&a, &mut ws);
            let fresh = hermitian_eig(&a);
            assert_eq!(
                ws.values(),
                fresh.values.as_slice(),
                "values differ at seed {seed}"
            );
            assert_eq!(
                *ws.vectors(),
                fresh.vectors,
                "vectors differ at seed {seed}"
            );
        }
    }

    #[test]
    fn workspace_accessors_are_consistent() {
        let a = random_hermitian(5, 42);
        let mut ws = EigWorkspace::new(5);
        hermitian_eig_in(&a, &mut ws);
        assert_eq!(ws.n(), 5);
        let owned = ws.to_eig();
        assert_eq!(owned.values, ws.values());
        let thresh = ws.values()[2];
        assert_eq!(ws.count_above(thresh), owned.count_above(thresh));
    }

    #[test]
    #[should_panic(expected = "workspace dimension mismatch")]
    fn workspace_dimension_checked() {
        let a = random_hermitian(4, 1);
        let mut ws = EigWorkspace::new(5);
        hermitian_eig_in(&a, &mut ws);
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let mut d = CMatrix::zeros(3, 3);
        d[(0, 0)] = Complex64::from_re(3.0);
        d[(1, 1)] = Complex64::from_re(-1.0);
        d[(2, 2)] = Complex64::from_re(0.5);
        let e = hermitian_eig(&d);
        assert_eq!(e.values, vec![3.0, 0.5, -1.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex64::from_re(2.0);
        a[(0, 1)] = Complex64::I;
        a[(1, 0)] = -Complex64::I;
        a[(1, 1)] = Complex64::from_re(2.0);
        let e = hermitian_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        for seed in 0..5 {
            let a = random_hermitian(8, seed);
            let e = hermitian_eig(&a);
            let r = e.reconstruct();
            let err = (&r - &a).frobenius_norm();
            assert!(
                err < 1e-10 * (1.0 + a.frobenius_norm()),
                "seed {seed}: err {err}"
            );
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = random_hermitian(6, 42);
        let e = hermitian_eig(&a);
        for i in 0..6 {
            let v = e.vectors.col(i);
            let av = a.mul_vec(&v);
            for k in 0..6 {
                let expect = v[k].scale(e.values[i]);
                assert!((av[k] - expect).abs() < 1e-9, "A·v != λ·v at ({i},{k})");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_hermitian(7, 7);
        let e = hermitian_eig(&a);
        let gram = &e.vectors.hermitian() * &e.vectors;
        let dev = (&gram - &CMatrix::identity(7)).frobenius_norm();
        assert!(dev < 1e-10, "U^H·U deviates from I by {dev}");
    }

    #[test]
    fn rank_one_outer_product_has_single_nonzero_eigenvalue() {
        let v = vec![
            Complex64::new(1.0, 0.5),
            Complex64::new(-0.5, 0.2),
            Complex64::new(0.0, 1.0),
        ];
        let norm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        let mut a = CMatrix::zeros(3, 3);
        a.add_outer(&v, 1.0);
        let e = hermitian_eig(&a);
        assert!((e.values[0] - norm_sq).abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!(e.values[2].abs() < 1e-10);
    }

    #[test]
    fn count_above_splits_signal_from_noise() {
        let mut a = CMatrix::zeros(4, 4);
        a.add_outer(
            &[Complex64::ONE, Complex64::I, Complex64::ONE, Complex64::I],
            10.0,
        );
        for i in 0..4 {
            a[(i, i)] += Complex64::from_re(0.01);
        }
        let e = hermitian_eig(&a);
        assert_eq!(e.count_above(1.0), 1);
        assert_eq!(e.count_above(0.001), 4);
    }

    #[test]
    #[should_panic(expected = "not Hermitian")]
    fn rejects_non_hermitian_input() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = Complex64::ONE;
        // a[(1,0)] left at zero: not Hermitian.
        let _ = hermitian_eig(&a);
    }

    #[test]
    fn psd_correlation_matrix_has_nonnegative_spectrum() {
        let mut rng = Rng64::seed_from_u64(99);
        let mut r = CMatrix::zeros(10, 10);
        for _ in 0..25 {
            let v: Vec<Complex64> = (0..10)
                .map(|_| Complex64::new(rng.gen_range(-1.0, 1.0), rng.gen_range(-1.0, 1.0)))
                .collect();
            r.add_outer(&v, 1.0);
        }
        let e = hermitian_eig(&r);
        for &lambda in &e.values {
            assert!(
                lambda > -1e-9,
                "PSD matrix produced negative eigenvalue {lambda}"
            );
        }
    }
}
