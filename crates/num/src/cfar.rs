//! Cell-averaging CFAR detection over 2-D power images.
//!
//! The imaging pipeline's detector: a cell is a target when its power
//! exceeds the *locally estimated* noise level by a configured factor.
//! The noise estimate is the mean over a square training ring around the
//! cell (a guard ring in between keeps the target's own energy out of
//! the estimate) — the classic cell-averaging CFAR, whose false-alarm
//! rate is independent of the absolute noise power because the test is a
//! pure ratio. Detections are additionally required to be local maxima
//! of their 3×3 neighbourhood, so one target produces one detection, not
//! a plateau of threshold crossings.
//!
//! Everything is deterministic: cells are scanned in flat row-major
//! order and ties between equal-power neighbours break toward the lower
//! flat index.

use crate::grid2d::Grid2d;
use crate::stats::from_db;

/// Cell-averaging CFAR tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CfarConfig {
    /// Guard ring half-width, cells: the square `(2·guard+1)²` block
    /// around the cell under test is excluded from the noise estimate
    /// (it may contain the target's own skirt).
    pub guard: usize,
    /// Training ring width, cells: the noise is averaged over the square
    /// annulus between the guard ring and `guard + train` cells away.
    pub train: usize,
    /// Detection threshold over the local noise estimate, dB.
    pub threshold_db: f64,
    /// Minimum number of training cells required for a valid noise
    /// estimate — cells whose (grid-clipped) training ring is smaller
    /// are never detected. Guards the grid corners, where the ring
    /// collapses to a handful of cells and the estimate is worthless.
    pub min_train_cells: usize,
}

impl Default for CfarConfig {
    fn default() -> Self {
        Self {
            guard: 2,
            train: 3,
            threshold_db: 7.0,
            min_train_cells: 8,
        }
    }
}

impl CfarConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.train >= 1, "need at least one training-ring cell");
        assert!(self.threshold_db > 0.0, "threshold must be positive dB");
        assert!(self.min_train_cells >= 1);
    }
}

/// One CFAR detection: a cell whose power cleared the local threshold
/// and peaked over its neighbourhood.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CfarDetection {
    /// Cell coordinates.
    pub ix: usize,
    pub iy: usize,
    /// The cell's power (linear, whatever units the image carries).
    pub power: f64,
    /// The local noise estimate the threshold was formed from.
    pub noise: f64,
}

impl CfarDetection {
    /// Detection-to-noise ratio, dB.
    pub fn snr_db(&self) -> f64 {
        10.0 * (self.power / self.noise.max(1e-300)).log10()
    }
}

/// Runs cell-averaging CFAR over a flat row-major `power` image of shape
/// `grid`, returning detections in flat-index (row-major) order.
///
/// # Panics
/// Panics if `power.len() != grid.len()` or the configuration is
/// invalid.
pub fn ca_cfar_2d(power: &[f64], grid: Grid2d, cfg: &CfarConfig) -> Vec<CfarDetection> {
    cfg.validate();
    assert_eq!(power.len(), grid.len(), "image shape mismatch");
    let reach = (cfg.guard + cfg.train) as isize;
    let guard = cfg.guard as isize;
    let factor = from_db(cfg.threshold_db);
    let mut out = Vec::new();
    for i in 0..grid.len() {
        let (ix, iy) = grid.coords(i);
        let p = power[i];
        // Local 3×3 peak test first (cheap): ties break to the lower
        // flat index so a plateau yields exactly one detection.
        let mut is_peak = true;
        'peak: for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (jx, jy) = (ix as isize + dx, iy as isize + dy);
                if !grid.contains(jx, jy) {
                    continue;
                }
                let j = grid.idx(jx as usize, jy as usize);
                if power[j] > p || (power[j] == p && j < i) {
                    is_peak = false;
                    break 'peak;
                }
            }
        }
        if !is_peak {
            continue;
        }
        // Noise: mean over the training ring, clipped to the grid.
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                if dx.abs() <= guard && dy.abs() <= guard {
                    continue;
                }
                let (jx, jy) = (ix as isize + dx, iy as isize + dy);
                if !grid.contains(jx, jy) {
                    continue;
                }
                sum += power[grid.idx(jx as usize, jy as usize)];
                n += 1;
            }
        }
        if n < cfg.min_train_cells {
            continue;
        }
        let noise = sum / n as f64;
        if p > noise * factor {
            out.push(CfarDetection {
                ix,
                iy,
                power: p,
                noise,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_image(grid: Grid2d, level: f64) -> Vec<f64> {
        vec![level; grid.len()]
    }

    #[test]
    fn flat_image_yields_no_detections() {
        let g = Grid2d::new(12, 10);
        let img = flat_image(g, 3.7);
        assert!(ca_cfar_2d(&img, g, &CfarConfig::default()).is_empty());
    }

    #[test]
    fn single_spike_is_detected_at_its_cell() {
        let g = Grid2d::new(12, 10);
        let mut img = flat_image(g, 1.0);
        img[g.idx(5, 4)] = 100.0;
        let d = ca_cfar_2d(&img, g, &CfarConfig::default());
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].ix, d[0].iy), (5, 4));
        assert!(d[0].snr_db() > 15.0);
    }

    #[test]
    fn two_separated_spikes_both_detected_in_index_order() {
        let g = Grid2d::new(16, 12);
        let mut img = flat_image(g, 1.0);
        img[g.idx(3, 2)] = 50.0;
        img[g.idx(12, 9)] = 80.0;
        let d = ca_cfar_2d(&img, g, &CfarConfig::default());
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].ix, d[0].iy), (3, 2));
        assert_eq!((d[1].ix, d[1].iy), (12, 9));
    }

    #[test]
    fn plateau_produces_exactly_one_detection() {
        let g = Grid2d::new(12, 10);
        let mut img = flat_image(g, 1.0);
        // A 2×2 plateau of equal power: exactly one detection (the
        // lowest flat index).
        for (ix, iy) in [(5usize, 4usize), (6, 4), (5, 5), (6, 5)] {
            img[g.idx(ix, iy)] = 60.0;
        }
        let d = ca_cfar_2d(&img, g, &CfarConfig::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!((d[0].ix, d[0].iy), (5, 4));
    }

    #[test]
    fn skirt_inside_guard_ring_does_not_mask_the_peak() {
        let g = Grid2d::new(12, 10);
        let mut img = flat_image(g, 1.0);
        img[g.idx(5, 4)] = 100.0;
        // Target skirt in the 8 adjacent cells — inside the guard ring,
        // so the noise estimate must not swallow it.
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                if dx != 0 || dy != 0 {
                    img[g.idx((5 + dx) as usize, (4 + dy) as usize)] = 30.0;
                }
            }
        }
        let d = ca_cfar_2d(&img, g, &CfarConfig::default());
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].ix, d[0].iy), (5, 4));
    }

    #[test]
    fn corner_with_starved_training_ring_is_suppressed() {
        let g = Grid2d::new(8, 8);
        let mut img = flat_image(g, 1.0);
        img[g.idx(0, 0)] = 1e6;
        let cfg = CfarConfig {
            guard: 1,
            train: 1,
            // The clipped corner ring has at most 5 cells.
            min_train_cells: 6,
            ..CfarConfig::default()
        };
        assert!(ca_cfar_2d(&img, g, &cfg).is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_wrong_image_length() {
        let g = Grid2d::new(4, 4);
        let _ = ca_cfar_2d(&[1.0; 15], g, &CfarConfig::default());
    }
}
