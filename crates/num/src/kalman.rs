//! A constant-velocity Kalman filter over one spatial coordinate.
//!
//! The tracker models each target's spectrogram ridge as a state
//! `x = (θ, θ̇)` — angle and angle rate — observed once per analysis
//! window through `z = θ + v`, `v ~ N(0, r)`. Between windows the state
//! propagates under the constant-velocity model driven by white
//! acceleration of power-spectral density `q` (the standard
//! discretized CV process noise):
//!
//! ```text
//! F = [1 dt; 0 1]        Q = q · [dt³/3  dt²/2; dt²/2  dt]
//! ```
//!
//! Everything is closed-form 2×2 algebra — no matrix library needed —
//! and fully deterministic, which keeps the tracker's
//! streaming-equals-offline contract bitwise.

/// Constant-velocity scalar-observation Kalman filter state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Kalman2 {
    /// State estimate `(θ, θ̇)`.
    pub x: [f64; 2],
    /// Covariance, row-major symmetric.
    pub p: [[f64; 2]; 2],
}

impl Kalman2 {
    /// Initializes from a first observation: position `z` with variance
    /// `var_pos`, unknown velocity with variance `var_vel` around 0.
    pub fn from_observation(z: f64, var_pos: f64, var_vel: f64) -> Self {
        assert!(var_pos > 0.0 && var_vel > 0.0);
        Self {
            x: [z, 0.0],
            p: [[var_pos, 0.0], [0.0, var_vel]],
        }
    }

    /// Time-update over `dt` seconds with acceleration PSD `q`.
    pub fn predict(&mut self, dt: f64, q: f64) {
        assert!(dt >= 0.0 && q >= 0.0);
        let [x0, x1] = self.x;
        self.x = [x0 + dt * x1, x1];
        let [[p00, p01], [p10, p11]] = self.p;
        // P ← F P Fᵀ + Q, written out.
        let n00 = p00 + dt * (p10 + p01) + dt * dt * p11 + q * dt * dt * dt / 3.0;
        let n01 = p01 + dt * p11 + q * dt * dt / 2.0;
        let n11 = p11 + q * dt;
        self.p = [[n00, n01], [n01, n11]];
    }

    /// Predicted observation (the current angle estimate).
    pub fn predicted(&self) -> f64 {
        self.x[0]
    }

    /// Innovation variance `S = P₀₀ + r` for measurement noise `r`.
    pub fn innovation_var(&self, r: f64) -> f64 {
        self.p[0][0] + r
    }

    /// Normalized innovation squared `ν²/S` — the Mahalanobis gate
    /// distance of observation `z` (χ²-distributed with 1 dof for a
    /// correctly associated detection).
    pub fn gate_distance2(&self, z: f64, r: f64) -> f64 {
        let nu = z - self.x[0];
        nu * nu / self.innovation_var(r)
    }

    /// Measurement update with observation `z`, noise variance `r`.
    /// Returns the innovation `ν = z − θ̂⁻`.
    pub fn update(&mut self, z: f64, r: f64) -> f64 {
        assert!(r > 0.0);
        let nu = z - self.x[0];
        let s = self.innovation_var(r);
        let k = [self.p[0][0] / s, self.p[1][0] / s];
        self.x = [self.x[0] + k[0] * nu, self.x[1] + k[1] * nu];
        let [[p00, p01], [_, p11]] = self.p;
        // P ← (I − K H) P with H = [1 0]; symmetric by construction.
        let n00 = (1.0 - k[0]) * p00;
        let n01 = (1.0 - k[0]) * p01;
        let n11 = p11 - k[1] * p01;
        self.p = [[n00, n01], [n01, n11]];
        nu
    }

    /// Current velocity estimate `θ̇`, degrees/second in the tracker's
    /// units.
    pub fn velocity(&self) -> f64 {
        self.x[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_pulls_estimate_toward_observation() {
        let mut kf = Kalman2::from_observation(0.0, 4.0, 1.0);
        kf.predict(1.0, 0.1);
        let nu = kf.update(10.0, 1.0);
        assert!(nu > 0.0);
        assert!(kf.predicted() > 0.0 && kf.predicted() < 10.0);
    }

    #[test]
    fn predict_inflates_covariance_update_shrinks_it() {
        let mut kf = Kalman2::from_observation(0.0, 4.0, 1.0);
        let p_before = kf.p[0][0];
        kf.predict(0.5, 1.0);
        assert!(kf.p[0][0] > p_before, "predict must inflate variance");
        let p_pred = kf.p[0][0];
        kf.update(0.0, 1.0);
        assert!(kf.p[0][0] < p_pred, "update must shrink variance");
    }

    #[test]
    fn converges_on_linear_motion() {
        // Target moves at a steady 5°/s; after enough updates the filter
        // should learn the velocity and track with small error.
        let mut kf = Kalman2::from_observation(0.0, 4.0, 25.0);
        let dt = 0.05;
        for i in 1..200 {
            let t = i as f64 * dt;
            kf.predict(dt, 0.5);
            kf.update(5.0 * t, 0.25);
        }
        assert!((kf.velocity() - 5.0).abs() < 0.5, "v̂ = {}", kf.velocity());
        assert!((kf.predicted() - 5.0 * 199.0 * dt).abs() < 0.5);
    }

    #[test]
    fn gate_distance_grows_with_innovation() {
        let kf = Kalman2::from_observation(0.0, 1.0, 1.0);
        assert!(kf.gate_distance2(0.1, 1.0) < kf.gate_distance2(3.0, 1.0));
        assert_eq!(kf.gate_distance2(0.0, 1.0), 0.0);
    }

    #[test]
    fn stationary_covariance_reaches_steady_state() {
        let mut kf = Kalman2::from_observation(0.0, 100.0, 100.0);
        let mut last = f64::INFINITY;
        for _ in 0..500 {
            kf.predict(0.05, 0.01);
            kf.update(0.0, 1.0);
            last = kf.p[0][0];
        }
        // Steady state: variance bounded and positive.
        assert!(last > 0.0 && last < 1.0, "P00 = {last}");
        // Symmetry preserved.
        assert_eq!(kf.p[0][1], kf.p[1][0]);
    }
}
