//! Complex double-precision arithmetic.
//!
//! A deliberately small, dependency-free complex number type. Everything in
//! the Wi-Vi pipeline — channels, precoding weights, OFDM symbols, steering
//! vectors — is a [`Complex64`], so this type favours plain `Copy`
//! value-semantics and inlined operators over generic abstraction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}` — the workhorse of steering vectors and path
    /// phase rotations.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`Self::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed via `hypot` for overflow safety.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // Smith's algorithm would be more robust at the extremes of the
        // exponent range; plain normalization is adequate for the unit-scale
        // channel coefficients used here.
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z * z.inv(), Complex64::ONE));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex64::from_polar(2.0, 0.3);
        let b = Complex64::from_polar(1.5, -1.1);
        let p = a * b;
        assert!((p.abs() - 3.0).abs() < 1e-12);
        assert!((p.arg() - (0.3 - 1.1)).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.25, -0.5);
        let b = Complex64::new(-2.0, 0.75);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn conj_properties() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        assert!(close(
            Complex64::new(0.0, theta).exp(),
            Complex64::cis(theta)
        ));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(4.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
