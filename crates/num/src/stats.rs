//! Statistics and dB helpers used by the evaluation harness.
//!
//! The paper reports its results almost exclusively as CDFs (Figs. 7-3,
//! 7-5, 7-7), dB quantities, means and percentiles; this module provides
//! those primitives once so every experiment binary formats identically.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by N). Returns 0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linearly-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Power ratio → decibels: `10·log10(x)`.
pub fn db(power_ratio: f64) -> f64 {
    10.0 * power_ratio.log10()
}

/// Decibels → power ratio: `10^(x/10)`.
pub fn from_db(db: f64) -> f64 {
    10.0_f64.powf(db / 10.0)
}

/// Amplitude ratio → decibels: `20·log10(x)`.
pub fn amp_db(amplitude_ratio: f64) -> f64 {
    20.0 * amplitude_ratio.log10()
}

/// Decibels → amplitude ratio: `10^(x/20)`.
pub fn amp_from_db(db: f64) -> f64 {
    10.0_f64.powf(db / 20.0)
}

/// An empirical cumulative distribution function over a sample set.
///
/// Mirrors the CDF plots of the paper's evaluation: construct from raw
/// samples, then query `F(x)` or render evenly-spaced rows for a table.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF from (unordered) samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "CDF of empty sample set");
        let mut sorted = samples.to_vec();
        assert!(sorted.iter().all(|x| !x.is_nan()), "CDF input contains NaN");
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `≤ x` (right-continuous step function).
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the first index with sample > x.
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF at fraction `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Renders `(x, F(x))` rows at `n` evenly spaced points across the
    /// sample range — the series a CDF figure plots.
    pub fn rows(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn db_round_trips() {
        assert!((db(100.0) - 20.0).abs() < 1e-12);
        assert!((from_db(db(42.0)) - 42.0).abs() < 1e-9);
        assert!((amp_db(10.0) - 20.0).abs() < 1e-12);
        assert!((amp_from_db(amp_db(3.5)) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_eval_steps() {
        let cdf = Cdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn cdf_quantiles_match_percentiles() {
        let samples: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let cdf = Cdf::new(&samples);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.min(), 0.0);
        assert_eq!(cdf.max(), 100.0);
    }

    #[test]
    fn cdf_rows_are_monotone() {
        let cdf = Cdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let rows = cdf.rows(16);
        assert_eq!(rows.len(), 16);
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF not monotone: {w:?}");
            assert!(w[1].0 > w[0].0);
        }
        assert_eq!(rows.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn cdf_rejects_empty() {
        let _ = Cdf::new(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        let _ = Cdf::new(&[1.0, f64::NAN]);
    }
}
