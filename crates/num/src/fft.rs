//! Iterative radix-2 FFT.
//!
//! The OFDM PHY in `wivi-sdr` maps 64 subcarriers per symbol, so the only
//! sizes this library ever transforms are small powers of two. A textbook
//! in-place, bit-reversal, decimation-in-time Cooley–Tukey transform is both
//! simple and fast enough (the FFT is nowhere near the pipeline bottleneck —
//! MUSIC's eigendecomposition is).
//!
//! Conventions: [`fft`] computes the *unnormalized* forward DFT
//! `X[k] = Σ_n x[n]·e^{-2πikn/N}`; [`ifft`] applies the `1/N` factor so that
//! `ifft(fft(x)) == x`.
//!
//! The streaming radio front-end transforms two blocks per channel sample
//! at 312.5 Hz, so the per-call trigonometry and the bit-reversal index
//! arithmetic are worth hoisting: [`FftPlan`] precomputes both once and
//! then transforms in place with **zero per-call heap allocation**. The
//! plan evaluates its twiddle tables with the same repeated-multiplication
//! recurrence as the free functions, so planned and unplanned transforms
//! agree bit-for-bit.

use crate::Complex64;

/// A precomputed transform plan for one power-of-two length: bit-reversal
/// permutation plus per-stage twiddle tables for both directions.
///
/// [`FftPlan::forward`] and [`FftPlan::inverse`] are in-place and perform
/// no heap allocation — the workhorse API for the per-sample OFDM path.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// `bitrev[i]` = bit-reversed index of `i` (only entries with
    /// `bitrev[i] > i` trigger a swap, mirroring the in-place permutation).
    bitrev: Vec<u32>,
    /// Forward twiddles, stages concatenated: for each butterfly length
    /// `len = 2, 4, …, n`, the `len/2` factors `w^k`. Total `n − 1` entries.
    fwd: Vec<Complex64>,
    /// Inverse twiddles, same layout.
    inv: Vec<Complex64>,
}

impl FftPlan {
    /// Plans transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            is_power_of_two(n),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    (i.reverse_bits() >> (usize::BITS - bits)) as u32
                }
            })
            .collect();

        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut inv = Vec::with_capacity(n.saturating_sub(1));
        for (table, sign) in [(&mut fwd, -1.0), (&mut inv, 1.0)] {
            let mut len = 2;
            while len <= n {
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex64::cis(ang);
                // The same `w *= wlen` recurrence the unplanned transform
                // uses, so planned results are bitwise identical.
                let mut w = Complex64::ONE;
                for _ in 0..len / 2 {
                    table.push(w);
                    w *= wlen;
                }
                len <<= 1;
            }
        }
        crate::probe::count_fft_plan();
        Self {
            n,
            bitrev,
            fwd,
            inv,
        }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-0 plan (never constructible — kept
    /// for API completeness alongside [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT. Allocation-free.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.run(data, &self.fwd);
    }

    /// In-place inverse DFT including the `1/N` normalization.
    /// Allocation-free.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.run(data, &self.inv);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn run(&self, data: &mut [Complex64], twiddles: &[Complex64]) {
        assert_eq!(data.len(), self.n, "buffer length does not match the plan");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // One flush per transform (n/2·log₂n butterfly pairs), not one
        // per block — the probe stays off the per-stage path.
        crate::probe::count_fft_run((n as u64 / 2) * n.trailing_zeros() as u64);
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        let mut offset = 0;
        while len <= n {
            let stage = &twiddles[offset..offset + len / 2];
            for start in (0..n).step_by(len) {
                // Each block's butterflies pair its low and high halves;
                // the dispatched kernel is bitwise-pinned to the scalar
                // `u ± v·w` sequence this loop always computed.
                let (lo, hi) = data[start..start + len].split_at_mut(len / 2);
                crate::simd::butterflies(lo, hi, stage);
            }
            offset += len / 2;
            len <<= 1;
        }
    }
}

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place forward DFT of a power-of-two-length buffer.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse DFT (including the `1/N` normalization).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex64]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

/// Convenience wrapper: forward DFT of a borrowed slice into a new vector.
pub fn fft_owned(data: &[Complex64]) -> Vec<Complex64> {
    let mut buf = data.to_vec();
    fft(&mut buf);
    buf
}

/// Convenience wrapper: inverse DFT of a borrowed slice into a new vector.
pub fn ifft_owned(data: &[Complex64]) -> Vec<Complex64> {
    let mut buf = data.to_vec();
    ifft(&mut buf);
    buf
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    /// Direct O(N²) DFT reference used to validate the fast transform.
    fn dft_reference(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::cis(
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let bin = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * (bin * t) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == bin {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_direct_dft() {
        let x: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 1.21).cos()))
            .collect();
        let fast = fft_owned(&x);
        let slow = dft_reference(&x);
        assert_close(&fast, &slow, 1e-10);
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let y = ifft_owned(&fft_owned(&x));
        assert_close(&x, &y, 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![Complex64::new(2.0, -3.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex64::new(2.0, -3.0));
        ifft(&mut x);
        assert_eq!(x[0], Complex64::new(2.0, -3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 12];
        fft(&mut x);
    }

    #[test]
    fn plan_matches_free_functions_bitwise() {
        for n in [1usize, 2, 8, 16, 64] {
            let plan = FftPlan::new(n);
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.61).sin(), (i as f64 * 1.7).cos()))
                .collect();

            let mut planned = x.clone();
            plan.forward(&mut planned);
            let legacy = fft_owned(&x);
            assert_eq!(planned, legacy, "forward mismatch at n={n}");

            plan.inverse(&mut planned);
            let mut legacy_rt = legacy;
            ifft(&mut legacy_rt);
            assert_eq!(planned, legacy_rt, "inverse mismatch at n={n}");
        }
    }

    #[test]
    fn plan_is_reusable() {
        let plan = FftPlan::new(16);
        let x: Vec<Complex64> = (0..16).map(|i| Complex64::from_re(i as f64)).collect();
        let mut a = x.clone();
        plan.forward(&mut a);
        plan.inverse(&mut a);
        let mut b = x.clone();
        plan.forward(&mut b);
        plan.inverse(&mut b);
        assert_eq!(a, b);
        for (orig, rt) in x.iter().zip(&a) {
            assert!((*orig - *rt).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut x = vec![Complex64::ZERO; 16];
        plan.forward(&mut x);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64 * 0.9).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft_owned(&x);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }
}
