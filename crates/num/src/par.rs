//! Order-preserving parallel map over scoped OS threads.
//!
//! Every parallel consumer in the workspace — the bench runner's trial
//! grid, the imaging engine's row-parallel focus sweep, the serving
//! shards' intra-shard workers — needs the same primitive: map a
//! function over independent items on `std::thread`s and get the
//! results back **in input order**, so the output is independent of the
//! thread count and of scheduling. Workers pull item indices from an
//! atomic counter and write into per-slot cells; determinism lives in
//! the items, not the executor. (This lived in `wivi-bench` originally;
//! it sits here so the library crates can share it without depending on
//! the bench harness.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` in parallel, preserving order.
///
/// Uses up to `available_parallelism` worker threads (never more than the
/// item count). Panics in workers propagate.
pub fn parallel_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_threads(items, f, None)
}

/// [`parallel_map`] with an explicit worker-thread cap (`None` ⇒
/// `available_parallelism`). `Some(1)` degenerates to a sequential map —
/// the determinism baseline the scenario engine's tests compare against.
pub fn parallel_map_threads<I, T, F>(items: &[I], f: F, threads: Option<usize>) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let n_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .max(1)
        .min(items.len());

    if n_threads == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                // ordering: Relaxed — the counter only hands out
                // distinct indices; each result is published through
                // its slot's Mutex, which does the synchronizing.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result slot poisoned")
                .expect("missing trial result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let sequential = parallel_map_threads(&items, |&x| x.wrapping_mul(0x9E37), Some(1));
        for threads in [2, 4, 16] {
            let parallel = parallel_map_threads(&items, |&x| x.wrapping_mul(0x9E37), Some(threads));
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }
}
