//! Numerics substrate for the Wi-Vi reproduction.
//!
//! The Wi-Vi signal chain is built entirely on complex baseband arithmetic:
//! OFDM modulation needs an FFT, the smoothed-MUSIC direction estimator
//! needs an eigendecomposition of complex Hermitian correlation matrices,
//! and the channel simulator needs circularly-symmetric Gaussian noise.
//! None of the crates available offline provide these, so this crate
//! implements them from scratch with property-tested invariants:
//!
//! * [`Complex64`] — complex double-precision arithmetic ([`complex`]).
//! * [`fft`] — iterative radix-2 FFT/IFFT used by the OFDM PHY.
//! * [`CMatrix`] and [`eig::hermitian_eig`] — dense complex matrices and a
//!   cyclic-Jacobi Hermitian eigensolver, the core of MUSIC ([`matrix`],
//!   [`eig`]).
//! * [`rng`] — the deterministic in-house [`rng::Rng64`] generator with
//!   Box–Muller normal and circularly-symmetric complex Gaussian sampling.
//! * [`assign`] — exact small-N minimum-cost assignment (the
//!   data-association kernel of the multi-target tracker).
//! * [`kalman`] — the 2-state constant-velocity Kalman filter each track
//!   runs over its (θ, θ̇) ridge state.
//! * [`merge`] — the deterministic timestamp-ordered k-way merge the
//!   serving engine uses to unify per-session event streams.
//! * [`grid2d`] and [`cfar`] — row-major image-buffer indexing and the
//!   cell-averaging CFAR detector of the 2-D imaging pipeline.
//! * [`stats`] — means, variances, percentiles, empirical CDFs and the
//!   dB conversions used throughout the evaluation harness.
//! * [`simd`] — runtime-dispatched AVX2 kernels for the complex inner
//!   loops (Givens rotations, butterflies, axpy, backprojection focus),
//!   bitwise-pinned to their scalar references (DESIGN.md §12).
//! * [`par`] — the order-preserving, thread-count-invariant parallel
//!   map the bench runner, imaging sweep, and serving shards share.
//! * [`probe`] — the `WIVI_OBS` observability switch plus single-writer
//!   per-thread kernel counters (SIMD dispatch levels, eig sweeps, FFT
//!   plan hits) that the `wivi-obs` registry exports (DESIGN.md §13).

pub mod assign;
pub mod cfar;
pub mod complex;
pub mod eig;
pub mod fft;
pub mod grid2d;
pub mod kalman;
pub mod matrix;
pub mod merge;
pub mod par;
pub mod probe;
pub mod rng;
pub mod simd;
pub mod stats;

pub use assign::{solve_assignment, Assignment};
pub use cfar::{ca_cfar_2d, CfarConfig, CfarDetection};
pub use complex::Complex64;
pub use eig::{hermitian_eig, EigWorkspace, HermitianEig};
pub use fft::FftPlan;
pub use grid2d::Grid2d;
pub use kalman::Kalman2;
pub use matrix::CMatrix;
pub use merge::{merge_streams, TimedStream};
pub use par::{parallel_map, parallel_map_threads};
pub use rng::Rng64;
