//! Deterministic random sampling.
//!
//! Everything stochastic in the reproduction — receiver thermal noise, LO
//! phase jitter, random-walk trajectories, per-subject gesture styles,
//! scenario grids — draws from the in-house [`Rng64`] generator so that
//! every trial is exactly reproducible from a single `u64` seed with zero
//! third-party dependencies. The generator is xoshiro256++ (Blackman &
//! Vigna), seeded through a SplitMix64 expansion; on top of the uniform
//! stream this module provides the Box–Muller normal and the
//! circularly-symmetric complex Gaussian the channel simulator needs.

use crate::Complex64;

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographic — it exists to make simulations reproducible. Streams
/// are stable across platforms and releases: trial seeds recorded in bench
/// reports keep meaning the same experiment.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion,
    /// so nearby seeds still produce uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut split = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [split(), split(), split(), split()],
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        // Multiply-shift bounded sampling; the bias is < 2⁻⁶⁴·n, far below
        // anything a simulation can observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Draws one standard normal deviate `N(0, 1)` via the Box–Muller transform.
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    // Guard against ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.next_f64();
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws `N(mean, sigma²)`.
pub fn normal(rng: &mut Rng64, mean: f64, sigma: f64) -> f64 {
    mean + sigma * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian `CN(0, sigma²)`:
/// real and imaginary parts are independent `N(0, sigma²/2)`, so that
/// `E[|z|²] = sigma²`.
pub fn complex_gaussian(rng: &mut Rng64, sigma: f64) -> Complex64 {
    let s = sigma / std::f64::consts::SQRT_2;
    Complex64::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Draws a complex number uniformly distributed on the unit circle.
pub fn random_phase(rng: &mut Rng64) -> Complex64 {
    Complex64::cis(rng.gen_range(0.0, std::f64::consts::TAU))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_covers_unit_interval() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 100_000;
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
            sum += x;
        }
        assert!(lo < 0.001 && hi > 0.999);
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng64::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_respects_mean_and_sigma() {
        let mut rng = Rng64::seed_from_u64(2);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn complex_gaussian_power_is_sigma_squared() {
        let mut rng = Rng64::seed_from_u64(3);
        let n = 100_000;
        let sigma = 0.7;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, sigma).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - sigma * sigma).abs() < 0.01, "E|z|² = {p}");
    }

    #[test]
    fn complex_gaussian_is_circular() {
        // Phase of CN(0,σ²) should be uniform: check first circular moment.
        let mut rng = Rng64::seed_from_u64(4);
        let n = 100_000;
        let m: Complex64 = (0..n)
            .map(|_| {
                let z = complex_gaussian(&mut rng, 1.0);
                Complex64::cis(z.arg())
            })
            .sum();
        assert!(m.abs() / (n as f64) < 0.01);
    }

    #[test]
    fn random_phase_unit_magnitude() {
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..100 {
            assert!((random_phase(&mut rng).abs() - 1.0).abs() < 1e-12);
        }
    }
}
