//! Random sampling helpers.
//!
//! The channel simulator needs circularly-symmetric complex Gaussian noise
//! (receiver thermal noise, channel-estimate perturbations) and the motion
//! models need plain normal deviates. `rand` alone provides only uniform
//! sampling, so this module adds a Box–Muller transform — small, exact, and
//! avoids pulling in `rand_distr`.

use crate::Complex64;
use rand::Rng;

/// Draws one standard normal deviate `N(0, 1)` via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws `N(mean, sigma²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian `CN(0, sigma²)`:
/// real and imaginary parts are independent `N(0, sigma²/2)`, so that
/// `E[|z|²] = sigma²`.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> Complex64 {
    let s = sigma / std::f64::consts::SQRT_2;
    Complex64::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Draws a complex number uniformly distributed on the unit circle.
pub fn random_phase<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    Complex64::cis(rng.gen_range(0.0..std::f64::consts::TAU))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_respects_mean_and_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn complex_gaussian_power_is_sigma_squared() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sigma = 0.7;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, sigma).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - sigma * sigma).abs() < 0.01, "E|z|² = {p}");
    }

    #[test]
    fn complex_gaussian_is_circular() {
        // Phase of CN(0,σ²) should be uniform: check first circular moment.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let m: Complex64 = (0..n)
            .map(|_| {
                let z = complex_gaussian(&mut rng, 1.0);
                Complex64::cis(z.arg())
            })
            .sum();
        assert!(m.abs() / (n as f64) < 0.01);
    }

    #[test]
    fn random_phase_unit_magnitude() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!((random_phase(&mut rng).abs() - 1.0).abs() < 1e-12);
        }
    }
}
