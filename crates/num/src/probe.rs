//! The observability master switch and the kernel-probe counters.
//!
//! This module is the bottom of the observability stack (the `wivi-obs`
//! crate builds its registry on top of it): it owns the process-wide
//! `WIVI_OBS` toggle, a stable small integer per thread
//! ([`thread_slot`], which the obs crate also uses to stripe its metric
//! cells), and the hot-kernel profiling counters — SIMD dispatch-level
//! call counts, eigensolver sweep counts, FFT plan builds and runs.
//!
//! **Overhead contract.** The whole module is built so that
//! observability costs nothing measurable:
//!
//! * Disabled (the default), every probe is a single static load and a
//!   predictable branch — [`enabled`] reads one `AtomicU8`.
//! * Enabled, counters are *single-writer*: each thread owns a private
//!   cell block and bumps it with a relaxed load + store (no `lock`
//!   prefix, no sharing). Readers sum the blocks — counts are exact
//!   because every cell has exactly one writer.
//! * The sub-100 ns kernels (Givens rotations, the fused Jacobi pivot,
//!   per-row axpy) are **never** counted per call: their callers
//!   aggregate locally in registers and flush one [`count_kernel`] per
//!   natural loop boundary (one per eigensolve, one per FFT run, one
//!   per correlation update). Per-call counting is reserved for kernels
//!   long enough to hide a few nanoseconds (`cdot`,
//!   `focus_accumulate`). DESIGN.md §13 records the budget.
//!
//! Counts are monotone from process start; consumers diff two
//! [`snapshot`]s to meter an interval. There is deliberately no reset —
//! resetting would break the single-writer invariant.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of SIMD dispatch levels tracked (scalar / AVX2 / AVX-512 —
/// mirrors `simd::SimdLevel`'s order).
pub const N_LEVELS: usize = 3;

/// The per-level kernel-call counters. `Rotations` counts Jacobi pivot
/// updates (aggregated per eigensolve), `AxpyRows` correlation rows
/// (aggregated per outer-product update), `Butterflies` FFT butterfly
/// pairs (aggregated per transform), `Caxpy` MUSIC projection axpys
/// (aggregated per window); `Cdot` and `Focus` are counted per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    Cdot,
    Caxpy,
    AxpyRows,
    Butterflies,
    Focus,
    Rotations,
}

const N_KERNELS: usize = 6;

// Flat cell layout: kernel × level grid, then the scalar counters.
const IDX_EIG_CALLS: usize = N_KERNELS * N_LEVELS;
const IDX_EIG_SWEEPS: usize = IDX_EIG_CALLS + 1;
const IDX_FFT_PLANS: usize = IDX_EIG_CALLS + 2;
const IDX_FFT_RUNS: usize = IDX_EIG_CALLS + 3;
const N_CELLS: usize = IDX_EIG_CALLS + 4;

// ---------------------------------------------------------------------
// The WIVI_OBS switch.

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// `true` when observability is on: the `WIVI_OBS` environment variable
/// is `1`/`true` (read once, at the first probe), or a runtime
/// [`set_enabled`] override is active. The off path is one relaxed
/// static load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    // ordering: Relaxed — STATE is a standalone tri-state flag; a
    // stale read only costs one extra trip through init_enabled, which
    // converges to the same value.
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var("WIVI_OBS").is_ok_and(|v| {
        let v = v.trim();
        v == "1" || v.eq_ignore_ascii_case("true")
    });
    // ordering: Relaxed — every racer computes the same value from the
    // same environment, so publication order cannot matter.
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Overrides the switch at runtime: `Some(true)`/`Some(false)` force it,
/// `None` restores the `WIVI_OBS` environment default (re-read at the
/// next probe). Affects all threads; intended for in-process
/// neutrality tests and the obs bench.
pub fn set_enabled(on: Option<bool>) {
    let state = match on {
        None => STATE_UNINIT,
        Some(false) => STATE_OFF,
        Some(true) => STATE_ON,
    };
    // ordering: Relaxed — the override is a standalone flag; callers
    // that need a crisp cutover (tests) serialize around it themselves.
    STATE.store(state, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Thread slots.

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // ordering: Relaxed — the fetch_add's atomicity alone guarantees
    // each thread a distinct slot; no other memory rides on it.
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable, process-unique integer for the calling thread
/// (assigned on first use, in thread-first-probe order). The obs
/// crate's sharded metric cells stripe on it.
#[inline]
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

// ---------------------------------------------------------------------
// Single-writer per-thread cells.

struct ThreadCells {
    cells: [AtomicU64; N_CELLS],
}

impl ThreadCells {
    fn new() -> Self {
        Self {
            cells: [const { AtomicU64::new(0) }; N_CELLS],
        }
    }

    /// Single-writer bump: only the owning thread calls this, so a
    /// relaxed load + store cannot lose updates and needs no `lock`.
    #[inline]
    fn bump(&self, idx: usize, n: u64) {
        let c = &self.cells[idx];
        // ordering: Relaxed — single-writer cell; readers aggregate a
        // snapshot and tolerate a bump landing one scrape late.
        c.store(c.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }
}

fn all_cells() -> &'static Mutex<Vec<std::sync::Arc<ThreadCells>>> {
    static ALL: OnceLock<Mutex<Vec<std::sync::Arc<ThreadCells>>>> = OnceLock::new();
    ALL.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MINE: std::sync::Arc<ThreadCells> = {
        let mine = std::sync::Arc::new(ThreadCells::new());
        all_cells().lock().expect("probe registry poisoned").push(std::sync::Arc::clone(&mine));
        mine
    };
}

#[inline]
fn bump(idx: usize, n: u64) {
    MINE.with(|c| c.bump(idx, n));
}

/// Records `n` calls (or aggregated units) of `kernel` at SIMD dispatch
/// level `level` (0 = scalar, 1 = AVX2, 2 = AVX-512; clamped). No-op
/// when observability is off.
#[inline]
pub fn count_kernel_at(kernel: Kernel, level: usize, n: u64) {
    if !enabled() {
        return;
    }
    bump(kernel as usize * N_LEVELS + level.min(N_LEVELS - 1), n);
}

/// [`count_kernel_at`] at the current auto-dispatch level.
#[inline]
pub fn count_kernel(kernel: Kernel, n: u64) {
    if !enabled() {
        return;
    }
    bump(
        kernel as usize * N_LEVELS + crate::simd::level() as usize,
        n,
    );
}

/// Records one eigensolve of `sweeps` Jacobi sweeps applying
/// `rotations` pivot updates (flushed once per solve by the caller).
#[inline]
pub fn count_eig(sweeps: u64, rotations: u64) {
    if !enabled() {
        return;
    }
    bump(IDX_EIG_CALLS, 1);
    bump(IDX_EIG_SWEEPS, sweeps);
    bump(
        Kernel::Rotations as usize * N_LEVELS + crate::simd::level() as usize,
        rotations,
    );
}

/// Records one FFT plan construction.
#[inline]
pub fn count_fft_plan() {
    if !enabled() {
        return;
    }
    bump(IDX_FFT_PLANS, 1);
}

/// Records one planned transform execution of `butterflies` butterfly
/// pairs (the plan-hit counter: `fft_runs / fft_plans` is the reuse
/// degree).
#[inline]
pub fn count_fft_run(butterflies: u64) {
    if !enabled() {
        return;
    }
    bump(IDX_FFT_RUNS, 1);
    bump(
        Kernel::Butterflies as usize * N_LEVELS + crate::simd::level() as usize,
        butterflies,
    );
}

// ---------------------------------------------------------------------
// Snapshots.

/// Per-level call/unit counts of one kernel: `[scalar, avx2, avx512]`.
pub type LevelCounts = [u64; N_LEVELS];

/// A monotone snapshot of every probe counter, summed across threads.
/// Exact (every cell is single-writer); diff two snapshots to meter an
/// interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeSnapshot {
    /// `cdot` calls per dispatch level.
    pub cdot: LevelCounts,
    /// MUSIC projection `caxpy` calls per level (caller-aggregated).
    pub caxpy: LevelCounts,
    /// Correlation rows accumulated per level (caller-aggregated).
    pub axpy_rows: LevelCounts,
    /// FFT butterfly pairs per level (aggregated per transform).
    pub butterflies: LevelCounts,
    /// Imaging `focus_accumulate` calls per level.
    pub focus: LevelCounts,
    /// Jacobi pivot updates per level (aggregated per eigensolve).
    pub rotations: LevelCounts,
    /// Hermitian eigensolves completed.
    pub eig_calls: u64,
    /// Jacobi sweeps executed across all eigensolves.
    pub eig_sweeps: u64,
    /// FFT plans constructed.
    pub fft_plans: u64,
    /// Planned FFT executions (plan hits).
    pub fft_runs: u64,
}

impl ProbeSnapshot {
    /// The counters gained between `earlier` and `self` (saturating).
    pub fn since(&self, earlier: &ProbeSnapshot) -> ProbeSnapshot {
        let d = |a: LevelCounts, b: LevelCounts| {
            let mut out = [0u64; N_LEVELS];
            for i in 0..N_LEVELS {
                out[i] = a[i].saturating_sub(b[i]);
            }
            out
        };
        ProbeSnapshot {
            cdot: d(self.cdot, earlier.cdot),
            caxpy: d(self.caxpy, earlier.caxpy),
            axpy_rows: d(self.axpy_rows, earlier.axpy_rows),
            butterflies: d(self.butterflies, earlier.butterflies),
            focus: d(self.focus, earlier.focus),
            rotations: d(self.rotations, earlier.rotations),
            eig_calls: self.eig_calls.saturating_sub(earlier.eig_calls),
            eig_sweeps: self.eig_sweeps.saturating_sub(earlier.eig_sweeps),
            fft_plans: self.fft_plans.saturating_sub(earlier.fft_plans),
            fft_runs: self.fft_runs.saturating_sub(earlier.fft_runs),
        }
    }

    /// `(name, per-level counts)` rows for the kernel counters, in a
    /// stable order (exporters iterate this).
    pub fn kernel_rows(&self) -> [(&'static str, LevelCounts); N_KERNELS] {
        [
            ("cdot", self.cdot),
            ("caxpy", self.caxpy),
            ("axpy_rows", self.axpy_rows),
            ("butterflies", self.butterflies),
            ("focus", self.focus),
            ("rotations", self.rotations),
        ]
    }

    /// Stable lower-case dispatch level names, index-aligned with
    /// [`LevelCounts`].
    pub fn level_names() -> [&'static str; N_LEVELS] {
        ["scalar", "avx2", "avx512"]
    }
}

/// Sums every thread's probe cells into a [`ProbeSnapshot`].
pub fn snapshot() -> ProbeSnapshot {
    let mut cells = [0u64; N_CELLS];
    for t in all_cells().lock().expect("probe registry poisoned").iter() {
        for (acc, c) in cells.iter_mut().zip(t.cells.iter()) {
            // ordering: Relaxed — counts are advisory telemetry; a
            // snapshot racing a bump may be one count stale, which the
            // probe contract allows.
            *acc = acc.wrapping_add(c.load(Ordering::Relaxed));
        }
    }
    let grid = |k: Kernel| {
        let mut out = [0u64; N_LEVELS];
        out.copy_from_slice(&cells[k as usize * N_LEVELS..(k as usize + 1) * N_LEVELS]);
        out
    };
    ProbeSnapshot {
        cdot: grid(Kernel::Cdot),
        caxpy: grid(Kernel::Caxpy),
        axpy_rows: grid(Kernel::AxpyRows),
        butterflies: grid(Kernel::Butterflies),
        focus: grid(Kernel::Focus),
        rotations: grid(Kernel::Rotations),
        eig_calls: cells[IDX_EIG_CALLS],
        eig_sweeps: cells[IDX_EIG_SWEEPS],
        fft_plans: cells[IDX_FFT_PLANS],
        fft_runs: cells[IDX_FFT_RUNS],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide switch (cargo runs
    /// tests on parallel threads). Assertions below only use `Caxpy`
    /// cells: nothing else in this test binary counts that kernel, so
    /// the counts are exact even with other modules' tests running.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn thread_slots_are_stable_and_distinct() {
        let a = thread_slot();
        assert_eq!(a, thread_slot());
        let b = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn counters_are_inert_when_disabled_and_exact_when_enabled() {
        let _g = guard();
        set_enabled(Some(false));
        let before = snapshot();
        count_kernel_at(Kernel::Caxpy, 0, 5);
        count_kernel_at(Kernel::Caxpy, 2, 2);
        assert_eq!(
            snapshot().since(&before).caxpy,
            [0, 0, 0],
            "disabled probes must not count"
        );

        set_enabled(Some(true));
        count_kernel_at(Kernel::Caxpy, 0, 5);
        count_kernel_at(Kernel::Caxpy, 2, 2);
        count_fft_plan();
        set_enabled(None);

        let after = snapshot().since(&before);
        assert_eq!(after.caxpy, [5, 0, 2]);
        assert!(after.fft_plans >= 1);
    }

    #[test]
    fn snapshot_sums_across_threads() {
        let _g = guard();
        set_enabled(Some(true));
        let before = snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| count_kernel_at(Kernel::Caxpy, 1, 10)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(None);
        assert_eq!(snapshot().since(&before).caxpy[1], 40);
    }
}
