//! Dense complex matrices.
//!
//! MUSIC needs exactly three matrix operations: accumulate outer products
//! `h·h^H` into a correlation matrix, multiply, and Hermitian-transpose.
//! This module provides a row-major dense [`CMatrix`] with just those plus
//! the small amount of glue the eigensolver and tests require. It is *not*
//! a general linear-algebra library by design (see DESIGN.md §7).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::Complex64;

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage (for kernels
    /// that operate on strided columns in place).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrows of two distinct rows at once (the row update of a
    /// Givens rotation needs both sides of the pair).
    ///
    /// # Panics
    /// Panics unless `p < q < self.rows()`.
    #[inline]
    pub fn row_pair_mut(&mut self, p: usize, q: usize) -> (&mut [Complex64], &mut [Complex64]) {
        assert!(p < q && q < self.rows, "row pair must satisfy p < q < rows");
        let cols = self.cols;
        let (head, tail) = self.data.split_at_mut(q * cols);
        (&mut head[p * cols..(p + 1) * cols], &mut tail[..cols])
    }

    /// Conjugate (Hermitian) transpose `A^H`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose `A^T` (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Adds the outer product `v·v^H`, scaled by `k`, in place.
    ///
    /// This is the correlation-matrix accumulation step of smoothed MUSIC
    /// (Eq. 5.2 of the paper): `R += k·h·h^H`.
    ///
    /// # Panics
    /// Panics unless the matrix is `n × n` with `n == v.len()`.
    pub fn add_outer(&mut self, v: &[Complex64], k: f64) {
        assert!(
            self.is_square() && self.rows == v.len(),
            "outer-product shape mismatch"
        );
        let cols = self.cols;
        for (r, row) in self.data.chunks_exact_mut(cols).enumerate() {
            crate::simd::accumulate_outer_row(row, v, v[r], k);
        }
        // One aggregated flush per update, not one per ~40 ns row.
        crate::probe::count_kernel(crate::probe::Kernel::AxpyRows, self.rows as u64);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "matrix–vector shape mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * x[c]).sum())
            .collect()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Sum of squared magnitudes of the strictly off-diagonal entries —
    /// the quantity the Jacobi eigensolver drives to zero.
    pub fn off_diagonal_energy(&self) -> f64 {
        let mut s = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    s += self[(r, c)].norm_sqr();
                }
            }
        }
        s
    }

    /// Largest deviation from Hermitian symmetry, `max |A[r,c] − conj(A[c,r])|`.
    pub fn hermitian_deviation(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                worst = worst.max((self[(r, c)] - self[(c, r)].conj()).abs());
            }
        }
        worst
    }

    /// Extracts column `c` as a vector.
    pub fn col(&self, c: usize) -> Vec<Complex64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Scales every entry by a real factor, in place.
    pub fn scale_mut(&mut self, k: f64) {
        for z in &mut self.data {
            *z = z.scale(k);
        }
    }

    /// Zeroes every entry in place (scratch-reuse reset: a zeroed reused
    /// matrix is indistinguishable from a fresh [`CMatrix::zeros`]).
    pub fn fill_zero(&mut self) {
        self.data.fill(Complex64::ZERO);
    }

    /// Overwrites `self` with the identity in place.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "identity requires a square matrix");
        self.data.fill(Complex64::ZERO);
        for i in 0..self.rows {
            self[(i, i)] = Complex64::ONE;
        }
    }

    /// Copies `other`'s entries into `self` without reallocating.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "matrix product shape mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>18}", format!("{}", self[(r, c)]))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = CMatrix::from_fn(3, 3, |r, cidx| {
            c((r * 3 + cidx) as f64, r as f64 - cidx as f64)
        });
        let i = CMatrix::identity(3);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn hermitian_transpose_involution() {
        let a = CMatrix::from_fn(2, 4, |r, cidx| c(r as f64, cidx as f64));
        assert_eq!(a.hermitian().hermitian(), a);
        assert_eq!(a.hermitian().rows(), 4);
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let a = CMatrix::from_fn(3, 2, |r, cidx| c((r + cidx) as f64, (r as f64) - 1.0));
        let x = vec![c(1.0, 1.0), c(0.5, -2.0)];
        let via_vec = a.mul_vec(&x);
        let xm = CMatrix::from_rows(2, 1, x);
        let via_mat = &a * &xm;
        for r in 0..3 {
            assert!((via_vec[r] - via_mat[(r, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn outer_product_accumulation_is_hermitian() {
        let mut r = CMatrix::zeros(3, 3);
        r.add_outer(&[c(1.0, 2.0), c(-0.5, 0.0), c(0.0, 1.0)], 1.0);
        r.add_outer(&[c(0.3, -1.0), c(2.0, 0.5), c(1.0, 0.0)], 0.5);
        assert!(r.hermitian_deviation() < 1e-14);
        // Diagonal of a (sum of) outer products is real and nonnegative.
        for i in 0..3 {
            assert!(r[(i, i)].im.abs() < 1e-14);
            assert!(r[(i, i)].re >= 0.0);
        }
    }

    #[test]
    fn off_diagonal_energy_of_diagonal_matrix_is_zero() {
        let mut d = CMatrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = c(i as f64, 0.0);
        }
        assert_eq!(d.off_diagonal_energy(), 0.0);
        assert!(d.frobenius_norm() > 0.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMatrix::from_fn(2, 2, |r, cidx| c(r as f64, cidx as f64));
        let b = CMatrix::from_fn(2, 2, |r, cidx| c(cidx as f64, -(r as f64)));
        let s = &(&a + &b) - &b;
        assert_eq!(s, a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_product_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn scratch_reuse_helpers() {
        let a = CMatrix::from_fn(3, 3, |r, cidx| c(r as f64, cidx as f64));
        let mut scratch = CMatrix::from_fn(3, 3, |_, _| c(9.0, 9.0));
        scratch.copy_from(&a);
        assert_eq!(scratch, a);
        scratch.set_identity();
        assert_eq!(scratch, CMatrix::identity(3));
        scratch.fill_zero();
        assert_eq!(scratch, CMatrix::zeros(3, 3));
    }

    #[test]
    #[should_panic(expected = "copy_from shape mismatch")]
    fn copy_from_checks_shape() {
        let a = CMatrix::zeros(2, 3);
        let mut b = CMatrix::zeros(3, 2);
        b.copy_from(&a);
    }

    #[test]
    fn col_extraction() {
        let a = CMatrix::from_fn(3, 2, |r, cidx| c((r * 10 + cidx) as f64, 0.0));
        assert_eq!(a.col(1), vec![c(1.0, 0.0), c(11.0, 0.0), c(21.0, 0.0)]);
    }
}
