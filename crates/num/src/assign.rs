//! Exact minimum-cost assignment for small problems.
//!
//! The multi-target tracker must match per-window detections to live
//! tracks. Greedy nearest-neighbour association is the classic failure
//! mode of multi-target tracking — two crossing ridges swap identities
//! exactly when their gates overlap — so the data-association layer
//! solves the *globally optimal* assignment instead. Problem sizes are
//! tiny (a handful of tracks × a handful of detections per window), which
//! makes an exact dynamic program over column subsets both simpler and
//! faster than a general Hungarian implementation: `O(n_rows · 2^m · m)`
//! with `m = n_cols ≤ `[`MAX_COLS`].
//!
//! Gating composes naturally: a forbidden pairing carries cost
//! [`f64::INFINITY`], and every row may instead stay *unassigned* at a
//! caller-chosen miss cost — the knob that trades a marginal match
//! against starting a new track.

/// Largest supported column count (the DP table is `2^m` wide).
pub const MAX_COLS: usize = 16;

/// Result of [`solve_assignment`].
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// `pairing[i] = Some(j)` assigns row `i` to column `j`; `None`
    /// leaves the row unassigned (at its miss cost).
    pub pairing: Vec<Option<usize>>,
    /// Total cost of the optimal solution (pair costs + miss costs).
    pub total_cost: f64,
}

/// Solves the rectangular min-cost assignment exactly.
///
/// `costs` is row-major `n_rows × n_cols`; `costs[i][j] = INFINITY`
/// forbids the pairing. Each row is assigned to at most one column and
/// vice versa; a row left unassigned contributes `miss_cost[i]`. Columns
/// may also remain unused at no cost (unmatched detections are the
/// tracker's job to handle, not the solver's).
///
/// Ties are broken deterministically (lowest row index prefers the lowest
/// feasible column index), so the solver is reproducible bit-for-bit.
///
/// # Panics
/// Panics if `n_cols > `[`MAX_COLS`], if row lengths are inconsistent, or
/// if `miss_cost.len() != n_rows`.
pub fn solve_assignment(costs: &[Vec<f64>], miss_cost: &[f64]) -> Assignment {
    let n_rows = costs.len();
    let n_cols = costs.first().map_or(0, Vec::len);
    assert!(
        n_cols <= MAX_COLS,
        "assignment supports at most {MAX_COLS} columns"
    );
    assert_eq!(miss_cost.len(), n_rows, "one miss cost per row");
    for row in costs {
        assert_eq!(row.len(), n_cols, "ragged cost matrix");
    }

    let n_masks = 1usize << n_cols;
    // dp[mask] after processing rows i..n_rows given `mask` columns already
    // used. Filled backwards from the last row.
    let mut dp = vec![0.0f64; n_masks];
    let mut next = vec![0.0f64; n_masks];
    // choice[i][mask]: column picked by row i (u8::MAX = miss).
    let mut choice = vec![vec![u8::MAX; n_masks]; n_rows];

    for i in (0..n_rows).rev() {
        for mask in 0..n_masks {
            let mut best = miss_cost[i] + next[mask];
            let mut pick = u8::MAX;
            for j in 0..n_cols {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let c = costs[i][j];
                if !c.is_finite() {
                    continue;
                }
                let cand = c + next[mask | (1 << j)];
                if cand < best {
                    best = cand;
                    pick = j as u8;
                }
            }
            dp[mask] = best;
            choice[i][mask] = pick;
        }
        std::mem::swap(&mut dp, &mut next);
    }

    // `next` now holds the row-0 table; replay the choices.
    let total_cost = if n_rows == 0 { 0.0 } else { next[0] };
    let mut pairing = Vec::with_capacity(n_rows);
    let mut mask = 0usize;
    for row_choice in &choice {
        match row_choice[mask] {
            u8::MAX => pairing.push(None),
            j => {
                pairing.push(Some(j as usize));
                mask |= 1 << j;
            }
        }
    }
    Assignment {
        pairing,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_problem() {
        let a = solve_assignment(&[], &[]);
        assert!(a.pairing.is_empty());
        assert_eq!(a.total_cost, 0.0);
    }

    #[test]
    fn one_to_one_diagonal() {
        let costs = vec![vec![1.0, 9.0], vec![9.0, 1.0]];
        let a = solve_assignment(&costs, &[100.0, 100.0]);
        assert_eq!(a.pairing, vec![Some(0), Some(1)]);
        assert_eq!(a.total_cost, 2.0);
    }

    #[test]
    fn global_optimum_beats_greedy() {
        // Greedy gives row 0 its best column (0 at cost 1), forcing row 1
        // to cost 10; the optimum swaps: 2 + 2 = 4.
        let costs = vec![vec![1.0, 2.0], vec![2.0, 10.0]];
        let a = solve_assignment(&costs, &[100.0, 100.0]);
        assert_eq!(a.pairing, vec![Some(1), Some(0)]);
        assert_eq!(a.total_cost, 4.0);
    }

    #[test]
    fn miss_cost_drops_expensive_rows() {
        let costs = vec![vec![50.0], vec![1.0]];
        let a = solve_assignment(&costs, &[5.0, 5.0]);
        assert_eq!(a.pairing, vec![None, Some(0)]);
        assert_eq!(a.total_cost, 6.0);
    }

    #[test]
    fn infinite_cost_forbids_pairing() {
        let costs = vec![vec![f64::INFINITY, 3.0]];
        let a = solve_assignment(&costs, &[10.0]);
        assert_eq!(a.pairing, vec![Some(1)]);
    }

    #[test]
    fn all_forbidden_means_all_missed() {
        let costs = vec![vec![f64::INFINITY; 2]; 2];
        let a = solve_assignment(&costs, &[1.0, 2.0]);
        assert_eq!(a.pairing, vec![None, None]);
        assert_eq!(a.total_cost, 3.0);
    }

    #[test]
    fn more_rows_than_columns() {
        let costs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let a = solve_assignment(&costs, &[10.0, 10.0, 10.0]);
        assert_eq!(a.pairing, vec![Some(0), None, None]);
        assert_eq!(a.total_cost, 21.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        let _ = solve_assignment(&[vec![1.0, 2.0], vec![1.0]], &[0.0, 0.0]);
    }
}
