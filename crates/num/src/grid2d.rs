//! Row-major 2-D grid indexing for image buffers.
//!
//! The imaging pipeline stores a room image as a flat `Vec<f64>` so the
//! backprojection hot loop is a single contiguous sweep; this helper owns
//! the `(ix, iy) ↔ flat index` arithmetic so every consumer (the
//! backprojector, the CFAR detector, the sub-cell refiner) agrees on the
//! layout. Layout is row-major with `x` fastest: `idx = iy·nx + ix`.

/// Dimensions of a flat row-major 2-D buffer (`x` fastest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid2d {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
}

impl Grid2d {
    /// Creates a grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1, "grid dimensions must be positive");
        Self { nx, ny }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the grid has no cells (impossible for a constructed
    /// grid; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of cell `(ix, iy)`.
    ///
    /// # Panics
    /// Panics if the cell is out of bounds.
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix}, {iy}) out of bounds"
        );
        iy * self.nx + ix
    }

    /// Cell coordinates `(ix, iy)` of flat index `i`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    pub fn coords(&self, i: usize) -> (usize, usize) {
        assert!(i < self.len(), "index {i} out of bounds");
        (i % self.nx, i / self.nx)
    }

    /// `true` if the *signed* cell coordinates lie inside the grid.
    pub fn contains(&self, ix: isize, iy: isize) -> bool {
        ix >= 0 && iy >= 0 && (ix as usize) < self.nx && (iy as usize) < self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_layout() {
        let g = Grid2d::new(5, 3);
        assert_eq!(g.len(), 15);
        assert!(!g.is_empty());
        // Row-major, x fastest.
        assert_eq!(g.idx(0, 0), 0);
        assert_eq!(g.idx(1, 0), 1);
        assert_eq!(g.idx(0, 1), 5);
        for i in 0..g.len() {
            let (ix, iy) = g.coords(i);
            assert_eq!(g.idx(ix, iy), i);
        }
    }

    #[test]
    fn contains_signed_bounds() {
        let g = Grid2d::new(4, 2);
        assert!(g.contains(0, 0) && g.contains(3, 1));
        assert!(!g.contains(-1, 0));
        assert!(!g.contains(4, 0));
        assert!(!g.contains(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn idx_rejects_out_of_bounds() {
        let _ = Grid2d::new(2, 2).idx(2, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dimension() {
        let _ = Grid2d::new(0, 3);
    }
}
