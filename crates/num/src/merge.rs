//! Timestamp-ordered merging of per-stream event sequences.
//!
//! The serving engine multiplexes many sensing sessions and must emit one
//! unified event stream: every session produces events stamped with its
//! own window-centre times, and downstream consumers (dashboards,
//! alerting) want them globally ordered. This module is the merge kernel:
//! a deterministic k-way merge over streams that are each already
//! ascending in time, with a **stable, total tie-break** — equal
//! timestamps order by stream tag (session id), and equal (time, tag)
//! pairs keep their within-stream order. The output is therefore a pure
//! function of the *set* of streams: shuffling the input stream order
//! changes nothing, which is what lets the serving layer stay bitwise
//! reproducible across shard counts and submission orders.
//!
//! Times compare via [`f64::total_cmp`], so the order is total even in
//! the presence of exotic values (no `partial_cmp` panics, `-0.0 < 0.0`
//! deterministically).

/// One input stream for [`merge_streams`]: a tag that identifies the
/// stream globally (the serving layer uses the session id) plus its
/// items, ascending in the caller's time key.
#[derive(Clone, Debug)]
pub struct TimedStream<T> {
    /// Globally unique stream identity; ties in time break by this.
    pub tag: u64,
    /// Items, ascending under the merge's time key.
    pub items: Vec<T>,
}

/// Merges streams that are each sorted by `time_of` into one sequence
/// ordered by `(time, tag, within-stream index)`.
///
/// The result is independent of the order of `streams`: equal times
/// order by `tag`, and a stream's own items keep their relative order.
/// Duplicate tags are allowed (their mutual tie order then follows input
/// position, so callers wanting full determinism should keep tags
/// unique, as session ids are).
///
/// # Panics
/// Panics if any stream is not ascending under `time_of` (the serving
/// layer pre-sorts per-session events, which carry back-dated entry
/// timestamps, before merging).
pub fn merge_streams<T, F>(streams: &[TimedStream<T>], time_of: F) -> Vec<(u64, T)>
where
    T: Clone,
    F: Fn(&T) -> f64,
{
    for s in streams {
        for w in s.items.windows(2) {
            assert!(
                time_of(&w[0]).total_cmp(&time_of(&w[1])) != std::cmp::Ordering::Greater,
                "stream {} is not ascending in time",
                s.tag
            );
        }
    }
    let total: usize = streams.iter().map(|s| s.items.len()).sum();
    let mut heads = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        // Scan the live heads for the minimum (time, tag). Stream counts
        // are small (one per session), so a linear scan beats heap
        // bookkeeping and is trivially deterministic.
        let mut best: Option<(f64, u64, usize)> = None;
        for (k, s) in streams.iter().enumerate() {
            if heads[k] >= s.items.len() {
                continue;
            }
            let t = time_of(&s.items[heads[k]]);
            let better = match best {
                None => true,
                Some((bt, btag, _)) => match t.total_cmp(&bt) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => s.tag < btag,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((t, s.tag, k));
            }
        }
        let (_, tag, k) = best.expect("total count guarantees a live head");
        out.push((tag, streams[k].items[heads[k]].clone()));
        heads[k] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_two_streams_in_time_order() {
        let a = TimedStream {
            tag: 1,
            items: vec![0.0, 2.0, 4.0],
        };
        let b = TimedStream {
            tag: 2,
            items: vec![1.0, 3.0],
        };
        let out = merge_streams(&[a, b], |&t| t);
        let times: Vec<f64> = out.iter().map(|(_, t)| *t).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn equal_times_break_by_tag() {
        let a = TimedStream {
            tag: 7,
            items: vec![1.0, 1.0],
        };
        let b = TimedStream {
            tag: 3,
            items: vec![1.0],
        };
        let out = merge_streams(&[a, b], |&t| t);
        let tags: Vec<u64> = out.iter().map(|(tag, _)| *tag).collect();
        assert_eq!(tags, vec![3, 7, 7]);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<(u64, f64)> = merge_streams(&[], |&t| t);
        assert!(out.is_empty());
        let out = merge_streams(
            &[TimedStream {
                tag: 1,
                items: Vec::<f64>::new(),
            }],
            |&t| t,
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "not ascending")]
    fn rejects_unsorted_stream() {
        let s = TimedStream {
            tag: 1,
            items: vec![2.0, 1.0],
        };
        let _ = merge_streams(&[s], |&t| t);
    }
}
