//! The fixture contract: every rule fires on its `_fail` snippet and
//! stays silent on its `_pass` snippet.
//!
//! Fixture files live in `tests/fixtures/` as `<RULE>_fail.*` /
//! `<RULE>_pass.*`. The first line is a `//@path` (or `#@path` for
//! TOML) directive giving the virtual workspace path the snippet
//! should be linted *as* — that is how path-scoped rules (pinned
//! crates, the unsafe allowlist, wire files) are exercised without the
//! fixtures living at the real paths. The workspace walker never
//! descends into `tests/`, so the deliberate violations in the corpus
//! can't fail the real lint gate.

use std::fs;
use std::path::PathBuf;

use wivi_lint::{lint_manifest, lint_source, Diag};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture according to its `@path` directive.
fn lint_fixture(name: &str) -> Vec<Diag> {
    let file = fixtures_dir().join(name);
    let src = fs::read_to_string(&file).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let first = src.lines().next().unwrap_or_default();
    let vpath = first
        .strip_prefix("//@path ")
        .or_else(|| first.strip_prefix("#@path "))
        .unwrap_or_else(|| panic!("{name}: missing @path directive"))
        .trim();
    if name.ends_with(".toml") {
        lint_manifest(vpath, &src)
    } else {
        lint_source(vpath, &src)
    }
}

fn rules_fired(name: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_fixture(name).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

const RULES: &[(&str, &str)] = &[
    ("D001", "rs"),
    ("D002", "rs"),
    ("D003", "rs"),
    ("U001", "rs"),
    ("U002", "rs"),
    ("A001", "rs"),
    ("W001", "rs"),
    ("W002", "rs"),
    ("W003", "rs"),
    ("Z001", "toml"),
    ("Z002", "rs"),
    ("L001", "rs"),
    ("L002", "rs"),
];

#[test]
fn every_rule_fires_on_its_fail_fixture() {
    for (rule, ext) in RULES {
        let fired = rules_fired(&format!("{rule}_fail.{ext}"));
        assert!(
            fired.contains(rule),
            "{rule}_fail.{ext}: expected {rule} to fire, got {fired:?}"
        );
    }
}

#[test]
fn every_rule_stays_silent_on_its_pass_fixture() {
    for (rule, ext) in RULES {
        let fired = rules_fired(&format!("{rule}_pass.{ext}"));
        assert!(
            !fired.contains(rule),
            "{rule}_pass.{ext}: {rule} fired where it should not: {fired:?}"
        );
    }
}

/// Every rule in the catalog has both fixture files — adding a rule
/// without its corpus breaks here, not in review.
#[test]
fn fixture_corpus_is_complete() {
    for (rule, _) in wivi_lint::rules::RULE_IDS {
        let n = fs::read_dir(fixtures_dir())
            .expect("fixtures dir")
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.starts_with(&format!("{rule}_fail"))
                    || name.starts_with(&format!("{rule}_pass"))
            })
            .count();
        assert!(n >= 2, "rule {rule} is missing pass/fail fixtures");
    }
}

/// A justified allow suppresses the diagnostic and is reported in the
/// allow inventory; the L001 fail fixture shows the unjustified form
/// is rejected rather than honored.
#[test]
fn justified_allow_suppresses_and_is_inventoried() {
    let file = fixtures_dir().join("L001_pass.rs");
    let src = fs::read_to_string(file).expect("read L001_pass.rs");
    let diags = lint_source("crates/num/src/fx.rs", &src);
    assert!(diags.is_empty(), "expected clean, got {diags:?}");
    let allows = wivi_lint::suppressions("crates/num/src/fx.rs", &src);
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, "D001");
    assert!(!allows[0].justification.is_empty());
}

/// An unjustified allow does NOT suppress: the original diagnostic
/// survives alongside the L001.
#[test]
fn unjustified_allow_does_not_suppress() {
    let fired = rules_fired("L001_fail.rs");
    assert!(fired.contains(&"L001"), "L001 missing: {fired:?}");
    assert!(fired.contains(&"D001"), "D001 should survive: {fired:?}");
}
