//@path crates/num/src/fx.rs
/// Docs may *mention* the `// wivi-lint: allow(D999)` syntax without
/// declaring an allow — doc comments are ignored by the parser.
pub fn nothing() {}
