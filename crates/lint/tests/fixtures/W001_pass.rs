//@path crates/serve/src/wire.rs
pub enum WireError {
    Truncated,
}

pub fn decode(buf: &[u8]) -> Result<u8, WireError> {
    buf.first().copied().ok_or(WireError::Truncated)
}

// Not a decode path (no Result<_, WireError>): W001 does not apply.
pub fn trusted(buf: &[u8]) -> u8 {
    *buf.first().unwrap()
}
