//@path crates/num/src/fx.rs
pub fn stamp() -> std::time::Instant {
    // wivi-lint: allow(D001): fixture for a justified clock read.
    std::time::Instant::now()
}
