//@path crates/sdr/src/fx.rs
use std::fmt::Write as _;

pub fn render() -> String {
    let mut out = String::new();
    // writeln! to a caller-chosen sink is fine; so is a string that
    // merely says "println!".
    let _ = writeln!(out, "ok");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests() {
        println!("tests may print");
    }
}
