//@path crates/num/src/fx.rs
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
