//@path crates/num/src/fx.rs
pub fn nothing() {
    // wivi-lint: allow(D999): no such rule.
}
