//@path crates/serve/src/fx.rs
pub fn fnv(x: u64) -> u64 {
    x.wrapping_mul(0x100000001b3)
}

#[cfg(test)]
mod tests {
    use std::collections::hash_map::RandomState;

    pub fn only_in_tests() -> RandomState {
        RandomState::new()
    }
}
