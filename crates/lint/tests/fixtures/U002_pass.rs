//@path crates/obs/src/spans.rs
pub fn read_first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above; this file is allowlisted.
    unsafe { *xs.as_ptr() }
}
