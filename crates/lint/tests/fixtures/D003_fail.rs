//@path crates/serve/src/fx.rs
use std::collections::hash_map::RandomState;

pub fn hasher() -> RandomState {
    RandomState::new()
}
