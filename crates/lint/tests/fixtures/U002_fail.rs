//@path crates/rf/src/fx.rs
pub fn read_first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above — but this file is not on the
    // unsafe allowlist, so U002 fires regardless.
    unsafe { *xs.as_ptr() }
}
