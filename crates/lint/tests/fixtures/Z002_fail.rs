//@path crates/sdr/src/fx.rs
pub fn run() {
    println!("progress: 50%");
}
