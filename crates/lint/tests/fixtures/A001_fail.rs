//@path crates/obs/src/fx.rs
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
