//@path crates/serve/src/net.rs
pub enum ClientError {
    Truncated,
}

pub fn decode(buf: &[u8]) -> Result<u8, ClientError> {
    if buf.is_empty() {
        return Err(ClientError::Truncated);
    }
    Ok(buf[0])
}
