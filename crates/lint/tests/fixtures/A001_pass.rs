//@path crates/obs/src/fx.rs
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — standalone tally, nothing rides on it.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn strong(c: &AtomicU64) -> u64 {
    // SeqCst needs no justification comment.
    c.fetch_add(1, Ordering::SeqCst)
}

pub fn plain_load(c: &AtomicU64) -> u64 {
    // Loads are not RMWs; A001 leaves them alone.
    c.load(Ordering::Relaxed)
}
