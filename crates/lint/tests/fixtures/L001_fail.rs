//@path crates/num/src/fx.rs
pub fn stamp() -> std::time::Instant {
    // wivi-lint: allow(D001)
    std::time::Instant::now()
}
