//@path crates/serve/src/wire.rs
pub enum WireError {
    Truncated,
}

pub fn decode(buf: &[u8]) -> Result<u8, WireError> {
    Ok(*buf.first().unwrap())
}
