//@path crates/serve/src/wire.rs
pub fn put_len(buf: &mut Vec<u8>, n: usize) {
    let len = n as u32;
    buf.extend_from_slice(&len.to_le_bytes());
}
