//@path crates/serve/src/net.rs
pub enum ClientError {
    Truncated,
}

pub fn decode(buf: &[u8]) -> Result<u8, ClientError> {
    let table = [1u8, 2, 3];
    let _ = table;
    buf.first().copied().ok_or(ClientError::Truncated)
}
