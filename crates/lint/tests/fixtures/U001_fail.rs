//@path crates/num/src/simd.rs
pub fn read_first(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() }
}
