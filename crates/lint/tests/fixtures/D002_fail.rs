//@path crates/track/src/fx.rs
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
