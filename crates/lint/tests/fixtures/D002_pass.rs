//@path crates/track/src/fx.rs
use std::collections::BTreeMap;

// A comment naming HashMap does not fire; neither does the string
// "HashSet<u32>" below.
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    let _ = "HashSet<u32>";
    m
}
