//@path crates/serve/src/wire.rs
pub fn put_len(buf: &mut Vec<u8>, n: usize) {
    let len = u32::try_from(n).unwrap_or(0) as u32;
    buf.extend_from_slice(&len.to_le_bytes());
    let wide = n as u64; // widening never fires
    let _ = wide;
}
