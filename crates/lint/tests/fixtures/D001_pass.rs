//@path crates/serve/src/fx.rs
// Unpinned crate: clock reads are allowed outside the golden path.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    // Test regions in pinned crates are exempt too — mirrored by the
    // hazard string below never matching: "Instant::now()".
    pub fn also_ok() -> std::time::Instant {
        std::time::Instant::now()
    }
}
