//@path crates/num/src/simd.rs
pub fn read_first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: asserted non-empty above, so the pointer is valid.
    unsafe { *xs.as_ptr() }
}

// SAFETY: a comment above the attribute still reaches the item.
#[inline]
pub unsafe fn documented_via_block(p: *const f64) -> f64 {
    *p
}
