//! Property tests for the hand-rolled lexer, driven by the workspace's
//! own deterministic [`wivi_num::Rng64`] — seeded, so a failure is a
//! repro, not a flake.
//!
//! The properties:
//!
//! 1. **Round-trip**: for any token stream the lexer produces,
//!    concatenating `tok.text` in order and re-inserting the skipped
//!    whitespace reproduces the input byte-for-byte (the lexer is a
//!    partition of the source, never lossy).
//! 2. **Totality**: random byte soup lexes without panicking.
//! 3. **Hazard inertness**: rule-trigger spellings (`unsafe`,
//!    `Instant::now`, `unwrap`) inside strings, raw strings, chars,
//!    and comments never come out as `Ident` tokens.

use wivi_lint::lexer::{lex, TokKind};
use wivi_num::Rng64;

/// The concatenated token texts must equal the source minus whitespace.
fn assert_partition(src: &str) {
    let toks = lex(src);
    let glued: String = toks.iter().map(|t| t.text).collect();
    let stripped: String = {
        // Remove exactly the bytes the lexer skips: whitespace outside
        // tokens. Easiest check: walk the source consuming each token
        // text in order; between tokens only whitespace may appear.
        let mut rest = src;
        for t in &toks {
            let at = rest
                .find(t.text)
                .unwrap_or_else(|| panic!("token {:?} not found in remaining source", t.text));
            assert!(
                rest[..at].chars().all(char::is_whitespace),
                "non-whitespace skipped before {:?}: {:?}",
                t.text,
                &rest[..at]
            );
            rest = &rest[at + t.text.len()..];
        }
        assert!(
            rest.chars().all(char::is_whitespace),
            "non-whitespace after last token: {rest:?}"
        );
        glued.clone()
    };
    assert_eq!(glued, stripped);
}

/// Emits one random token's source text.
fn random_token(rng: &mut Rng64, out: &mut String) {
    let idents = ["unsafe", "HashMap", "unwrap", "foo", "r#match", "Instant"];
    let puncts = [
        "{", "}", "(", ")", ";", ".", "::", "->", "=>", "#", "[", "]",
    ];
    match rng.next_u64() % 10 {
        0 => out.push_str(idents[(rng.next_u64() % idents.len() as u64) as usize]),
        1 => out.push_str(puncts[(rng.next_u64() % puncts.len() as u64) as usize]),
        2 => out.push_str(&format!("{}", rng.next_u64() % 100000)),
        3 => out.push_str(&format!("\"str {} \\\" end\"", rng.next_u64() % 10)),
        4 => out.push_str(&format!("r#\"raw {} unsafe \"# ", rng.next_u64() % 10)),
        5 => out
            .push_str(["'a'", "'\\''", "b'x'", "b'\\\\'", "'\\n'"][(rng.next_u64() % 5) as usize]),
        6 => out.push_str(["'a", "'static", "'_"][(rng.next_u64() % 3) as usize]),
        7 => out.push_str(&format!("// line comment {}\n", rng.next_u64() % 10)),
        8 => out.push_str(&format!(
            "/* block /* nested {} */ comment */",
            rng.next_u64() % 10
        )),
        _ => out.push_str(&format!("1.5e{}", rng.next_u64() % 10)),
    }
}

#[test]
fn random_token_streams_round_trip() {
    let mut rng = Rng64::seed_from_u64(0x5EED_1E1E);
    for _ in 0..200 {
        let mut src = String::new();
        let n = 1 + (rng.next_u64() % 40) as usize;
        for _ in 0..n {
            random_token(&mut rng, &mut src);
            // Random separator: space, newline, or nothing after
            // self-terminating tokens (comments end with \n already).
            match rng.next_u64() % 3 {
                0 => src.push(' '),
                1 => src.push('\n'),
                _ => src.push(' '),
            }
        }
        assert_partition(&src);
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xB17E_5009);
    for _ in 0..200 {
        let n = (rng.next_u64() % 256) as usize;
        let bytes: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0x7F) as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = lex(&src);
    }
}

#[test]
fn hazards_inside_literals_are_not_idents() {
    let cases = [
        r#"let s = "unsafe { Instant::now() }";"#,
        r##"let s = r#"x.unwrap() and HashMap"#;"##,
        "// unsafe unwrap HashMap in a comment",
        "/* unsafe /* nested unsafe */ still comment */",
        r#"let c = '\''; let b = b'\''; let s = "after quotes unsafe";"#,
    ];
    for src in cases {
        for t in lex(src) {
            if t.kind == TokKind::Ident {
                assert!(
                    !matches!(t.text, "unsafe" | "unwrap" | "HashMap" | "Instant"),
                    "hazard {:?} leaked out of a literal in {src:?}",
                    t.text
                );
            }
        }
    }
}

#[test]
fn lifetime_vs_char_disambiguation() {
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; let b = b'\\''; }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    assert_eq!(chars.len(), 3, "{toks:?}");
}

#[test]
fn nested_block_comment_is_one_token() {
    let toks = lex("/* a /* b /* c */ */ d */ ident");
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert_eq!(toks[1].kind, TokKind::Ident);
    assert_eq!(toks[1].text, "ident");
}

#[test]
fn raw_strings_with_hashes_and_byte_variants() {
    let toks = lex(r###"let a = r"x"; let b = r#"y " y"#; let c = br#"z"#; let d = b"w";"###);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 4, "{toks:?}");
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "a\n/* one\ntwo */\nb\n\"s1\ns2\"\nc";
    let toks = lex(src);
    let find = |txt: &str| toks.iter().find(|t| t.text == txt).map(|t| t.line);
    assert_eq!(find("a"), Some(1));
    assert_eq!(find("b"), Some(4));
    assert_eq!(find("c"), Some(7));
}
