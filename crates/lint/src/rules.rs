//! The rule catalog.
//!
//! Every rule has a stable id, fires with `file:line` granularity, and
//! matches on the token stream from [`crate::lexer`] — never on raw
//! text, so hazards inside strings and comments stay inert. Scoping is
//! path-based: the pinned-crate list, the unsafe allowlist, and the
//! wire-file list are the policy knobs, declared here as constants so
//! adding a crate to a scope is a one-line diff.
//!
//! Rule series:
//!
//! | series | invariant                                     |
//! |--------|-----------------------------------------------|
//! | D      | determinism of the pinned numeric pipeline     |
//! | U      | unsafe hygiene (SAFETY comments + allowlist)   |
//! | A      | atomics audit (justified relaxed RMWs)         |
//! | W      | wire safety (panic-free request decode)        |
//! | Z      | workspace policy (path-only deps, no printing) |
//! | L      | lint meta (well-formed suppressions)           |
//!
//! Test regions (`#[cfg(test)]`) are exempt from every series except U
//! — a test may panic and read clocks, but an undocumented `unsafe` is
//! a hazard wherever it lives.

use crate::lexer::TokKind;
use crate::{Diag, FileCtx};

/// Crates whose outputs feed the golden traces: any nondeterminism
/// here breaks the bitwise contract (ROADMAP "Tier-1 verify").
const PINNED_CRATES: &[&str] = &["num", "rf", "sdr", "core", "track", "image"];

/// The only files allowed to contain `unsafe` at all: the SIMD kernels
/// (intrinsics are inherently unsafe) and the obs span ring (lock-free
/// internals). Everything else must stay safe Rust.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/num/src/simd.rs", "crates/obs/src/spans.rs"];

/// Files whose `Result<_, WireError/ClientError/AdmitError>` functions
/// are "request-decode paths": they parse untrusted bytes and must be
/// panic-free (W001/W002).
const WIRE_FILES: &[&str] = &[
    "crates/serve/src/wire.rs",
    "crates/serve/src/net.rs",
    "crates/serve/src/admission.rs",
];

/// The codec itself, where `as` narrowing on lengths needs a bounds
/// check (W003).
const CODEC_FILES: &[&str] = &["crates/serve/src/wire.rs"];

/// Error types that mark a function as a decode path.
const DECODE_ERRORS: &[&str] = &["WireError", "ClientError", "AdmitError"];

/// Crates exempt from Z002: `bench` is a reporting harness whose whole
/// job is to print, and `lint` is this tool.
const PRINT_EXEMPT: &[&str] = &["bench", "lint"];

/// Every rule id, including the manifest and meta series — the set
/// `allow(...)` accepts.
pub const RULE_IDS: &[(&str, &str)] = &[
    (
        "D001",
        "no wall-clock reads (SystemTime / Instant::now) in pinned crates",
    ),
    (
        "D002",
        "no HashMap/HashSet in pinned crates (iteration order is random)",
    ),
    ("D003", "no RandomState anywhere in library code"),
    ("U001", "every unsafe site carries a SAFETY: comment"),
    ("U002", "unsafe only in the allowlisted files"),
    (
        "A001",
        "relaxed atomic RMWs carry an ordering: justification",
    ),
    ("W001", "no unwrap/expect/panic in request-decode paths"),
    ("W002", "no slice indexing in request-decode paths"),
    ("W003", "as-narrowing in the codec needs a bounds check"),
    ("Z001", "manifests declare path-only dependencies"),
    ("Z002", "no println!/print!/dbg! in library crates"),
    ("L001", "suppressions are well-formed and justified"),
    ("L002", "suppressions name a known rule"),
];

pub fn is_known_rule(id: &str) -> bool {
    RULE_IDS.iter().any(|(r, _)| *r == id)
}

/// The source-file checkers, in catalog order (Z001 is manifest-side,
/// L-series lives in the suppression parser).
pub(crate) fn source_rules() -> &'static [fn(&FileCtx<'_>, &mut Vec<Diag>)] {
    &[d001, d002, d003, u001, u002, a001, w001, w002, w003, z002]
}

fn push(diags: &mut Vec<Diag>, rule: &'static str, ctx: &FileCtx<'_>, line: u32, msg: String) {
    diags.push(Diag {
        rule,
        path: ctx.path.to_string(),
        line,
        msg,
    });
}

fn in_pinned_crate(ctx: &FileCtx<'_>) -> bool {
    PINNED_CRATES.contains(&ctx.crate_name()) && ctx.is_lib_source()
}

// ---------------------------------------------------------------------
// D-series: determinism.

/// D001 — `SystemTime` or `Instant::now()` in a pinned crate. Golden
/// traces are bitwise; a kernel that reads the clock can't be. Timing
/// for diagnostics must ride behind the obs gate and carry an allow.
fn d001(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !in_pinned_crate(ctx) {
        return;
    }
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        if ctx.is_ident(k, "SystemTime") {
            push(
                diags,
                "D001",
                ctx,
                line,
                "SystemTime in a pinned crate — golden traces must not depend on the wall clock"
                    .into(),
            );
        }
        if ctx.is_ident(k, "Instant")
            && k + 3 < ctx.code.len()
            && ctx.is_punct(k + 1, ':')
            && ctx.is_punct(k + 2, ':')
            && ctx.is_ident(k + 3, "now")
        {
            push(diags, "D001", ctx, line, "Instant::now() in a pinned crate — clock reads belong behind the obs gate with a justified allow".into());
        }
    }
}

/// D002 — `HashMap`/`HashSet` anywhere in a pinned crate. Their
/// iteration order is seeded per-process; a result that ever iterates
/// one is nondeterministic. Pinned code uses `BTreeMap` or the
/// fixed-seed FNV table instead.
fn d002(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !in_pinned_crate(ctx) {
        return;
    }
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        for name in ["HashMap", "HashSet"] {
            if ctx.is_ident(k, name) {
                push(diags, "D002", ctx, line, format!("{name} in a pinned crate — iteration order is randomized; use BTreeMap or the FNV table"));
            }
        }
    }
}

/// D003 — `RandomState` in any library source: the per-process hasher
/// seed is the root cause D002 guards against; naming it directly is
/// never right in this workspace.
fn d003(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !ctx.is_lib_source() {
        return;
    }
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        if ctx.is_ident(k, "RandomState") {
            push(
                diags,
                "D003",
                ctx,
                line,
                "RandomState is per-process-seeded — deterministic code must not touch it".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// U-series: unsafe hygiene.

/// U001 — every `unsafe` keyword (block, fn, impl, trait) must carry a
/// `SAFETY:` comment on its line or in the comment block directly
/// above its statement. Applies in tests too: an unexplained unsafe is
/// a hazard wherever it lives.
fn u001(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    for k in 0..ctx.code.len() {
        if !ctx.is_ident(k, "unsafe") {
            continue;
        }
        if !ctx.has_marker(k, "SAFETY:") {
            push(
                diags,
                "U001",
                ctx,
                ctx.code_tok(k).line,
                "unsafe without a SAFETY: comment — state the invariant that makes this sound"
                    .into(),
            );
        }
    }
}

/// U002 — `unsafe` appears outside the allowlist. The workspace's
/// safety story is that unsafety is *contained*: SIMD intrinsics and
/// the span ring, nothing else.
fn u002(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if UNSAFE_ALLOWLIST.contains(&ctx.path) {
        return;
    }
    for k in 0..ctx.code.len() {
        if ctx.is_ident(k, "unsafe") {
            push(diags, "U002", ctx, ctx.code_tok(k).line, format!("unsafe outside the allowlist ({}) — keep unsafety contained or extend the list deliberately", UNSAFE_ALLOWLIST.join(", ")));
        }
    }
}

// ---------------------------------------------------------------------
// A-series: atomics.

/// Atomic read-modify-write methods: the operations where `Relaxed`
/// has real consequences (lost synchronization on the value's
/// *neighbors*, not the value itself).
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// A001 — a relaxed RMW without an `ordering:` comment. PR 9's
/// tick-ring race was exactly this: a relaxed publish that looked
/// innocent. The comment must say why relaxed is enough (or the code
/// must use a stronger ordering).
fn a001(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        let is_rmw = RMW_METHODS.iter().any(|m| ctx.is_ident(k, m));
        if !is_rmw || k == 0 || !ctx.is_punct(k - 1, '.') {
            continue;
        }
        // Scan the call's argument list for a `Relaxed` ordering.
        if k + 1 >= ctx.code.len() || !ctx.is_punct(k + 1, '(') {
            continue;
        }
        let mut depth = 0usize;
        let mut relaxed = false;
        let mut j = k + 1;
        while j < ctx.code.len() {
            if ctx.is_punct(j, '(') {
                depth += 1;
            } else if ctx.is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if ctx.is_ident(j, "Relaxed") {
                relaxed = true;
            }
            j += 1;
        }
        if relaxed && !ctx.has_marker(k, "ordering:") && !ctx.has_marker(k, "Ordering:") {
            push(diags, "A001", ctx, line, "relaxed atomic RMW without an `ordering:` comment — say why no synchronization is needed here".into());
        }
    }
}

// ---------------------------------------------------------------------
// W-series: wire safety.

/// Line ranges (start, end) of request-decode functions: `fn`s in the
/// wire files whose return type names one of [`DECODE_ERRORS`]. Found
/// lexically — scan from `fn` to the first body `{` or declaration
/// `;`, looking for `-> … WireError …`.
fn decode_fn_ranges(ctx: &FileCtx<'_>) -> Vec<(u32, u32)> {
    let n = ctx.code.len();
    let mut ranges = Vec::new();
    let mut k = 0;
    while k < n {
        if !ctx.is_ident(k, "fn") {
            k += 1;
            continue;
        }
        // Scan the signature for `->` then an error-type ident.
        let mut j = k + 1;
        let mut saw_arrow = false;
        let mut is_decode = false;
        while j < n {
            if ctx.is_punct(j, '{') || ctx.is_punct(j, ';') {
                break;
            }
            if ctx.is_punct(j, '-') && j + 1 < n && ctx.is_punct(j + 1, '>') {
                saw_arrow = true;
            }
            if saw_arrow && DECODE_ERRORS.iter().any(|e| ctx.is_ident(j, e)) {
                is_decode = true;
            }
            j += 1;
        }
        if is_decode && j < n && ctx.is_punct(j, '{') {
            // Body range: match the brace.
            let start = ctx.code_tok(k).line;
            let mut depth = 0usize;
            let mut end = j;
            while end < n {
                if ctx.is_punct(end, '{') {
                    depth += 1;
                } else if ctx.is_punct(end, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                end += 1;
            }
            let end_line = ctx.code_tok(end.min(n - 1)).line;
            ranges.push((start, end_line));
            k = end;
        }
        k = k.max(j) + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(s, e)| (s..=e).contains(&line))
}

/// W001 — `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` inside a
/// request-decode function. A malformed frame must come back as a
/// `WireError`, never take the reactor down.
fn w001(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !WIRE_FILES.contains(&ctx.path) {
        return;
    }
    let ranges = decode_fn_ranges(ctx);
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) || !in_ranges(&ranges, line) {
            continue;
        }
        let method = ["unwrap", "expect"].iter().any(|m| ctx.is_ident(k, m))
            && k > 0
            && ctx.is_punct(k - 1, '.');
        let mac = ["panic", "unreachable", "todo", "unimplemented"]
            .iter()
            .any(|m| ctx.is_ident(k, m))
            && k + 1 < ctx.code.len()
            && ctx.is_punct(k + 1, '!');
        if method || mac {
            push(diags, "W001", ctx, line, format!("`{}` in a request-decode path — malformed input must become a WireError, not a panic", ctx.code_tok(k).text));
        }
    }
}

/// W002 — slice indexing (`buf[i]`, `buf[a..b]`) inside a
/// request-decode function: indexing panics on short input; decode
/// paths use `get()` / `first_chunk()` / `split_first()`.
fn w002(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !WIRE_FILES.contains(&ctx.path) {
        return;
    }
    let ranges = decode_fn_ranges(ctx);
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) || !in_ranges(&ranges, line) {
            continue;
        }
        if !ctx.is_punct(k, '[') || k == 0 {
            continue;
        }
        // Index expression ⇔ `[` follows a value: ident, `)`, `]`, `?`.
        // (Array literals follow `=`/`(`/`,`; attributes follow `#`;
        // slice patterns follow `let`/`(`; types follow `:`/`&`.)
        let prev = ctx.code_tok(k - 1);
        let is_index = match prev.kind {
            TokKind::Ident => !matches!(prev.text, "let" | "mut" | "ref" | "box" | "return" | "in"),
            TokKind::Punct => matches!(prev.text, ")" | "]" | "?"),
            _ => false,
        };
        if is_index {
            push(diags, "W002", ctx, line, "slice indexing in a request-decode path — use get()/first_chunk()/split_first() so short input errors instead of panicking".into());
        }
    }
}

/// W003 — `as u8/u16/u32` narrowing in the codec without a bounds
/// check in the same statement (a `debug_assert`/`min`/`try_from`) or
/// a `bounds:` comment. Length arithmetic that silently truncates
/// writes frames that misparse on the peer.
fn w003(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !CODEC_FILES.contains(&ctx.path) {
        return;
    }
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        if !ctx.is_ident(k, "as")
            || k + 1 >= ctx.code.len()
            || !["u8", "u16", "u32"].iter().any(|t| ctx.is_ident(k + 1, t))
        {
            continue;
        }
        // Statement bounds: previous and next `;`/`{`/`}` code token.
        let mut lo = k;
        while lo > 0 {
            let t = ctx.code_tok(lo - 1);
            if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
                break;
            }
            lo -= 1;
        }
        let mut hi = k;
        while hi + 1 < ctx.code.len() {
            let t = ctx.code_tok(hi);
            if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
                break;
            }
            hi += 1;
        }
        let checked = (lo..=hi).any(|j| {
            [
                "debug_assert",
                "debug_assert_eq",
                "assert",
                "min",
                "try_from",
                "clamp",
            ]
            .iter()
            .any(|m| ctx.is_ident(j, m))
        });
        if !checked && !ctx.has_marker(k, "bounds:") {
            push(diags, "W003", ctx, line, "as-narrowing on codec arithmetic without a bounds check — assert the value fits (or route through put_len) before truncating".into());
        }
    }
}

// ---------------------------------------------------------------------
// Z-series: policy.

/// Z002 — `println!`/`print!`/`dbg!` in library source. Libraries
/// report through `wivi-obs` or return values; stdout belongs to the
/// binaries (and the bench harness, which is exempt).
fn z002(ctx: &FileCtx<'_>, diags: &mut Vec<Diag>) {
    if !ctx.is_lib_source() || PRINT_EXEMPT.contains(&ctx.crate_name()) {
        return;
    }
    for k in 0..ctx.code.len() {
        let line = ctx.code_tok(k).line;
        if ctx.in_test_region(line) {
            continue;
        }
        let is_mac = ["println", "print", "dbg"]
            .iter()
            .any(|m| ctx.is_ident(k, m))
            && k + 1 < ctx.code.len()
            && ctx.is_punct(k + 1, '!');
        // `writeln!(f, …)` etc. are fine — they print to a caller-chosen
        // sink. Only the stdout macros are policy violations.
        if is_mac {
            push(diags, "Z002", ctx, line, format!("`{}!` in library code — report through wivi-obs or return data; stdout belongs to binaries", ctx.code_tok(k).text));
        }
    }
}

// ---------------------------------------------------------------------
// Z001: manifests (line-oriented TOML subset — enough for this
// workspace's hand-written manifests).

/// Checks one `Cargo.toml`: inside any `*dependencies*` section, every
/// dependency must be a `path` dependency (or inherit one via
/// `workspace = true`). A version/git/registry dep is a third-party
/// dependency — the workspace policy since PR 1 is zero of those.
pub fn check_manifest(path: &str, src: &str) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]` multi-line tables: remember the header until
    // we see whether the table carries a `path` key.
    let mut table: Option<(u32, String, bool)> = None;
    let flush_table = |table: &mut Option<(u32, String, bool)>, diags: &mut Vec<Diag>| {
        if let Some((line, name, has_path)) = table.take() {
            if !has_path {
                diags.push(Diag {
                    rule: "Z001",
                    path: path.to_string(),
                    line,
                    msg: format!("dependency `{name}` is not a path dependency — the workspace policy is zero third-party deps"),
                });
            }
        }
    };
    for (i, raw) in src.lines().enumerate() {
        let line_no = i as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush_table(&mut table, &mut diags);
            let section = line.trim_matches(['[', ']']);
            in_dep_section = section.ends_with("dependencies");
            if let Some(dep) = section
                .strip_suffix(']')
                .unwrap_or(section)
                .split_once("dependencies.")
                .map(|(_, d)| d)
            {
                table = Some((line_no, dep.to_string(), false));
                in_dep_section = false;
            }
            continue;
        }
        if let Some((_, _, has_path)) = table.as_mut() {
            if line.starts_with("path") {
                *has_path = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        let inherits = name.ends_with(".workspace") || value.contains("workspace = true");
        if !value.contains("path") && !inherits {
            diags.push(Diag {
                rule: "Z001",
                path: path.to_string(),
                line: line_no,
                msg: format!("dependency `{name}` is not a path dependency — the workspace policy is zero third-party deps"),
            });
        }
    }
    flush_table(&mut table, &mut diags);
    diags
}
