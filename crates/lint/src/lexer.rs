//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The rules in [`crate::rules`] match on identifiers and punctuation,
//! so the one job of this lexer is to never confuse *code* with *text*:
//! `"Instant::now()"` inside a string literal, `unsafe` inside a
//! comment, and `b'\''` inside a char literal must all come out as
//! single literal tokens, not as identifier streams. That means real
//! handling for the awkward corners of Rust's surface syntax:
//!
//! * nested block comments (`/* a /* b */ c */` is one comment);
//! * raw strings `r"…"`, `r#"…"#`, … with up to 255 `#`s, plus the
//!   byte variants `br…`, and raw identifiers `r#match`;
//! * lifetimes vs char literals: `'a` is a lifetime, `'a'` a char,
//!   `'\''` a char containing a quote, `b'\\'` a byte char;
//! * line comments, doc comments, and strings containing `//`.
//!
//! Everything else is deliberately loose — numbers swallow alphanumeric
//! suffixes, multi-char operators come out as single-char punct — the
//! rules don't need more, and looseness keeps the lexer total: any byte
//! sequence lexes, nothing panics.

/// What a token is, as far as rule matching cares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `r#match`, …).
    Ident,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `'\''`, `b'\\'`).
    Char,
    /// Any string-ish literal (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Numeric literal (integer or float, suffixes swallowed).
    Number,
    /// One punctuation character.
    Punct,
    /// `// …` (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting handled (including `/** … */`).
    BlockComment,
}

/// One lexed token: kind, exact source text, 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// `true` for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`), which the
    /// suppression parser deliberately ignores.
    pub fn is_doc_comment(&self) -> bool {
        match self.kind {
            TokKind::LineComment => {
                (self.text.starts_with("///") && !self.text.starts_with("////"))
                    || self.text.starts_with("//!")
            }
            TokKind::BlockComment => {
                (self.text.starts_with("/**") && !self.text.starts_with("/***"))
                    || self.text.starts_with("/*!")
            }
            _ => false,
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` completely. Total: malformed input (unterminated
/// strings/comments) produces a final token running to end-of-file
/// rather than an error — the lint must degrade gracefully on code
/// rustc would reject anyway.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.bytes[self.pos];
            let kind = match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.eat_whitespace();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.eat_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.eat_block_comment(),
                b'\'' => self.eat_lifetime_or_char(),
                b'"' => self.eat_string(),
                b'r' | b'b' => self.eat_prefixed(),
                c if is_ident_start(c) => self.eat_ident(),
                c if c.is_ascii_digit() => self.eat_number(),
                _ => {
                    self.bump_char();
                    TokKind::Punct
                }
            };
            self.out.push(Tok {
                kind,
                text: &self.src[start..self.pos],
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting newlines. Saturates at end-of-input
    /// so a truncated escape (`'\` at EOF) cannot push `pos` past the
    /// buffer.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// Advances one full UTF-8 character (for non-ASCII punct).
    fn bump_char(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
            self.pos += 1;
        }
    }

    fn eat_whitespace(&mut self) {
        while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn eat_line_comment(&mut self) -> TokKind {
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        TokKind::LineComment
    }

    fn eat_block_comment(&mut self) -> TokKind {
        // `/*` already sighted; consume it and balance nesting.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        TokKind::BlockComment
    }

    /// `'` starts either a lifetime (`'a`, `'_`) or a char literal
    /// (`'a'`, `'\''`). Disambiguation: ident-ish run after the quote
    /// that is *not* followed by a closing quote ⇒ lifetime.
    fn eat_lifetime_or_char(&mut self) -> TokKind {
        self.bump(); // the opening '
        if let Some(c) = self.peek(0) {
            if is_ident_start(c) {
                // Scan the ident run; a `'` right after makes it a char
                // literal like 'a' — otherwise it's a lifetime.
                let mut k = 1;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if self.peek(k) != Some(b'\'') {
                    for _ in 0..k {
                        self.bump();
                    }
                    return TokKind::Lifetime;
                }
            }
        }
        // Char literal: consume escapes until the closing quote.
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    self.bump_char();
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump_char(),
            }
        }
        TokKind::Char
    }

    /// Plain (escaped) string body, opening quote not yet consumed.
    fn eat_string(&mut self) -> TokKind {
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    self.bump_char();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump_char(),
            }
        }
        TokKind::Str
    }

    /// `r` / `b` can start raw strings, byte strings, byte chars, raw
    /// identifiers — or just an identifier named `r`/`b…`.
    fn eat_prefixed(&mut self) -> TokKind {
        let c0 = self.bytes[self.pos];
        // b'…' byte char.
        if c0 == b'b' && self.peek(1) == Some(b'\'') {
            self.bump();
            return self.eat_lifetime_or_char();
        }
        // b"…" byte string.
        if c0 == b'b' && self.peek(1) == Some(b'"') {
            self.bump();
            return self.eat_string();
        }
        // r"…" / r#…#"…"#…# / br variants / r#ident.
        let raw_at = match (c0, self.peek(1)) {
            (b'r', _) => Some(1),
            (b'b', Some(b'r')) => Some(2),
            _ => None,
        };
        if let Some(skip) = raw_at {
            let mut hashes = 0usize;
            while self.peek(skip + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(skip + hashes) == Some(b'"') {
                for _ in 0..skip + hashes + 1 {
                    self.bump();
                }
                return self.eat_raw_string_body(hashes);
            }
            // r#ident — a raw identifier, exactly one '#'.
            if c0 == b'r' && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.bump();
                self.bump();
                return self.eat_ident();
            }
        }
        self.eat_ident()
    }

    /// Raw-string body after the opening quote: runs to `"` followed by
    /// `hashes` `#`s — quotes and backslashes inside are literal.
    fn eat_raw_string_body(&mut self, hashes: usize) -> TokKind {
        while self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'"') {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return TokKind::Str;
                }
            }
            self.bump_char();
        }
        TokKind::Str
    }

    fn eat_ident(&mut self) -> TokKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokKind::Ident
    }

    /// Numbers: digits, one fraction part (only when a digit follows
    /// the dot — `0..n` must stay three tokens), and alphanumeric
    /// suffix/exponent characters. `1e-3` splits at the sign; rules
    /// don't care and round-tripping still holds.
    fn eat_number(&mut self) -> TokKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        TokKind::Number
    }
}
