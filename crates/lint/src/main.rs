//! `wivi-lint` — run the workspace's static-analysis pass.
//!
//! ```text
//! cargo run -p wivi-lint                 # lint the workspace, exit 1 on findings
//! cargo run -p wivi-lint -- --report lint-report.json
//! cargo run -p wivi-lint -- --root /path/to/workspace
//! cargo run -p wivi-lint -- --rules     # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use wivi_lint::{lint_workspace, rules};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--rules" => {
                for (id, summary) in rules::RULE_IDS {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: wivi-lint [--root DIR] [--report FILE.json] [--rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("wivi-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("wivi-lint: no workspace root found (no ancestor Cargo.toml with [workspace]); pass --root");
                return ExitCode::from(2);
            }
        },
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wivi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diags {
        println!("{d}");
    }
    if let Some(path) = report_path {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("wivi-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "wivi-lint: {} file(s), {} diagnostic(s), {} allow(s) in force",
        report.files,
        report.diags.len(),
        report.allows.len()
    );
    if report.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Ascends from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
