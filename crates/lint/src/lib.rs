//! `wivi-lint` — the workspace's in-house static-analysis pass.
//!
//! The repo's load-bearing guarantees are *source-visible*: golden
//! traces stay bitwise only if no pinned kernel reads a wall clock or
//! iterates a randomized hash table; the serving boundary stays
//! panic-free only if nobody `unwrap`s inside a frame decoder; the
//! zero-dependency policy holds only while every manifest dependency is
//! a `path` dependency. This crate reads the source the same way the
//! golden tests read the outputs, and fails CI when an invariant slips.
//!
//! Architecture (DESIGN.md §16):
//!
//! * [`lexer`] — a hand-rolled Rust lexer that separates code from
//!   comments/strings so rules never fire on text;
//! * [`rules`] — the rule engine: D-series (determinism), U-series
//!   (unsafe hygiene), A-series (atomics audit), W-series (wire
//!   safety), Z-series (policy), each with a stable id;
//! * suppressions — `// wivi-lint: allow(<rule>): <justification>`
//!   silences one rule on the same or the next line; the justification
//!   is mandatory (L-series meta-rules enforce the format).
//!
//! Entry points: [`lint_source`] / [`lint_manifest`] for one buffer
//! (what the fixture tests drive), [`lint_workspace`] for the whole
//! tree (what the `wivi-lint` binary drives).

pub mod lexer;
pub mod rules;
mod workspace;

pub use workspace::{lint_workspace, Report};

use lexer::{lex, Tok, TokKind};

/// One diagnostic: a rule firing at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Stable rule id (`"D001"`, `"W002"`, …).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// A parsed `wivi-lint: allow(...)` comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule being allowed (always one of [`rules::RULES`] once the
    /// L-series checks pass).
    pub rule: String,
    /// Line the comment sits on; it covers this line and the next.
    pub line: u32,
    /// The mandatory justification text.
    pub justification: String,
}

/// Lints one Rust source buffer. `path` is the workspace-relative
/// `/`-separated path — rule scoping (pinned crates, wire files, the
/// unsafe allowlist) keys off it, which is also how the fixture corpus
/// exercises scoped rules without living at the real paths.
pub fn lint_source(path: &str, src: &str) -> Vec<Diag> {
    let ctx = FileCtx::new(path, src);
    let mut diags = Vec::new();
    for check in rules::source_rules() {
        check(&ctx, &mut diags);
    }
    let (sup, mut meta) = parse_suppressions(path, &ctx);
    diags.retain(|d| {
        !sup.iter()
            .any(|s| s.rule == d.rule && ctx.allow_covers(s.line, d.line))
    });
    diags.append(&mut meta);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags.dedup();
    diags
}

/// Lints one `Cargo.toml` buffer (the Z-series manifest rules).
pub fn lint_manifest(path: &str, src: &str) -> Vec<Diag> {
    rules::check_manifest(path, src)
}

/// The suppressions declared in one source buffer (exposed so the
/// report can list every allow in force with its justification).
pub fn suppressions(path: &str, src: &str) -> Vec<Suppression> {
    let ctx = FileCtx::new(path, src);
    parse_suppressions(path, &ctx).0
}

// ---------------------------------------------------------------------
// File context: everything a rule looks at.

/// Per-line classification, for comment-block scanning.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LineKind {
    Blank,
    /// Only comment tokens (and whitespace).
    Comment,
    /// Starts with `#[` or `#![` — attributes sit between a SAFETY
    /// comment and the item it documents.
    Attribute,
    Code,
}

pub(crate) struct FileCtx<'a> {
    pub path: &'a str,
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<&'a str>,
    /// Every token, comments included.
    pub toks: Vec<Tok<'a>>,
    /// Indices into `toks` of the non-comment tokens.
    pub code: Vec<usize>,
    /// Per-line: inside a `#[cfg(test)]` region.
    test_lines: Vec<bool>,
    line_kinds: Vec<LineKind>,
}

impl<'a> FileCtx<'a> {
    fn new(path: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<&str> = src.lines().collect();
        let mut ctx = FileCtx {
            path,
            line_kinds: classify_lines(&lines, &toks),
            test_lines: vec![false; lines.len() + 2],
            lines,
            toks,
            code,
        };
        ctx.mark_test_regions();
        ctx
    }

    /// The `k`-th code token (what rules iterate).
    pub fn code_tok(&self, k: usize) -> &Tok<'a> {
        &self.toks[self.code[k]]
    }

    /// Is this code token an identifier with exactly this text?
    pub fn is_ident(&self, k: usize, text: &str) -> bool {
        let t = self.code_tok(k);
        t.kind == TokKind::Ident && t.text == text
    }

    pub fn is_punct(&self, k: usize, ch: char) -> bool {
        let t = self.code_tok(k);
        t.kind == TokKind::Punct && t.text.len() == ch.len_utf8() && t.text.starts_with(ch)
    }

    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Crate directory name: `crates/num/…` → `num`, root `src/…` →
    /// `wivi`.
    pub fn crate_name(&self) -> &str {
        match self.path.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or(""),
            None => "wivi",
        }
    }

    /// Library source = under `src/`, excluding `src/bin/` and
    /// `src/main.rs` (binary entry points may print; libraries may
    /// not, and the determinism rules only bind shipped library code).
    pub fn is_lib_source(&self) -> bool {
        let in_src = self.path.contains("/src/") || self.path.starts_with("src/");
        in_src && !self.path.contains("/src/bin/") && !self.path.ends_with("/main.rs")
    }

    /// First line of the statement containing code token `k`: walk back
    /// to the previous `;`, `{`, or `}` and take the next token's line.
    /// Attributes have no terminators, so `#[…]` lines above an item
    /// count into the statement — exactly what the comment scan wants.
    pub fn stmt_start_line(&self, k: usize) -> u32 {
        let mut j = k;
        while j > 0 {
            let t = self.code_tok(j - 1);
            if t.kind == TokKind::Punct && matches!(t.text, ";" | "{" | "}") {
                break;
            }
            j -= 1;
        }
        self.code_tok(j).line
    }

    /// `true` if code token `k` carries a justification comment: a
    /// comment containing `marker` on the same line, or in the
    /// contiguous comment block directly above its statement (blank
    /// and attribute lines may sit between).
    pub fn has_marker(&self, k: usize, marker: &str) -> bool {
        let line = self.code_tok(k).line;
        if self.line_comment_contains(line, marker) {
            return true;
        }
        let mut l = self.stmt_start_line(k);
        // The statement's own leading lines may be comments already
        // (block comments lex onto their start line).
        while l > 1 {
            l -= 1;
            match self.line_kinds.get(l as usize - 1) {
                Some(LineKind::Comment) => {
                    if self.line_comment_contains(l, marker) {
                        return true;
                    }
                }
                Some(LineKind::Blank | LineKind::Attribute) => continue,
                _ => break,
            }
        }
        false
    }

    /// Does an allow comment on `sup_line` cover `diag_line`? Yes when
    /// they share a line (trailing comment), or when `diag_line` is the
    /// first code line after the comment block `sup_line` belongs to —
    /// so a wrapped multi-line justification still reaches the
    /// statement beneath it.
    fn allow_covers(&self, sup_line: u32, diag_line: u32) -> bool {
        if sup_line == diag_line {
            return true;
        }
        let mut l = sup_line;
        while (l as usize) < self.lines.len() {
            l += 1;
            match self.line_kinds.get(l as usize - 1) {
                Some(LineKind::Comment | LineKind::Blank | LineKind::Attribute) => continue,
                _ => return l == diag_line,
            }
        }
        false
    }

    /// Any comment token on `line` whose text contains `marker`.
    fn line_comment_contains(&self, line: u32, marker: &str) -> bool {
        self.toks
            .iter()
            .filter(|t| t.is_comment())
            .any(|t| spans_line(t, line) && t.text.contains(marker))
    }

    /// Marks the line ranges of `#[cfg(test)]` items (mod or single
    /// item) so rules can exempt test code.
    fn mark_test_regions(&mut self) {
        let n = self.code.len();
        let mut k = 0;
        while k < n {
            if self.is_cfg_test_attr(k) {
                // Skip to the `]` closing this attribute.
                let mut depth = 0usize;
                let mut j = k;
                while j < n {
                    if self.is_punct(j, '[') {
                        depth += 1;
                    } else if self.is_punct(j, ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let start_line = self.code_tok(k).line;
                let end_line = self.item_end_line(j + 1);
                for l in start_line..=end_line {
                    if let Some(slot) = self.test_lines.get_mut(l as usize) {
                        *slot = true;
                    }
                }
                k = j + 1;
            } else {
                k += 1;
            }
        }
    }

    /// Does code token `k` start `#[cfg(test)]` / `#[cfg(all(test,…))]`?
    fn is_cfg_test_attr(&self, k: usize) -> bool {
        if !self.is_punct(k, '#') || k + 4 >= self.code.len() {
            return false;
        }
        if !(self.is_punct(k + 1, '[') && self.is_ident(k + 2, "cfg") && self.is_punct(k + 3, '('))
        {
            return false;
        }
        // Within the cfg(...) argument, look for a bare `test`.
        let mut depth = 1usize;
        let mut j = k + 4;
        while j < self.code.len() && depth > 0 {
            if self.is_punct(j, '(') {
                depth += 1;
            } else if self.is_punct(j, ')') {
                depth -= 1;
            } else if depth >= 1 && self.is_ident(j, "test") {
                return true;
            }
            j += 1;
        }
        false
    }

    /// Last line of the item starting at code token `start`: the
    /// matching close of its first `{`, or its first top-level `;`.
    fn item_end_line(&self, start: usize) -> u32 {
        let n = self.code.len();
        let mut j = start;
        // Skip any further attributes between cfg(test) and the item.
        while j < n {
            if self.is_punct(j, ';') {
                return self.code_tok(j).line;
            }
            if self.is_punct(j, '{') {
                let mut depth = 0usize;
                while j < n {
                    if self.is_punct(j, '{') {
                        depth += 1;
                    } else if self.is_punct(j, '}') {
                        depth -= 1;
                        if depth == 0 {
                            return self.code_tok(j).line;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        self.lines.len() as u32
    }
}

/// Does token `t` (which may span lines) cover `line`?
fn spans_line(t: &Tok<'_>, line: u32) -> bool {
    let end = t.line + t.text.bytes().filter(|&b| b == b'\n').count() as u32;
    (t.line..=end).contains(&line)
}

fn classify_lines(lines: &[&str], toks: &[Tok<'_>]) -> Vec<LineKind> {
    let mut kinds: Vec<LineKind> = lines
        .iter()
        .map(|l| {
            let t = l.trim_start();
            if t.is_empty() {
                LineKind::Blank
            } else if t.starts_with("#[") || t.starts_with("#![") {
                LineKind::Attribute
            } else {
                LineKind::Code
            }
        })
        .collect();
    // A line is a comment line when its only tokens are comments; a
    // multi-line block comment claims every line it spans.
    let mut has_code = vec![false; lines.len()];
    let mut has_comment = vec![false; lines.len()];
    for t in toks {
        let start = t.line as usize - 1;
        let end = start + t.text.bytes().filter(|&b| b == b'\n').count();
        for slot in start..=end.min(lines.len().saturating_sub(1)) {
            if t.is_comment() {
                has_comment[slot] = true;
            } else {
                has_code[slot] = true;
            }
        }
    }
    for (i, kind) in kinds.iter_mut().enumerate() {
        if *kind == LineKind::Code && has_comment[i] && !has_code[i] {
            *kind = LineKind::Comment;
        }
    }
    kinds
}

// ---------------------------------------------------------------------
// Suppressions.

const ALLOW_PREFIX: &str = "wivi-lint:";

/// Extracts `wivi-lint: allow(<rule>): <justification>` comments,
/// producing the suppression list plus L-series diagnostics for
/// malformed ones. Doc comments are ignored (docs may *mention* the
/// syntax without declaring an allow).
fn parse_suppressions(path: &str, ctx: &FileCtx<'_>) -> (Vec<Suppression>, Vec<Diag>) {
    let mut sup = Vec::new();
    let mut diags = Vec::new();
    for t in ctx.toks.iter().filter(|t| t.is_comment()) {
        if t.is_doc_comment() {
            continue;
        }
        let Some(at) = t.text.find(ALLOW_PREFIX) else {
            continue;
        };
        let rest = t.text[at + ALLOW_PREFIX.len()..].trim_start();
        let diag = |msg: String| Diag {
            rule: "L001",
            path: path.to_string(),
            line: t.line,
            msg,
        };
        let Some(inner) = rest.strip_prefix("allow(") else {
            diags.push(diag(format!(
                "malformed wivi-lint comment (expected `{ALLOW_PREFIX} allow(<rule>): <justification>`)"
            )));
            continue;
        };
        let Some(close) = inner.find(')') else {
            diags.push(diag("unterminated allow(<rule>)".to_string()));
            continue;
        };
        let rule = inner[..close].trim();
        let justification = inner[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim()
            .trim_end_matches("*/")
            .trim();
        if !rules::is_known_rule(rule) {
            diags.push(Diag {
                rule: "L002",
                path: path.to_string(),
                line: t.line,
                msg: format!("allow for unknown rule `{rule}`"),
            });
            continue;
        }
        if justification.is_empty() {
            diags.push(diag(format!(
                "allow({rule}) carries no justification — say why the rule does not apply here"
            )));
            continue;
        }
        sup.push(Suppression {
            rule: rule.to_string(),
            line: t.line,
            justification: justification.to_string(),
        });
    }
    (sup, diags)
}
