//! Workspace walking and the machine-readable report.
//!
//! The walk is filesystem-order-independent: paths are collected, then
//! sorted, so two runs over the same tree print identical output — the
//! lint holds itself to the determinism bar it enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{lint_manifest, lint_source, suppressions, Diag, Suppression};

/// Everything one workspace run produced.
pub struct Report {
    /// All diagnostics, sorted by (path, line, rule).
    pub diags: Vec<Diag>,
    /// Every suppression in force, with its justification — the report
    /// makes the allow inventory reviewable at a glance.
    pub allows: Vec<(String, Suppression)>,
    /// Files scanned (sources + manifests).
    pub files: usize,
}

impl Report {
    /// Hand-rolled JSON (the workspace has no serde, by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diags.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"msg\": {}}}{}\n",
                json_str(d.rule),
                json_str(&d.path),
                d.line,
                json_str(&d.msg),
                if i + 1 < self.diags.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"allows\": [\n");
        for (i, (path, a)) in self.allows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}}}{}\n",
                json_str(&a.rule),
                json_str(path),
                a.line,
                json_str(&a.justification),
                if i + 1 < self.allows.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("  ],\n  \"files\": {}\n}}\n", self.files));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints every `src/**/*.rs` and every `Cargo.toml` under `root`.
/// `tests/`, `benches/`, `target/`, and dot-directories are skipped:
/// the rules bind shipped code, and the lint's own fixture corpus
/// *must* contain violations.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort();
    manifests.sort();

    let mut diags = Vec::new();
    let mut allows = Vec::new();
    let files = sources.len() + manifests.len();
    for rel in &sources {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        diags.extend(lint_source(&rel_str, &src));
        allows.extend(
            suppressions(&rel_str, &src)
                .into_iter()
                .map(|a| (rel_str.clone(), a)),
        );
    }
    for rel in &manifests {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        diags.extend(lint_manifest(&rel_str, &src));
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    allows.sort_by(|a, b| (&a.0, a.1.line).cmp(&(&b.0, b.1.line)));
    Ok(Report {
        diags,
        allows,
        files,
    })
}

fn collect(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(&*name, "target" | "tests" | "benches" | "fixtures")
                || name.starts_with('.')
            {
                continue;
            }
            collect(root, &path, sources, manifests)?;
            continue;
        }
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if name == "Cargo.toml" {
            manifests.push(rel);
        } else if name.ends_with(".rs")
            && (rel_str.starts_with("src/") || rel_str.contains("/src/"))
        {
            sources.push(rel);
        }
    }
    Ok(())
}
