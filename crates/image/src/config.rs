//! Imaging configuration: the room grid and the aperture geometry.
//!
//! Imaging reuses the tracker's emulated-ISAR premise (§5.1: consecutive
//! channel samples of a moving subject are consecutive spatial samples)
//! but drops the far-field approximation: instead of scoring *directions*
//! against a linear phase ramp, every room cell is scored against the
//! exact round-trip phase history a subject at that cell would produce
//! over the analysis window — near-field backprojection. Because range
//! only enters through wavefront curvature across the emulated aperture,
//! the imaging window is several times the tracking window: the subject
//! must walk a couple of metres per window for the Fresnel curvature to
//! separate ranges.

use wivi_core::WiViConfig;
use wivi_num::{CfarConfig, Grid2d};
use wivi_rf::{DeviceLayout, Point, Rect, Scene};

/// A uniform grid over the imaged room, in scene coordinates (wall at
/// `y = 0`, room at `y > 0`). Cells are anisotropic by design: the
/// emulated aperture runs along x, so azimuth (x) resolution —
/// `≈ λ·d / (2L)`, centimetres for a metres-long aperture — is far
/// finer than range (y) resolution, which comes from Fresnel wavefront
/// curvature (`≈ 2λ(d/L)²`, several decimetres). A grid sampled
/// coarser than the azimuth main lobe would drop subjects that walk
/// between cell centres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    /// Minimum corner of the covered region, metres.
    pub x0: f64,
    pub y0: f64,
    /// Cell extent along x (azimuth), metres.
    pub cell_x_m: f64,
    /// Cell extent along y (range), metres.
    pub cell_y_m: f64,
    /// Cells along x / y.
    pub nx: usize,
    pub ny: usize,
}

impl GridSpec {
    /// The smallest grid of `cell_x_m × cell_y_m` cells covering
    /// `rect`.
    ///
    /// # Panics
    /// Panics if either cell extent is non-positive.
    pub fn cover(rect: Rect, cell_x_m: f64, cell_y_m: f64) -> Self {
        assert!(
            cell_x_m > 0.0 && cell_y_m > 0.0,
            "cell size must be positive"
        );
        Self {
            x0: rect.min.x,
            y0: rect.min.y,
            cell_x_m,
            cell_y_m,
            nx: (rect.width() / cell_x_m).ceil().max(1.0) as usize,
            ny: (rect.height() / cell_y_m).ceil().max(1.0) as usize,
        }
    }

    /// The flat-buffer shape of this grid.
    pub fn grid2d(&self) -> Grid2d {
        Grid2d::new(self.nx, self.ny)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the grid covers no cells (impossible for a constructed
    /// grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Centre of cell `(ix, iy)`, metres.
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            self.x0 + (ix as f64 + 0.5) * self.cell_x_m,
            self.y0 + (iy as f64 + 0.5) * self.cell_y_m,
        )
    }

    /// Cell diagonal, metres — the localization-error yardstick the
    /// acceptance tests use.
    pub fn diagonal_m(&self) -> f64 {
        self.cell_x_m.hypot(self.cell_y_m)
    }

    /// Validates the grid.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(
            self.cell_x_m > 0.0 && self.cell_y_m > 0.0,
            "cell size must be positive"
        );
        assert!(self.nx >= 2 && self.ny >= 2, "grid must be at least 2×2");
        assert!(self.x0.is_finite() && self.y0.is_finite());
    }
}

/// Full imaging configuration. Geometry only — the per-session nulling
/// weight is a *runtime* parameter of the engine, so shards can share
/// one precomputed engine across sessions whose nulling converged
/// differently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImageConfig {
    /// The imaged region.
    pub grid: GridSpec,
    /// Analysis window (emulated aperture) length, channel samples.
    /// Several× the tracking window: range needs Fresnel curvature.
    pub window: usize,
    /// Hop between successive windows, samples.
    pub hop: usize,
    /// Channel sampling period `T`, seconds.
    pub sample_period_s: f64,
    /// Assumed subject speed, m/s (§5.1's `v`, shared with the tracker).
    pub assumed_speed: f64,
    /// Carrier wavelength λ, metres.
    pub wavelength: f64,
    /// Transmit antenna positions (the two nulling antennas).
    pub tx: [Point; 2],
    /// Receive antenna position.
    pub rx: Point,
    /// The CFAR detector over the focused image.
    pub cfar: CfarConfig,
    /// Keep at most this many fixes per window (strongest first). Must
    /// stay within [`wivi_num::assign::MAX_COLS`] for the tracker's
    /// association step.
    pub max_fixes: usize,
    /// Mirror-ghost suppression tolerance, metres (0 disables): the
    /// receive antenna sits on the `x = 0` axis, so a subject at
    /// `(x, y)` leaves a conjugate image near `(−x, y)`, broken only by
    /// the TX-pair asymmetry — often less than a dB below the true
    /// peak. Of a mirror pair, only the stronger member survives (ties
    /// break to the lower cell index); a genuinely mirror-symmetric
    /// pair of subjects is therefore seen as one — the same geometric
    /// blind spot the angle detector's conjugate-image rule has.
    pub mirror_tol_m: f64,
    /// Minimum separation between kept fixes, metres: of two fixes
    /// closer than this, only the stronger survives (a walking body is
    /// several scatterers; its focused blob can crest twice).
    pub min_separation_m: f64,
    /// Grid rows excluded from detection at each range (y) extreme. The
    /// nearest and farthest rows integrate every return the grid does
    /// not model — bodies beyond the imaged region and the broadband
    /// smear of limb micro-Doppler — exactly as the angle detector's
    /// ±90° edge bins do, so peaks there are artefacts, not fixes.
    pub edge_guard_cells: usize,
}

impl ImageConfig {
    /// The imaging configuration derived from a device configuration —
    /// the one the serving engine and the default device entry points
    /// use, so the two can never disagree. Aperture: 2 s of channel
    /// samples (a ~2 m emulated aperture at the assumed 1 m/s — range
    /// resolution comes from Fresnel curvature `~2λ(d/L)²`, so the
    /// aperture `L` must be metres, not the tracking window's 0.32 m),
    /// hopped every 0.4 s; grid: the small conference room at
    /// 0.125 × 0.5 m cells (azimuth × range, matched to the two axes'
    /// native resolutions); device geometry: the standard layout every
    /// [`Scene`] is built with.
    pub fn for_wivi(cfg: &WiViConfig) -> Self {
        let isar = &cfg.music.isar;
        let layout = DeviceLayout::standard(1.0);
        Self {
            grid: GridSpec::cover(Scene::conference_room_small(), 0.125, 0.5),
            window: (2.0 / isar.sample_period_s).round() as usize,
            hop: (0.4 / isar.sample_period_s).round() as usize,
            sample_period_s: isar.sample_period_s,
            assumed_speed: isar.assumed_speed,
            wavelength: isar.wavelength,
            tx: layout.tx,
            rx: layout.rx,
            cfar: CfarConfig::default(),
            max_fixes: 4,
            mirror_tol_m: 0.8,
            min_separation_m: 1.0,
            edge_guard_cells: 1,
        }
    }

    /// The paper-parameter configuration.
    pub fn wivi_default() -> Self {
        Self::for_wivi(&WiViConfig::paper_default())
    }

    /// A reduced configuration for fast unit tests.
    pub fn fast_test() -> Self {
        Self::for_wivi(&WiViConfig::fast_test())
    }

    /// Emulated element spacing along the aperture, metres (`v·T`; the
    /// round trip is handled by the exact two-leg path lengths, not a
    /// spacing factor as in the far-field [`wivi_core::IsarConfig`]).
    pub fn element_spacing(&self) -> f64 {
        self.assumed_speed * self.sample_period_s
    }

    /// Centre time of the analysis window starting at absolute sample
    /// `start` — the same expression the tracking stages use.
    pub fn window_center_s(&self, start: usize) -> f64 {
        (start as f64 + self.window as f64 / 2.0) * self.sample_period_s
    }

    /// Time between consecutive windows, seconds.
    pub fn window_dt_s(&self) -> f64 {
        self.hop as f64 * self.sample_period_s
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        self.grid.validate();
        self.cfar.validate();
        assert!(self.window >= 8, "imaging window too small");
        assert!(self.hop >= 1, "hop must be at least 1");
        assert!(self.sample_period_s > 0.0 && self.assumed_speed > 0.0);
        assert!(self.wavelength > 0.0);
        assert!(
            self.max_fixes >= 1 && self.max_fixes <= wivi_num::assign::MAX_COLS,
            "max_fixes must be in 1..={}",
            wivi_num::assign::MAX_COLS
        );
        assert!(self.mirror_tol_m >= 0.0);
        assert!(self.min_separation_m >= 0.0);
        assert!(
            2 * self.edge_guard_cells < self.grid.ny,
            "edge guard swallows the whole grid"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_tiles_the_room() {
        let g = GridSpec::cover(Scene::conference_room_small(), 0.125, 0.5);
        assert_eq!(g.nx, 56);
        assert_eq!(g.ny, 8);
        assert_eq!(g.len(), 56 * 8);
        assert!(!g.is_empty());
        let c = g.cell_center(0, 0);
        assert!((c.x - (-3.5 + 0.0625)).abs() < 1e-12);
        assert!((c.y - 0.45).abs() < 1e-12);
        assert!((g.diagonal_m() - 0.125f64.hypot(0.5)).abs() < 1e-12);
    }

    #[test]
    fn derived_config_is_valid_and_matched_to_the_radio() {
        for cfg in [WiViConfig::paper_default(), WiViConfig::fast_test()] {
            let img = ImageConfig::for_wivi(&cfg);
            img.validate();
            // 2 s aperture, 0.4 s hop at the radio's 312.5 Hz rate.
            assert_eq!(img.window, 625);
            assert_eq!(img.hop, 125);
            assert_eq!(img.sample_period_s, cfg.music.isar.sample_period_s);
            assert!((img.window_dt_s() - img.hop as f64 * img.sample_period_s).abs() < 1e-15);
        }
    }

    #[test]
    fn window_center_matches_isar_convention() {
        let img = ImageConfig::fast_test();
        let t = img.window_center_s(100);
        assert!((t - (100.0 + img.window as f64 / 2.0) * img.sample_period_s).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn validate_rejects_tiny_window() {
        let mut img = ImageConfig::fast_test();
        img.window = 4;
        img.validate();
    }
}
