//! `WiViDevice` entry points for through-wall imaging — the fifth
//! device mode, layered above `wivi-core` through an extension trait
//! exactly like `wivi-track`'s tracking mode: `use
//! wivi_image::ImageThroughWall;` and every device can `image(..)`.
//!
//! Both shapes honour the repo-wide contract: the streaming entry point
//! drives a [`StreamingImage`] stage over batched observations and the
//! offline one-shot path materializes the trace and pushes it through
//! the *same* stage in one call, so the two are **bitwise identical**
//! for every batch size (pinned by `tests/streaming_equivalence.rs`).

use wivi_core::WiViDevice;
use wivi_num::Complex64;
use wivi_sdr::Observation;

use crate::config::ImageConfig;
use crate::stage::{ImagingReport, StreamingImage};

/// The subcarrier-averaged nulling weight the calibration installed on
/// the second transmit antenna — the `w` of the imaging model
/// `q = s¹ + w·s²` (see [`crate::engine::ImagingEngine`]): after
/// nulling, a mover's residual is its TX-1 path plus this weight times
/// its TX-2 path. Shared by the device entry points and the serving
/// engine so the two can never compute it differently.
///
/// # Panics
/// Panics if the device has not been calibrated.
pub fn nulling_tx_weight(dev: &WiViDevice) -> Complex64 {
    let p = dev
        .frontend()
        .precoder()
        .expect("call calibrate() before imaging");
    p.iter().copied().sum::<Complex64>() / p.len() as f64
}

/// Asserts that the imaging configuration's antenna geometry matches
/// the device's actual scene layout. The steering tables are built from
/// `cfg.tx`/`cfg.rx`; a device bound to a scene with a different layout
/// (nonstandard standoff, custom placement) would silently defocus, so
/// both the device entry points and the serving engine check first.
///
/// # Panics
/// Panics if the antenna positions differ.
pub fn assert_device_geometry(dev: &WiViDevice, cfg: &ImageConfig) {
    let layout = &dev.frontend().scene().device;
    assert_eq!(
        (layout.tx, layout.rx),
        (cfg.tx, cfg.rx),
        "imaging configuration's antenna geometry does not match the device's scene layout"
    );
}

/// Device-level imaging entry points: room images and (x, y) fixes
/// instead of bare ridge angles.
pub trait ImageThroughWall {
    /// Records `duration_s` seconds and backprojects it with the
    /// configuration derived from the device configuration
    /// ([`ImageConfig::for_wivi`]). Offline one-shot shape.
    ///
    /// # Panics
    /// Panics if the device has not been calibrated.
    fn image(&mut self, duration_s: f64) -> ImagingReport;

    /// [`Self::image`] with an explicit imaging configuration.
    fn image_with(&mut self, duration_s: f64, cfg: &ImageConfig) -> ImagingReport;

    /// Streaming shape: observations flow in `batch_len`-sample batches
    /// through a [`StreamingImage`] stage; each completed aperture is
    /// focused, CFAR-detected, and folded into the position tracker the
    /// moment it completes. Memory stays bounded by one aperture plus
    /// the engine's resident tables. Bitwise identical to
    /// [`Self::image`].
    ///
    /// # Panics
    /// Panics if the device has not been calibrated or `batch_len == 0`.
    fn image_streaming(&mut self, duration_s: f64, batch_len: usize) -> ImagingReport;

    /// [`Self::image_streaming`] with an explicit imaging configuration.
    fn image_streaming_with(
        &mut self,
        duration_s: f64,
        batch_len: usize,
        cfg: &ImageConfig,
    ) -> ImagingReport;
}

impl ImageThroughWall for WiViDevice {
    fn image(&mut self, duration_s: f64) -> ImagingReport {
        let cfg = ImageConfig::for_wivi(self.config());
        self.image_with(duration_s, &cfg)
    }

    fn image_with(&mut self, duration_s: f64, cfg: &ImageConfig) -> ImagingReport {
        assert_device_geometry(self, cfg);
        let weight = nulling_tx_weight(self);
        let trace = self.record_trace(duration_s);
        let mut stage = StreamingImage::new(*cfg, weight);
        stage.push(&trace);
        stage.finish()
    }

    fn image_streaming(&mut self, duration_s: f64, batch_len: usize) -> ImagingReport {
        let cfg = ImageConfig::for_wivi(self.config());
        self.image_streaming_with(duration_s, batch_len, &cfg)
    }

    fn image_streaming_with(
        &mut self,
        duration_s: f64,
        batch_len: usize,
        cfg: &ImageConfig,
    ) -> ImagingReport {
        assert_device_geometry(self, cfg);
        let weight = nulling_tx_weight(self);
        // The same duration→samples conversion the device uses, so the
        // two shapes can never round differently.
        let total = self.trace_len(duration_s);
        let mut stage = StreamingImage::new(*cfg, weight);
        let mut stream = self.frontend_mut().observe_stream(total, batch_len);
        let mut batch: Vec<Observation> = Vec::with_capacity(batch_len);
        let mut samples: Vec<Complex64> = Vec::with_capacity(batch_len);
        loop {
            let got = stream.next_batch_into(&mut batch);
            if got == 0 {
                break;
            }
            samples.clear();
            samples.extend(batch.iter().map(Observation::combined));
            stage.push(&samples);
        }
        stage.finish()
    }
}
