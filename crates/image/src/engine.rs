//! The resident backprojection engine: per-cell steering tables, the
//! reused image buffer, and the CFAR fix extractor.
//!
//! # The holographic matched filter
//!
//! Over one imaging window the subject's motion emulates an aperture:
//! sample `i` of the nulled residual sees the subject at a slightly
//! different position, so the window is a spatial sampling of the
//! incident wavefront — the premise that lets a single static receiver
//! reconstruct *where* the reflector is, not just how fast its range
//! changes (Holl & Reinhard's Wi-Fi holography, and the 2.4 GHz
//! through-wall imaging of Zhong et al., both in PAPERS.md).
//!
//! For a cell at `p` the engine hypothesizes a subject at `p` at the
//! window centre, walking at the assumed speed `v` *along the wall*
//! (the tangential direction x̂ — the same "constant comfortable speed"
//! fiction §5.1 uses, promoted from a scalar to a trajectory), so its
//! hypothesized position at element `i` is `p_i = p + (i − c)·v·T·x̂`.
//! The model channel is the exact two-path bistatic round trip
//!
//! ```text
//! q_i(p) = s¹_i + w·s²_i,   sᵏ_i = e^{−j·(2π/λ)·(|txₖ − p_i| + |p_i − rx|)}
//! ```
//!
//! where `w` is the *nulling weight* the calibration installed on the
//! second transmit antenna (subcarrier-averaged): after nulling, a
//! mover's residual really is its TX-1 path plus `w` times its TX-2
//! path. The image is the normalized coherent correlation
//! `I(p) = max_±|⟨h, q(p)⟩|² / ‖q(p)‖²`, the `±` scanning both walking
//! directions (the reversed aperture reuses the same table traversed
//! backwards). In the far field this reduces exactly to Eq. 5.1's
//! `e^{−j(2π/λ)·i·Δ·sinθ}` ramp with `Δ = 2vT`; near field, the
//! wavefront curvature across the aperture separates ranges and the
//! TX-pair phase difference separates bearings.
//!
//! The window's complex mean is removed before correlating — the
//! residual DC (nulling drift, §5.1 fn. 4) would otherwise flood the
//! zero-Doppler cells on the boresight line, exactly as it floods θ = 0
//! in the spectrogram.
//!
//! # Residency contract
//!
//! Mirroring [`wivi_core::MusicEngine`]: all heavy state — two steering
//! tables (one per TX path), the per-cell normalization terms, the
//! image buffer, the mean-removal scratch — is allocated once at
//! construction and reused every window; window-rate processing
//! allocates nothing beyond the emitted fix list. One engine serves the
//! offline entry points, the streaming stage, and (shared across
//! sessions) the serving shards, so all three are bitwise identical by
//! construction: the output depends only on the configuration, the
//! window contents, and the nulling weight.

use wivi_core::ShardEngine;
use wivi_num::{ca_cfar_2d, simd, Complex64, Grid2d};
use wivi_rf::Point;

use crate::config::ImageConfig;

/// One localized target in one imaging window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImageFix {
    /// Sub-cell refined position, metres (scene coordinates).
    pub x_m: f64,
    pub y_m: f64,
    /// Focused power at the peak cell, dB (10·log₁₀ of the image value).
    pub power_db: f64,
    /// Peak-to-local-noise ratio from the CFAR test, dB.
    pub snr_db: f64,
    /// The peak cell.
    pub ix: usize,
    pub iy: usize,
}

/// The reusable per-window backprojector.
pub struct ImagingEngine {
    cfg: ImageConfig,
    grid: Grid2d,
    /// Per-TX-path conjugated steering tables, cell-major:
    /// `steer[k][c·window + i] = e^{+j·(2π/λ)·Rₖ(p_c, i)}`.
    steer: [Vec<Complex64>; 2],
    /// Per-cell `Σ_i s²_i·conj(s¹_i)` — the cross term of `‖q‖²`.
    cross: Vec<Complex64>,
    /// The focused image, reused every window.
    image: Vec<f64>,
    /// Per-cell winning traversal direction (`true` = forward).
    dirs: Vec<bool>,
    /// Mean-removed window scratch (the CLEAN loop subtracts detected
    /// targets from it in place).
    centered: Vec<Complex64>,
    /// Worker threads for the per-cell focus sweep (cells are
    /// independent, so the partition cannot change any cell's bits).
    /// Defaults to `WIVI_FOCUS_THREADS` (1 when unset).
    focus_threads: usize,
}

/// The global-registry histogram of focus-sweep chunk wall times
/// (callers only record when `WIVI_OBS` is on).
fn focus_chunk_hist() -> &'static wivi_obs::Histogram {
    static H: std::sync::OnceLock<wivi_obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| wivi_obs::global().histogram("image.focus_chunk_ns"))
}

/// Parses `WIVI_FOCUS_THREADS` once per process (≥ 1; 1 when unset or
/// malformed).
fn default_focus_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("WIVI_FOCUS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Serving shards host imaging engines through the generic engine
/// registry: the engine is a pure function of (configuration, window,
/// nulling weight) — the weight is a per-push runtime parameter — so
/// same-configuration sessions share one steering table even when their
/// nulling converged differently.
impl ShardEngine for ImagingEngine {
    type Config = ImageConfig;

    fn build(cfg: &ImageConfig) -> Self {
        ImagingEngine::new(*cfg)
    }
}

impl ImagingEngine {
    /// Builds an engine for `cfg`, precomputing the steering tables
    /// (`2 × cells × window` phasors).
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: ImageConfig) -> Self {
        cfg.validate();
        let grid = cfg.grid.grid2d();
        let n_cells = grid.len();
        let w = cfg.window;
        let k_wave = std::f64::consts::TAU / cfg.wavelength;
        let half = (w as f64 - 1.0) / 2.0;
        let spacing = cfg.element_spacing();

        let mut steer = [
            Vec::with_capacity(n_cells * w),
            Vec::with_capacity(n_cells * w),
        ];
        let mut cross = Vec::with_capacity(n_cells);
        for c in 0..n_cells {
            let (ix, iy) = grid.coords(c);
            let center = cfg.grid.cell_center(ix, iy);
            let mut x = Complex64::ZERO;
            for i in 0..w {
                let p_i = Point::new(center.x + (i as f64 - half) * spacing, center.y);
                let mut s = [Complex64::ZERO; 2];
                for (k, sk) in s.iter_mut().enumerate() {
                    let r = cfg.tx[k].distance(p_i) + p_i.distance(cfg.rx);
                    // conj of the steering phasor, ready for `h·t`.
                    *sk = Complex64::cis(k_wave * r);
                }
                // The model cross term s²_i·conj(s¹_i) = conj(t²)·t¹
                // in terms of the stored conjugates.
                x += s[1].conj() * s[0];
                steer[0].push(s[0]);
                steer[1].push(s[1]);
            }
            cross.push(x);
        }

        Self {
            cfg,
            grid,
            steer,
            cross,
            image: vec![0.0; n_cells],
            dirs: vec![true; n_cells],
            centered: vec![Complex64::ZERO; w],
            focus_threads: default_focus_threads(),
        }
    }

    /// The engine's configuration.
    pub fn cfg(&self) -> &ImageConfig {
        &self.cfg
    }

    /// Sets the focus-sweep worker count (clamped to ≥ 1). The image is
    /// bitwise identical for every thread count — the sweep only
    /// partitions independent cells.
    pub fn set_focus_threads(&mut self, n: usize) {
        self.focus_threads = n.max(1);
    }

    /// The configured focus-sweep worker count.
    pub fn focus_threads(&self) -> usize {
        self.focus_threads
    }

    /// The flat-buffer shape of the focused image.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// The most recently focused image (flat row-major, x fastest).
    pub fn image(&self) -> &[f64] {
        &self.image
    }

    /// Focuses one analysis window onto the room grid with the
    /// session's nulling weight `tx_weight` on the second transmit
    /// path, returning the focused image. Overwrites (and returns) the
    /// resident image buffer; no other state is carried between calls.
    ///
    /// # Panics
    /// Panics if `window.len()` differs from the configured window.
    pub fn process_window(&mut self, window: &[Complex64], tx_weight: Complex64) -> &[f64] {
        let _span = wivi_obs::span("image.window");
        self.center_window(window);
        self.focus(tx_weight);
        &self.image
    }

    /// DC removal: subtracts the window's complex mean (the nulling
    /// residual's static line) into the resident scratch.
    fn center_window(&mut self, window: &[Complex64]) {
        let w = self.cfg.window;
        assert_eq!(window.len(), w, "window length mismatch");
        let mean = window.iter().copied().sum::<Complex64>() / w as f64;
        for (dst, src) in self.centered.iter_mut().zip(window) {
            *dst = *src - mean;
        }
    }

    /// Backprojects the resident (centred) window onto the grid,
    /// filling the image and per-cell direction buffers. Cells are
    /// independent, so the sweep splits into contiguous chunks across
    /// [`Self::focus_threads`] workers; every thread count produces the
    /// same bits.
    fn focus(&mut self, tx_weight: Complex64) {
        let w = self.cfg.window;
        let wt = tx_weight;
        let wt_conj = wt.conj();
        let wt_sq = wt.norm_sqr();
        let n_cells = self.grid.len();
        let steer0 = &self.steer[0];
        let steer1 = &self.steer[1];
        let centered = &self.centered;
        let cross = &self.cross;
        // One cell: the dispatched four-accumulator correlation (two TX
        // paths × two walking directions — the reversed aperture is the
        // same table backwards), then the direction pick.
        let focus_range = |c0: usize, image: &mut [f64], dirs: &mut [bool]| {
            for (off, (img, dir)) in image.iter_mut().zip(dirs.iter_mut()).enumerate() {
                let c = c0 + off;
                let t1 = &steer0[c * w..(c + 1) * w];
                let t2 = &steer1[c * w..(c + 1) * w];
                let [a1f, a2f, a1r, a2r] = simd::focus_accumulate(centered, t1, t2);
                let fwd = (a1f + wt_conj * a2f).norm_sqr();
                let rev = (a1r + wt_conj * a2r).norm_sqr();
                // ‖q‖² = w·(1 + |wt|²) + 2·Re(wt·Σ s²conj(s¹)); identical
                // for both traversal directions (the sum just reorders).
                let qn = (w as f64 * (1.0 + wt_sq) + 2.0 * (wt * cross[c]).re).max(1e-12);
                *img = fwd.max(rev) / qn;
                *dir = fwd >= rev;
            }
        };
        let threads = self.focus_threads.min(n_cells.max(1));
        // Per-chunk wall-time histogram (`WIVI_OBS`-gated): chunk skew
        // is the signal that the contiguous split needs rebalancing as
        // grids grow (ROADMAP item 2).
        let timing = wivi_obs::enabled();
        if threads <= 1 {
            // wivi-lint: allow(D001): obs-gated wall-time histogram —
            // feeds a diagnostic only; the focused image is computed
            // identically with WIVI_OBS off.
            let t0 = timing.then(std::time::Instant::now);
            focus_range(0, &mut self.image, &mut self.dirs);
            if let Some(t0) = t0 {
                focus_chunk_hist().record_duration(t0.elapsed());
            }
            return;
        }
        let chunk = n_cells.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut img_rest: &mut [f64] = &mut self.image;
            let mut dir_rest: &mut [bool] = &mut self.dirs;
            let mut c0 = 0;
            while !img_rest.is_empty() {
                let take = chunk.min(img_rest.len());
                let (img_chunk, ir) = img_rest.split_at_mut(take);
                let (dir_chunk, dr) = dir_rest.split_at_mut(take);
                img_rest = ir;
                dir_rest = dr;
                let fr = &focus_range;
                scope.spawn(move || {
                    // wivi-lint: allow(D001): obs-gated chunk-skew
                    // timing — diagnostic only, never in the output.
                    let t0 = timing.then(std::time::Instant::now);
                    fr(c0, img_chunk, dir_chunk);
                    if let Some(t0) = t0 {
                        focus_chunk_hist().record_duration(t0.elapsed());
                    }
                });
                c0 += take;
            }
        });
    }

    /// The model vector element `q_j` for cell `c` traversed in
    /// direction `forward`, given the nulling weight.
    #[inline]
    fn model_at(&self, c: usize, forward: bool, wt: Complex64, j: usize) -> Complex64 {
        let w = self.cfg.window;
        let idx = if forward { j } else { w - 1 - j };
        self.steer[0][c * w + idx].conj() + wt * self.steer[1][c * w + idx].conj()
    }

    /// Mirror cell across the `x = 0` axis (the grid is symmetric about
    /// the receive antenna's axis for every `cover`-built room grid; for
    /// an asymmetric grid this is the index mirror, which is what the
    /// ambiguity actually couples).
    fn mirror_cell(&self, c: usize) -> usize {
        let (ix, iy) = self.grid.coords(c);
        self.grid.idx(self.grid.nx - 1 - ix, iy)
    }

    /// Resolves the mirror ambiguity of a candidate at cell `c` by
    /// *joint* least squares: fit the residual window with both the
    /// cell's model and its mirror-cell reversed-traversal model
    /// simultaneously, and keep the side with the larger solved
    /// amplitude. The single-sided image powers differ by well under a
    /// dB (the TX-pair asymmetry), so noise flips them; the joint solve
    /// removes each side's leakage into the other before comparing.
    /// Returns the winning cell.
    fn resolve_mirror_side(&self, c: usize, tx_weight: Complex64) -> usize {
        // The ghost's crest is not at the exact mirror cell — sub-cell
        // offsets and range–azimuth skew shift it by a cell or two — so
        // pit the candidate against the *strongest* cell of a small
        // neighbourhood around its mirror. The search respects the
        // range-edge guard: a fix must never be re-anchored into a row
        // the detector itself excludes as artefact.
        let guard = self.cfg.edge_guard_cells;
        let in_range_rows =
            |iy: isize| iy >= guard as isize && (iy as usize) < self.grid.ny - guard;
        let m = {
            let (mx, my) = self.grid.coords(self.mirror_cell(c));
            let mut best = self.mirror_cell(c);
            for dy in -1isize..=1 {
                for dx in -2isize..=2 {
                    let (jx, jy) = (mx as isize + dx, my as isize + dy);
                    if self.grid.contains(jx, jy) && in_range_rows(jy) {
                        let j = self.grid.idx(jx as usize, jy as usize);
                        if self.image[j] > self.image[best] {
                            best = j;
                        }
                    }
                }
            }
            // The exact mirror cell shares the candidate's (guarded)
            // row, so `best` is always in range.
            best
        };
        if m == c {
            return c;
        }
        let w = self.cfg.window;
        let wt = tx_weight;
        let fwd = self.dirs[c];
        // The mirror hypothesis of a target is the mirror cell walked
        // the opposite way (the RX-path phase histories then coincide).
        let mut g12 = Complex64::ZERO;
        let mut r1 = Complex64::ZERO;
        let mut r2 = Complex64::ZERO;
        for j in 0..w {
            let q1 = self.model_at(c, fwd, wt, j);
            let q2 = self.model_at(m, !fwd, wt, j);
            g12 += q1.conj() * q2;
            r1 += self.centered[j] * q1.conj();
            r2 += self.centered[j] * q2.conj();
        }
        let qn = |cell: usize| {
            (w as f64 * (1.0 + wt.norm_sqr()) + 2.0 * (wt * self.cross[cell]).re).max(1e-12)
        };
        let (g11, g22) = (qn(c), qn(m));
        let det = g11 * g22 - g12.norm_sqr();
        if det <= 1e-9 * g11 * g22 {
            return c; // hypotheses indistinguishable (cell near x = 0)
        }
        // Solve [g11 g12; g12* g22]·[a1; a2] = [r1; r2].
        let a1 = (r1 * g22 - g12 * r2) / det;
        let a2 = (r2 * g11 - g12.conj() * r1) / det;
        if a2.norm_sqr() > a1.norm_sqr() {
            m
        } else {
            c
        }
    }

    /// CLEAN step: estimates the complex amplitude of a target at cell
    /// `c` (winning traversal direction) by least squares and subtracts
    /// its modelled response from the resident window, so the next
    /// focus pass can surface weaker targets buried under its
    /// sidelobes.
    fn subtract_cell(&mut self, c: usize, tx_weight: Complex64) {
        let w = self.cfg.window;
        let t1 = &self.steer[0][c * w..(c + 1) * w];
        let t2 = &self.steer[1][c * w..(c + 1) * w];
        let forward = self.dirs[c];
        let wt = tx_weight;
        let mut r = Complex64::ZERO;
        for j in 0..w {
            let idx = if forward { j } else { w - 1 - j };
            // ⟨h, q⟩ with q_j = conj(t1[idx]) + wt·conj(t2[idx]).
            r += self.centered[j] * (t1[idx] + wt.conj() * t2[idx]);
        }
        let qn = (w as f64 * (1.0 + wt.norm_sqr()) + 2.0 * (wt * self.cross[c]).re).max(1e-12);
        let a = r / qn;
        for j in 0..w {
            let idx = if forward { j } else { w - 1 - j };
            let q = t1[idx].conj() + wt * t2[idx].conj();
            self.centered[j] -= a * q;
        }
    }

    /// Focuses a window and extracts its fixes by CLEAN-style
    /// successive cancellation: CFAR-detect the strongest target,
    /// subtract its modelled response from the window, re-focus, and
    /// repeat — so a weaker body buried under a stronger body's
    /// sidelobes still surfaces. Each accepted fix passes sub-cell
    /// parabolic refinement, mirror-ghost suppression, and non-maximum
    /// suppression against the already-accepted set; the loop stops at
    /// [`ImageConfig::max_fixes`] or when a pass yields no new
    /// candidate. Fully deterministic. Afterwards [`Self::image`] holds
    /// the final residual image.
    ///
    /// # Panics
    /// Panics if `window.len()` differs from the configured window.
    pub fn process_window_fixes(
        &mut self,
        window: &[Complex64],
        tx_weight: Complex64,
    ) -> Vec<ImageFix> {
        let _span = wivi_obs::span("image.window_fixes");
        self.center_window(window);
        let mut fixes: Vec<ImageFix> = Vec::new();
        for pass in 0..self.cfg.max_fixes {
            self.focus(tx_weight);
            match self.best_candidate(&fixes) {
                Some(mut f) => {
                    let mut cell = self.grid.idx(f.ix, f.iy);
                    let winner = self.resolve_mirror_side(cell, tx_weight);
                    if winner != cell {
                        // The joint test placed the target on the other
                        // side: re-anchor the fix there (the CFAR SNR is
                        // kept — it scored the pair, not the side).
                        cell = winner;
                        let (ix, iy) = self.grid.coords(cell);
                        let (off_x, off_y) = self.refine_subcell(ix, iy);
                        let center = self.cfg.grid.cell_center(ix, iy);
                        f = ImageFix {
                            x_m: center.x + off_x * self.cfg.grid.cell_x_m,
                            y_m: center.y + off_y * self.cfg.grid.cell_y_m,
                            power_db: 10.0 * self.image[cell].max(1e-300).log10(),
                            snr_db: f.snr_db,
                            ix,
                            iy,
                        };
                    }
                    fixes.push(f);
                    if pass + 1 < self.cfg.max_fixes {
                        self.subtract_cell(cell, tx_weight);
                    }
                }
                None => break,
            }
        }
        // Canonical order: ascending flat cell index.
        fixes.sort_by_key(|f| f.iy * self.grid.nx + f.ix);
        fixes
    }

    /// Extracts the strongest acceptable fix from the resident image:
    /// CFAR detections, sub-cell refined, with candidates suppressed
    /// when they fall within the separation radius of an accepted fix,
    /// or mirror an (at least as strong) accepted fix or same-pass
    /// detection (see [`ImageConfig::mirror_tol_m`]).
    fn best_candidate(&self, accepted: &[ImageFix]) -> Option<ImageFix> {
        let cfg = &self.cfg;
        let mut dets = ca_cfar_2d(&self.image, self.grid, &cfg.cfar);
        // Range-edge guard (see [`ImageConfig::edge_guard_cells`]).
        dets.retain(|d| d.iy >= cfg.edge_guard_cells && d.iy < self.grid.ny - cfg.edge_guard_cells);
        let fixes: Vec<ImageFix> = dets
            .iter()
            .map(|d| {
                let (off_x, off_y) = self.refine_subcell(d.ix, d.iy);
                let center = cfg.grid.cell_center(d.ix, d.iy);
                ImageFix {
                    x_m: center.x + off_x * cfg.grid.cell_x_m,
                    y_m: center.y + off_y * cfg.grid.cell_y_m,
                    power_db: 10.0 * d.power.max(1e-300).log10(),
                    snr_db: d.snr_db(),
                    ix: d.ix,
                    iy: d.iy,
                }
            })
            .collect();

        let flat = |f: &ImageFix| f.iy * self.grid.nx + f.ix;
        let mirror = |a: &ImageFix, b: &ImageFix| {
            cfg.mirror_tol_m > 0.0
                && (a.x_m + b.x_m).abs() <= cfg.mirror_tol_m
                && (a.y_m - b.y_m).abs() <= cfg.mirror_tol_m
        };
        fixes
            .iter()
            .filter(|f| {
                // Not a remnant of an already-subtracted target…
                accepted.iter().all(|k| {
                    (k.x_m - f.x_m).hypot(k.y_m - f.y_m) >= cfg.min_separation_m
                        && !mirror(k, f)
                })
                // …and not the weak side of a same-pass mirror pair.
                    && !fixes.iter().any(|s| {
                        (s.ix, s.iy) != (f.ix, f.iy)
                            && mirror(s, f)
                            && (s.power_db > f.power_db
                                || (s.power_db == f.power_db && flat(s) < flat(f)))
                    })
            })
            .min_by(|a, b| {
                // "Less" = better: strongest power, then lowest index.
                b.power_db
                    .partial_cmp(&a.power_db)
                    .unwrap()
                    .then(flat(a).cmp(&flat(b)))
            })
            .copied()
    }

    /// Parabolic sub-cell peak refinement along each axis (in dB, like
    /// the spectrogram's sub-bin ridge interpolation). Edge cells and
    /// degenerate (non-concave) neighbourhoods stay at the cell centre.
    fn refine_subcell(&self, ix: usize, iy: usize) -> (f64, f64) {
        let db = |i: usize| 10.0 * self.image[i].max(1e-300).log10();
        let axis = |lo: Option<usize>, c: usize, hi: Option<usize>| -> f64 {
            match (lo, hi) {
                (Some(l), Some(h)) => {
                    let (yl, yc, yh) = (db(l), db(c), db(h));
                    let denom = yl - 2.0 * yc + yh;
                    if denom < -1e-12 {
                        (0.5 * (yl - yh) / denom).clamp(-0.5, 0.5)
                    } else {
                        0.0
                    }
                }
                _ => 0.0,
            }
        };
        let g = self.grid;
        let c = g.idx(ix, iy);
        let off_x = axis(
            (ix > 0).then(|| g.idx(ix - 1, iy)),
            c,
            (ix + 1 < g.nx).then(|| g.idx(ix + 1, iy)),
        );
        let off_y = axis(
            (iy > 0).then(|| g.idx(ix, iy - 1)),
            c,
            (iy + 1 < g.ny).then(|| g.idx(ix, iy + 1)),
        );
        (off_x, off_y)
    }

    /// Synthesizes the ideal nulled residual of a point subject at
    /// `start` walking at `velocity` (m/s) — the exact signal the
    /// engine's matched filter is built for, used by tests and the
    /// focusing diagnostics.
    pub fn synthetic_subject_trace(
        cfg: &ImageConfig,
        n: usize,
        start: Point,
        velocity: wivi_rf::Vec2,
        amplitude: f64,
        tx_weight: Complex64,
    ) -> Vec<Complex64> {
        let k_wave = std::f64::consts::TAU / cfg.wavelength;
        (0..n)
            .map(|i| {
                let t = i as f64 * cfg.sample_period_s;
                let p = start + velocity * t;
                let mut h = Complex64::ZERO;
                for (k, tx) in cfg.tx.iter().enumerate() {
                    let r = tx.distance(p) + p.distance(cfg.rx);
                    let w = if k == 0 { Complex64::ONE } else { tx_weight };
                    h += w * Complex64::from_polar(amplitude, -k_wave * r);
                }
                h
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_rf::Vec2;

    fn test_cfg() -> ImageConfig {
        ImageConfig::fast_test()
    }

    fn peak_cell(engine: &ImagingEngine) -> (usize, usize) {
        let (i, _) = engine
            .image()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        engine.grid().coords(i)
    }

    #[test]
    fn synthetic_pacer_focuses_at_its_cell() {
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let wt = Complex64::new(-0.9, 0.3);
        // A subject pacing +x through (0.55, 2.45) at the assumed speed;
        // the trace below is centred on that crossing.
        let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
        let start = Point::new(0.55 - half_t, 2.45);
        let trace = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            start,
            Vec2::new(1.0, 0.0),
            1.0,
            wt,
        );
        let img = engine.process_window(&trace, wt);
        assert_eq!(img.len(), cfg.grid.len());
        let (ix, iy) = peak_cell(&engine);
        let p = cfg.grid.cell_center(ix, iy);
        assert!(
            (p.x - 0.55).abs() <= cfg.grid.cell_x_m && (p.y - 2.45).abs() <= cfg.grid.cell_y_m,
            "peak at ({:.2}, {:.2}), subject at (0.55, 2.45)",
            p.x,
            p.y
        );
    }

    #[test]
    fn reverse_walker_focuses_at_the_same_cell() {
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let wt = Complex64::new(0.8, -0.5);
        let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
        let start = Point::new(-1.25 + half_t, 1.95);
        let trace = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            start,
            Vec2::new(-1.0, 0.0),
            1.0,
            wt,
        );
        engine.process_window(&trace, wt);
        let (ix, iy) = peak_cell(&engine);
        let p = cfg.grid.cell_center(ix, iy);
        // The subject straddles cell centres, so range–azimuth coupling
        // may skew the peak by a cell on each axis.
        assert!(
            (p.x - (-1.25)).abs() <= 2.0 * cfg.grid.cell_x_m
                && (p.y - 1.95).abs() <= cfg.grid.cell_y_m + 1e-9,
            "peak at ({:.2}, {:.2}), subject at (−1.25, 1.95)",
            p.x,
            p.y
        );
    }

    #[test]
    fn dc_residual_produces_a_flat_image() {
        // A purely static residual (the nulling drift line) must be
        // removed by the mean subtraction, leaving no focused peak.
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let trace = vec![Complex64::new(0.7, -0.4); cfg.window];
        let img = engine.process_window(&trace, Complex64::ONE);
        assert!(img.iter().all(|&p| p < 1e-12), "DC leaked into the image");
        assert!(engine
            .process_window_fixes(&trace, Complex64::ONE)
            .is_empty());
    }

    #[test]
    fn fixes_locate_the_synthetic_subject_with_subcell_error() {
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let wt = Complex64::new(-1.02, 0.11);
        let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
        // Near a cell centre: the precision claim is about the refined
        // fix, not the worst-case both-axes-straddling skew (the
        // showcase acceptance tests cover realistic positions).
        let subject = Point::new(1.44, 2.95);
        let start = Point::new(subject.x - half_t, subject.y);
        let trace = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            start,
            Vec2::new(1.0, 0.0),
            1.0,
            wt,
        );
        let fixes = engine.process_window_fixes(&trace, wt);
        assert!(!fixes.is_empty(), "no fix on a clean subject");
        let best = fixes
            .iter()
            .min_by(|a, b| {
                let da = (a.x_m - subject.x).hypot(a.y_m - subject.y);
                let db = (b.x_m - subject.x).hypot(b.y_m - subject.y);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        let err = (best.x_m - subject.x).hypot(best.y_m - subject.y);
        assert!(
            err <= cfg.grid.diagonal_m(),
            "fix at ({:.2}, {:.2}), {err:.2} m from the subject",
            best.x_m,
            best.y_m
        );
    }

    #[test]
    fn processing_is_deterministic_and_buffer_reuse_is_invisible() {
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let wt = Complex64::new(0.4, 0.9);
        let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
        let t1 = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            Point::new(-2.0 - half_t, 1.2),
            Vec2::new(1.0, 0.0),
            1.0,
            wt,
        );
        let t2 = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            Point::new(2.0 + half_t, 3.8),
            Vec2::new(-1.0, 0.0),
            0.5,
            wt,
        );
        let a1 = engine.process_window(&t1, wt).to_vec();
        let _ = engine.process_window(&t2, wt); // dirty the buffer
        let a1_again = engine.process_window(&t1, wt).to_vec();
        for (x, y) in a1.iter().zip(&a1_again) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A fresh engine agrees too.
        let mut fresh = ImagingEngine::new(cfg);
        let b1 = fresh.process_window(&t1, wt).to_vec();
        for (x, y) in a1.iter().zip(&b1) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn focus_is_thread_count_invariant_bitwise() {
        let cfg = test_cfg();
        let wt = Complex64::new(0.4, 0.9);
        let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
        let trace = ImagingEngine::synthetic_subject_trace(
            &cfg,
            cfg.window,
            Point::new(-2.0 - half_t, 1.2),
            Vec2::new(1.0, 0.0),
            1.0,
            wt,
        );
        let mut reference = ImagingEngine::new(cfg);
        reference.set_focus_threads(1);
        let want = reference.process_window(&trace, wt).to_vec();
        // More workers than cells is legal too (clamped internally).
        for threads in [2usize, 3, 7, 10_000] {
            let mut engine = ImagingEngine::new(cfg);
            engine.set_focus_threads(threads);
            assert_eq!(engine.focus_threads(), threads);
            let got = engine.process_window(&trace, wt);
            for (x, y) in want.iter().zip(got) {
                assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
            }
            assert_eq!(reference.dirs, engine.dirs, "{threads} threads dirs");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_window_length() {
        let cfg = test_cfg();
        let mut engine = ImagingEngine::new(cfg);
        let _ = engine.process_window(&[Complex64::ONE; 10], Complex64::ONE);
    }
}
