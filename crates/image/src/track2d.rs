//! Position tracking over per-window image fixes: the imaging
//! counterpart of `wivi-track`'s angle tracker, built on the same
//! kernels — gated globally-optimal assignment
//! ([`wivi_num::solve_assignment`]) and the constant-velocity
//! [`wivi_num::Kalman2`], one filter per coordinate (the CV model is
//! separable, so two independent 2-state filters are exactly the 4-state
//! (x, y, ẋ, ẏ) filter with block-diagonal covariance). Tracks carry
//! room positions in metres instead of bare angles.
//!
//! The lifecycle is the proven subset of the angle tracker's:
//! `Tentative → Confirmed → Coasting ⇄ Confirmed … → Dead`, with
//! tentative tracks dying on their first miss and only confirmed tracks
//! reported. The dominance/continuity announcement veto is *not* carried
//! over: the CFAR detector already thresholds against local noise, and
//! mirror ghosts are suppressed at fix extraction.
//!
//! Everything is a pure deterministic function of the fix sequence, so
//! the streaming tracker is bitwise identical to the offline one — the
//! same contract every other stage honours.

use wivi_num::{solve_assignment, Kalman2};

use crate::config::ImageConfig;
use crate::engine::ImageFix;

/// Position-tracker tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositionTrackerConfig {
    /// Hard association gate: a fix farther than this many metres from a
    /// track's predicted position can never match it.
    pub gate_m: f64,
    /// Statistical gate on the summed normalized innovation squared
    /// (χ² with 2 dof; 11.8 ≈ a 3σ gate). Doubles as the miss cost.
    pub gate_nis: f64,
    /// White-acceleration PSD per axis, m²/s³.
    pub process_noise: f64,
    /// Measurement noise variance per axis, m² (sub-cell refinement
    /// leaves roughly half a cell of uncertainty).
    pub measurement_var: f64,
    /// Initial position variance of a newborn track, m².
    pub init_pos_var: f64,
    /// Initial velocity variance of a newborn track, (m/s)².
    pub init_vel_var: f64,
    /// Matched windows before a tentative track is confirmed.
    pub confirm_hits: usize,
    /// Consecutive misses a confirmed track survives (coasting) before
    /// it dies.
    pub max_misses: usize,
    /// Analysis-window length in channel samples (timing only).
    pub window_len: usize,
    /// Hop between windows, channel samples.
    pub hop: usize,
    /// Channel sampling period, seconds.
    pub sample_period_s: f64,
    /// The boresight (mirror) axis `x`, metres — the receive antenna's
    /// x. A target at `(x, y)` leaves its conjugate ghost near the
    /// reflection of `x` across this axis.
    pub mirror_axis_x_m: f64,
    /// Track-pair tolerance of the mirror-side vote, metres
    /// (0 disables): two confirmed tracks whose per-window positions
    /// reflect each other across the axis within this tolerance form a
    /// mirror pair, and the vote marks the weaker member a ghost (see
    /// [`PositionTrack::mirror_of`]).
    pub mirror_vote_tol_m: f64,
}

/// Fraction of a mirror pair's jointly observed windows that must vote
/// "mirrored" before the pair is declared real + ghost (per-window
/// side flips are noisy; a supermajority is required).
const MIRROR_VOTE_MAJORITY: f64 = 0.7;

/// Minimum jointly observed windows before the vote is meaningful.
/// Ghost tracks are short — the joint-LS errs in bursts of a few
/// windows — so the floor is the tracker's own confirmation bar, not
/// a long overlap.
const MIRROR_VOTE_MIN_COMMON: usize = 2;

/// Range-axis (y) slack factor of the pair test: the range axis is
/// several times coarser than azimuth and limb micro-Doppler smears a
/// body's focused blob along it, so a mirrored pair's y values differ
/// by more than their x values reflect. Must stay below the showcase
/// lane separation (1.4 m) over the default tolerance so two real
/// subjects on mirrored lanes never pair.
const MIRROR_VOTE_Y_SLACK: f64 = 1.2;

/// Window slack of the pair test: a ghost fix is compared against the
/// real track's observed positions up to this many windows away. In
/// exactly the windows whose body fix flipped sides, the real track has
/// no body fix of its own (it coasted, or latched a limb artefact), so
/// the ghost must be matched against where the body track was *around*
/// the flip, not at it.
const MIRROR_VOTE_WINDOW_SLACK: usize = 1;

/// Boresight guard of the vote, metres: side decisions anchored closer
/// than this to the mirror axis are not counted. Near the axis the two
/// mirror hypotheses collapse into one (the per-window joint solve
/// itself bails there as indistinguishable), and a subject *crossing*
/// the axis legitimately leaves an axis-adjacent mirror-looking track
/// pair — votes there would suppress real detections, not ghosts.
const MIRROR_VOTE_AXIS_GUARD_M: f64 = 1.5;

impl PositionTrackerConfig {
    /// A tracker matched to an imaging configuration: window timing from
    /// the aperture, measurement noise from the cell size.
    pub fn for_image(cfg: &ImageConfig) -> Self {
        // Gate and noise scales follow the coarser (range) axis — the
        // azimuth axis is finer, never worse.
        let cell = cfg.grid.cell_x_m.max(cfg.grid.cell_y_m);
        Self {
            gate_m: 3.0 * cell,
            gate_nis: 11.8,
            process_noise: 1.0,
            measurement_var: (cell / 2.0) * (cell / 2.0),
            init_pos_var: cell * cell,
            init_vel_var: 1.0,
            confirm_hits: 2,
            max_misses: 3,
            window_len: cfg.window,
            hop: cfg.hop,
            sample_period_s: cfg.sample_period_s,
            mirror_axis_x_m: cfg.rx.x,
            // Track-level positions carry range smear the per-window
            // detector's sub-cell fixes do not, so the vote's tolerance
            // is the coarse-axis cell pitch (2 cells), not the
            // detector's mirror_tol_m.
            mirror_vote_tol_m: if cfg.mirror_tol_m > 0.0 {
                2.0 * cell
            } else {
                0.0
            },
        }
    }

    /// Centre time of analysis window `k` — the same expression
    /// [`ImageConfig::window_center_s`] uses.
    pub fn window_time_s(&self, k: usize) -> f64 {
        ((k * self.hop) as f64 + self.window_len as f64 / 2.0) * self.sample_period_s
    }

    /// Time between consecutive windows, seconds.
    pub fn window_dt_s(&self) -> f64 {
        self.hop as f64 * self.sample_period_s
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.gate_m > 0.0 && self.gate_nis > 0.0);
        assert!(self.process_noise > 0.0 && self.measurement_var > 0.0);
        assert!(self.init_pos_var > 0.0 && self.init_vel_var > 0.0);
        assert!(self.confirm_hits >= 1, "confirm_hits must be at least 1");
        assert!(self.window_len >= 1 && self.hop >= 1);
        assert!(self.sample_period_s > 0.0);
        assert!(self.mirror_axis_x_m.is_finite());
        assert!(self.mirror_vote_tol_m >= 0.0);
    }
}

/// Lifecycle state of a position track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PositionTrackStatus {
    /// Newborn; dies on its first miss, never reported.
    Tentative,
    /// Seen `confirm_hits` windows — a localized person.
    Confirmed,
    /// Confirmed but currently unobserved; propagates on prediction.
    Coasting,
    /// Exhausted the miss budget.
    Dead,
}

/// One window of a position track's trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositionPoint {
    /// Analysis-window index.
    pub window: usize,
    /// Window centre time, seconds.
    pub time_s: f64,
    /// Filtered position, metres.
    pub x_m: f64,
    pub y_m: f64,
    /// Filtered velocity, m/s.
    pub vx: f64,
    pub vy: f64,
    /// The fix this window matched, if the track was observed.
    pub observed: Option<ImageFix>,
}

/// One target's track through the room.
#[derive(Clone, Debug, PartialEq)]
pub struct PositionTrack {
    /// Stable identity, assigned at birth in spawn order.
    pub id: u32,
    /// Window of the first fix.
    pub born_window: usize,
    /// Window at which the track reached confirmation, if ever.
    pub confirmed_window: Option<usize>,
    /// Window of the most recent fix.
    pub last_observed_window: usize,
    pub status: PositionTrackStatus,
    /// Per-axis Kalman state as of the last processed window.
    pub kx: Kalman2,
    pub ky: Kalman2,
    /// Consecutive windows without a matched fix.
    pub misses: usize,
    /// Total windows with a matched fix.
    pub observed_windows: usize,
    /// Set by the mirror-side vote at [`PositionTracker::finish`]: the
    /// id of the (stronger) track this one is the conjugate ghost of.
    /// The per-window joint-LS mirror resolution occasionally picks the
    /// wrong side, and those error windows accrete into a track on the
    /// mirrored trajectory; across windows the errors flip side while a
    /// real target's fixes keep feeding one track, so the track that
    /// wins the per-window majority is real and the loser is marked
    /// here. Ghost tracks stay in the report (nothing pinned changes) —
    /// consumers filter with
    /// [`ImagingReport::credible_fixes`](crate::ImagingReport::credible_fixes).
    pub mirror_of: Option<u32>,
    /// One point per window from birth.
    pub history: Vec<PositionPoint>,
}

impl PositionTrack {
    /// Predicted position, metres.
    pub fn position(&self) -> (f64, f64) {
        (self.kx.predicted(), self.ky.predicted())
    }

    /// Number of windows the track spans.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` if the track never recorded a point (not possible for
    /// reported tracks).
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Mean observed position over the track's matched windows.
    pub fn mean_observed(&self) -> Option<(f64, f64)> {
        let obs: Vec<&ImageFix> = self
            .history
            .iter()
            .filter_map(|p| p.observed.as_ref())
            .collect();
        if obs.is_empty() {
            return None;
        }
        let n = obs.len() as f64;
        Some((
            obs.iter().map(|f| f.x_m).sum::<f64>() / n,
            obs.iter().map(|f| f.y_m).sum::<f64>() / n,
        ))
    }
}

/// Everything a position-tracking run produced (the tracker half of the
/// [`crate::ImagingReport`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PositionTrackingSummary {
    /// Every confirmed track, in id (birth) order.
    pub tracks: Vec<PositionTrack>,
    /// Per-window count of confirmed tracks (coasting included).
    pub confirmed_counts: Vec<usize>,
    /// Window centre times, seconds.
    pub times_s: Vec<f64>,
}

/// The streaming position tracker: feed it each window's fixes, drain
/// the summary with [`Self::finish`].
#[derive(Clone, Debug)]
pub struct PositionTracker {
    cfg: PositionTrackerConfig,
    /// Live tracks in birth order (determinism relies on stable order).
    live: Vec<PositionTrack>,
    /// Retired tracks that reached confirmation.
    finished: Vec<PositionTrack>,
    next_id: u32,
    window: usize,
    confirmed_counts: Vec<usize>,
    times_s: Vec<f64>,
    /// Scratch: per-track × per-fix gated costs.
    costs: Vec<Vec<f64>>,
}

impl PositionTracker {
    /// Creates a tracker.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: PositionTrackerConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            live: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            window: 0,
            confirmed_counts: Vec::new(),
            times_s: Vec::new(),
            costs: Vec::new(),
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &PositionTrackerConfig {
        &self.cfg
    }

    /// Windows processed so far.
    pub fn n_windows(&self) -> usize {
        self.window
    }

    /// Live tracks (any status), in birth order.
    pub fn live_tracks(&self) -> &[PositionTrack] {
        &self.live
    }

    /// Current confirmed-track count (coasting included).
    pub fn confirmed_count(&self) -> usize {
        *self.confirmed_counts.last().unwrap_or(&0)
    }

    /// Processes one window's fixes: predict → associate → update →
    /// lifecycle → spawn.
    pub fn push_fixes(&mut self, fixes: &[ImageFix]) {
        let w = self.window;
        let t = self.cfg.window_time_s(w);
        let dt = self.cfg.window_dt_s();
        let r = self.cfg.measurement_var;

        // 1. Predict.
        if w > 0 {
            for tr in &mut self.live {
                tr.kx.predict(dt, self.cfg.process_noise);
                tr.ky.predict(dt, self.cfg.process_noise);
            }
        }

        // 2. Associate: gated per-axis NIS sums, optimal assignment,
        //    misses priced at the gate.
        self.costs.clear();
        for tr in &self.live {
            let row: Vec<f64> = fixes
                .iter()
                .map(|f| {
                    let (px, py) = tr.position();
                    let dist = (f.x_m - px).hypot(f.y_m - py);
                    let nis = tr.kx.gate_distance2(f.x_m, r) + tr.ky.gate_distance2(f.y_m, r);
                    if dist <= self.cfg.gate_m && nis <= self.cfg.gate_nis {
                        nis
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            self.costs.push(row);
        }
        let miss = vec![self.cfg.gate_nis; self.live.len()];
        let assignment = solve_assignment(&self.costs, &miss);

        // 3. Update matched tracks, age unmatched ones.
        let mut fix_used = vec![false; fixes.len()];
        let mut retired: Vec<usize> = Vec::new();
        for (i, tr) in self.live.iter_mut().enumerate() {
            match assignment.pairing[i] {
                Some(j) => {
                    fix_used[j] = true;
                    tr.kx.update(fixes[j].x_m, r);
                    tr.ky.update(fixes[j].y_m, r);
                    tr.misses = 0;
                    tr.observed_windows += 1;
                    tr.last_observed_window = w;
                    if tr.status == PositionTrackStatus::Coasting {
                        tr.status = PositionTrackStatus::Confirmed;
                    } else if tr.status == PositionTrackStatus::Tentative
                        && tr.observed_windows >= self.cfg.confirm_hits
                    {
                        tr.status = PositionTrackStatus::Confirmed;
                        tr.confirmed_window = Some(w);
                    }
                    record_position(tr, w, t, Some(fixes[j]));
                }
                None => {
                    tr.misses += 1;
                    match tr.status {
                        PositionTrackStatus::Tentative => {
                            tr.status = PositionTrackStatus::Dead;
                            retired.push(i);
                        }
                        PositionTrackStatus::Confirmed | PositionTrackStatus::Coasting => {
                            tr.status = PositionTrackStatus::Coasting;
                            if tr.misses > self.cfg.max_misses {
                                tr.status = PositionTrackStatus::Dead;
                                retired.push(i);
                            } else {
                                record_position(tr, w, t, None);
                            }
                        }
                        PositionTrackStatus::Dead => unreachable!("dead tracks are retired"),
                    }
                }
            }
        }
        for &i in retired.iter().rev() {
            let tr = self.live.remove(i);
            if tr.confirmed_window.is_some() {
                self.finished.push(tr);
            }
        }

        // 4. Spawn tentative tracks from unmatched fixes.
        for (j, f) in fixes.iter().enumerate() {
            if fix_used[j] {
                continue;
            }
            let kx = Kalman2::from_observation(f.x_m, self.cfg.init_pos_var, self.cfg.init_vel_var);
            let ky = Kalman2::from_observation(f.y_m, self.cfg.init_pos_var, self.cfg.init_vel_var);
            let confirmed = self.cfg.confirm_hits == 1;
            let mut tr = PositionTrack {
                id: self.next_id,
                born_window: w,
                confirmed_window: confirmed.then_some(w),
                last_observed_window: w,
                status: if confirmed {
                    PositionTrackStatus::Confirmed
                } else {
                    PositionTrackStatus::Tentative
                },
                kx,
                ky,
                misses: 0,
                observed_windows: 1,
                mirror_of: None,
                history: Vec::new(),
            };
            record_position(&mut tr, w, t, Some(*f));
            self.next_id += 1;
            self.live.push(tr);
        }

        // 5. Bookkeeping.
        let count = self
            .live
            .iter()
            .filter(|tr| tr.confirmed_window.is_some())
            .count();
        self.confirmed_counts.push(count);
        self.times_s.push(t);
        self.window += 1;
    }

    /// Finalizes the run: confirmed tracks only, id order, with the
    /// mirror-side vote annotating conjugate ghosts; tracks alive at
    /// the end keep their final status.
    pub fn finish(mut self) -> PositionTrackingSummary {
        let mut tracks = std::mem::take(&mut self.finished);
        for tr in self.live {
            if tr.confirmed_window.is_some() {
                tracks.push(tr);
            }
        }
        tracks.sort_by_key(|t| t.id);
        vote_mirror_sides(&mut tracks, &self.cfg);
        PositionTrackingSummary {
            tracks,
            confirmed_counts: self.confirmed_counts,
            times_s: self.times_s,
        }
    }
}

/// The tracker-level mirror disambiguation. Every window where two
/// tracks were both fed a fix is one joint-LS side decision; the pair
/// votes "mirrored" when those fixes reflect each other across the
/// boresight axis (x reflects within the tolerance; y — the coarse,
/// micro-Doppler-smeared range axis — gets proportional slack). A
/// supermajority of mirrored windows means the pair is one target plus
/// its conjugate ghost: the joint-LS side choice flips window-to-window
/// for the ghost (it is fed only by the resolution's error windows)
/// while the real target's track is fed consistently — so the member
/// holding a clear fix majority (`observed_windows`, ≥ 2×) is real and
/// the other is marked [`PositionTrack::mirror_of`] it. A pair without
/// that dominance — e.g. two genuinely mirror-symmetric subjects — is
/// left alone. Pure function of the track set, so serving stays
/// bitwise identical to standalone.
fn vote_mirror_sides(tracks: &mut [PositionTrack], cfg: &PositionTrackerConfig) {
    let tol = cfg.mirror_vote_tol_m;
    if tol <= 0.0 {
        return;
    }
    let axis2 = 2.0 * cfg.mirror_axis_x_m;
    for i in 0..tracks.len() {
        for j in (i + 1)..tracks.len() {
            // A track already voted a ghost cannot claim others (its
            // mirror is the real target it shadows).
            if tracks[i].mirror_of.is_some() || tracks[j].mirror_of.is_some() {
                continue;
            }
            // Only a clearly weaker partner can be a ghost: error
            // windows are the minority by construction.
            let (oi, oj) = (tracks[i].observed_windows, tracks[j].observed_windows);
            if 2 * oi.min(oj) > oi.max(oj) {
                continue;
            }
            let ghost = if oi >= oj { j } else { i };
            let real = i + j - ghost;
            // Each of the candidate ghost's observed windows is one
            // joint-LS side decision: it votes "mirrored" when the real
            // track holds a nearby observed position whose reflection
            // matches it.
            let (mut common, mut mirrored) = (0usize, 0usize);
            for pg in tracks[ghost]
                .history
                .iter()
                .filter(|p| p.observed.is_some())
            {
                let neighbors: Vec<&PositionPoint> = tracks[real]
                    .history
                    .iter()
                    .filter(|p| {
                        p.observed.is_some()
                            && p.window.abs_diff(pg.window) <= MIRROR_VOTE_WINDOW_SLACK
                            && (p.x_m - cfg.mirror_axis_x_m).abs() >= MIRROR_VOTE_AXIS_GUARD_M
                    })
                    .collect();
                if neighbors.is_empty() {
                    continue;
                }
                common += 1;
                if neighbors.iter().any(|pr| {
                    (pg.x_m + pr.x_m - axis2).abs() <= tol
                        && (pg.y_m - pr.y_m).abs() <= MIRROR_VOTE_Y_SLACK * tol
                }) {
                    mirrored += 1;
                }
            }
            if common < MIRROR_VOTE_MIN_COMMON
                || (mirrored as f64) < MIRROR_VOTE_MAJORITY * common as f64
            {
                continue;
            }
            tracks[ghost].mirror_of = Some(tracks[real].id);
        }
    }
}

/// Appends one window to `tr`'s history.
fn record_position(tr: &mut PositionTrack, w: usize, t: f64, observed: Option<ImageFix>) {
    tr.history.push(PositionPoint {
        window: w,
        time_s: t,
        x_m: tr.kx.predicted(),
        y_m: tr.ky.predicted(),
        vx: tr.kx.velocity(),
        vy: tr.ky.velocity(),
        observed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PositionTrackerConfig {
        PositionTrackerConfig::for_image(&ImageConfig::fast_test())
    }

    fn fix(x: f64, y: f64) -> ImageFix {
        ImageFix {
            x_m: x,
            y_m: y,
            power_db: -30.0,
            snr_db: 12.0,
            ix: 0,
            iy: 0,
        }
    }

    #[test]
    fn steady_subject_confirms_and_tracks() {
        let mut tk = PositionTracker::new(cfg());
        for k in 0..8 {
            let t = k as f64 * tk.cfg.window_dt_s();
            tk.push_fixes(&[fix(-1.0 + 0.8 * t, 2.5)]);
        }
        assert_eq!(tk.confirmed_count(), 1);
        let s = tk.finish();
        assert_eq!(s.tracks.len(), 1);
        let tr = &s.tracks[0];
        assert_eq!(tr.observed_windows, 8);
        assert!(tr.confirmed_window.is_some());
        // Velocity learned ≈ (0.8, 0) m/s.
        assert!(
            (tr.kx.velocity() - 0.8).abs() < 0.3,
            "vx {}",
            tr.kx.velocity()
        );
        assert!(tr.ky.velocity().abs() < 0.3);
        assert_eq!(s.confirmed_counts.len(), 8);
        assert_eq!(s.times_s.len(), 8);
    }

    #[test]
    fn single_window_flicker_is_never_reported() {
        let mut tk = PositionTracker::new(cfg());
        tk.push_fixes(&[fix(0.0, 2.0)]);
        for _ in 0..4 {
            tk.push_fixes(&[]);
        }
        let s = tk.finish();
        assert!(s.tracks.is_empty());
        assert!(s.confirmed_counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn two_subjects_keep_identities_through_parallel_motion() {
        let mut tk = PositionTracker::new(cfg());
        for k in 0..10 {
            let t = k as f64 * tk.cfg.window_dt_s();
            tk.push_fixes(&[fix(-2.0 + 0.9 * t, 1.5), fix(2.0 - 0.9 * t, 3.5)]);
        }
        let s = tk.finish();
        assert_eq!(s.tracks.len(), 2);
        // Each track's observations stay on its own lane.
        for tr in &s.tracks {
            let ys: Vec<f64> = tr
                .history
                .iter()
                .filter_map(|p| p.observed.map(|f| f.y_m))
                .collect();
            let first = ys[0];
            assert!(
                ys.iter().all(|y| (y - first).abs() < 0.1),
                "lane mixed: {ys:?}"
            );
        }
        assert_eq!(*s.confirmed_counts.last().unwrap(), 2);
        // Different lanes (Δy well past the tolerance): two real
        // subjects, the mirror vote must not touch them.
        assert!(s.tracks.iter().all(|t| t.mirror_of.is_none()));
    }

    #[test]
    fn mirror_vote_marks_the_intermittent_ghost() {
        // A real subject paces one lane; the per-window joint-LS errs
        // for a stretch of windows, feeding fixes on the conjugate side
        // (x reflected across the boresight axis, same y). The ghost
        // track those errors accrete into mirrors the real track
        // window-for-window but holds fewer observations — the vote
        // must mark it, and only it.
        let mut tk = PositionTracker::new(cfg());
        let dt = tk.cfg.window_dt_s();
        for k in 0..10 {
            let t = k as f64 * dt;
            let x = -2.0 + 0.8 * t;
            let mut fixes = vec![fix(x, 2.0)];
            if k < 4 {
                fixes.push(fix(-x, 2.0)); // the side-flip error windows
            }
            tk.push_fixes(&fixes);
        }
        let s = tk.finish();
        assert_eq!(s.tracks.len(), 2);
        let real = s.tracks.iter().max_by_key(|t| t.observed_windows).unwrap();
        let ghost = s.tracks.iter().min_by_key(|t| t.observed_windows).unwrap();
        assert!(real.mirror_of.is_none(), "real track voted a ghost");
        assert_eq!(
            ghost.mirror_of,
            Some(real.id),
            "ghost not attributed to its real twin"
        );
    }

    #[test]
    fn mirror_vote_is_disabled_by_zero_tolerance() {
        let mut c = cfg();
        c.mirror_vote_tol_m = 0.0;
        let mut tk = PositionTracker::new(c);
        for k in 0..8 {
            let x = -1.6 + 0.3 * k as f64;
            tk.push_fixes(&[fix(x, 2.0), fix(-x, 2.0)]);
        }
        let s = tk.finish();
        assert!(s.tracks.iter().all(|t| t.mirror_of.is_none()));
    }

    #[test]
    fn coasting_bridges_a_short_fade_and_miss_budget_kills() {
        let mut tk = PositionTracker::new(cfg());
        for _ in 0..4 {
            tk.push_fixes(&[fix(1.0, 2.0)]);
        }
        // Two-window fade: the track coasts, then reacquires.
        tk.push_fixes(&[]);
        tk.push_fixes(&[]);
        assert_eq!(tk.confirmed_count(), 1);
        tk.push_fixes(&[fix(1.0, 2.0)]);
        assert_eq!(tk.live_tracks()[0].status, PositionTrackStatus::Confirmed);
        // Now exhaust the miss budget.
        for _ in 0..(tk.cfg.max_misses + 1) {
            tk.push_fixes(&[]);
        }
        assert_eq!(tk.confirmed_count(), 0);
        let s = tk.finish();
        assert_eq!(s.tracks.len(), 1, "confirmed track must still be reported");
        assert_eq!(s.tracks[0].status, PositionTrackStatus::Dead);
    }

    #[test]
    fn tracker_is_deterministic() {
        let run = || {
            let mut tk = PositionTracker::new(cfg());
            for k in 0..6 {
                let t = k as f64 * 0.4;
                tk.push_fixes(&[fix(-1.0 + t, 2.0), fix(1.5, 3.0 - 0.3 * t)]);
            }
            tk.finish()
        };
        assert_eq!(run(), run());
    }
}
