//! Streaming imaging stages: batch-invariant windowing over the
//! backprojection engine, in both the owned and the engine-shared
//! (serving) shape.
//!
//! [`StreamingImage`] mirrors [`wivi_core::StreamingMusic`]: it owns its
//! engine, buffers samples in a [`wivi_core::WindowBuffer`], focuses each
//! completed aperture, extracts CFAR fixes, and folds them into a
//! [`PositionTracker`]. [`SharedStreamingImage`] mirrors
//! [`wivi_core::SharedStreamingMusic`]: only the genuinely per-session
//! state lives here (window buffer, nulling weight, counters) while the
//! heavy engine — steering tables, image buffer — is borrowed per batch
//! from the serving shard's cache. Both emit bitwise-identical frames
//! because both feed the same windows through
//! [`ImagingEngine::process_window_fixes`], whose output depends only on
//! the configuration, the window contents, and the nulling weight.

use wivi_core::WindowBuffer;
use wivi_num::Complex64;

use crate::config::{GridSpec, ImageConfig};
use crate::engine::{ImageFix, ImagingEngine};
use crate::track2d::{
    PositionTrack, PositionTracker, PositionTrackerConfig, PositionTrackingSummary,
};

/// Everything an imaging run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ImagingReport {
    /// The imaged grid.
    pub grid: GridSpec,
    /// Window centre times, seconds.
    pub times_s: Vec<f64>,
    /// Per-window CFAR fixes, in window order.
    pub fixes: Vec<Vec<ImageFix>>,
    /// Confirmed (x, y) tracks over the run, in id order.
    pub tracks: Vec<PositionTrack>,
    /// Per-window confirmed-track count (coasting included).
    pub confirmed_counts: Vec<usize>,
}

impl ImagingReport {
    /// Assembles a report from the retained per-window fixes and the
    /// tracker's summary — the one constructor both the standalone
    /// stage and the serving drive use, so they cannot assemble
    /// differently.
    pub fn assemble(
        grid: GridSpec,
        fixes: Vec<Vec<ImageFix>>,
        summary: PositionTrackingSummary,
    ) -> Self {
        assert_eq!(fixes.len(), summary.times_s.len(), "frame count mismatch");
        Self {
            grid,
            times_s: summary.times_s,
            fixes,
            tracks: summary.tracks,
            confirmed_counts: summary.confirmed_counts,
        }
    }

    /// Number of imaging windows processed.
    pub fn n_windows(&self) -> usize {
        self.times_s.len()
    }

    /// Total fixes across all windows.
    pub fn n_fixes(&self) -> usize {
        self.fixes.iter().map(Vec::len).sum()
    }

    /// Ids of confirmed tracks the tracker-level mirror-side vote
    /// marked as conjugate ghosts (see [`PositionTrack::mirror_of`]).
    pub fn mirror_ghost_ids(&self) -> Vec<u32> {
        self.tracks
            .iter()
            .filter(|t| t.mirror_of.is_some())
            .map(|t| t.id)
            .collect()
    }

    /// The per-window fixes with every fix that fed a mirror-ghost
    /// track removed — the view to *score* (and display) by. The raw
    /// [`Self::fixes`] are untouched: they are what the golden traces
    /// pin, and the per-window detector genuinely emitted them; the
    /// vote is hindsight only a whole track's history can provide.
    pub fn credible_fixes(&self) -> Vec<Vec<ImageFix>> {
        let mut out = self.fixes.clone();
        for ghost in self.tracks.iter().filter(|t| t.mirror_of.is_some()) {
            for p in &ghost.history {
                let Some(observed) = p.observed else { continue };
                if let Some(win) = out.get_mut(p.window) {
                    if let Some(k) = win.iter().position(|f| *f == observed) {
                        win.remove(k);
                    }
                }
            }
        }
        out
    }
}

/// The owned streaming imaging stage (device entry points).
pub struct StreamingImage {
    engine: ImagingEngine,
    tx_weight: Complex64,
    wb: WindowBuffer,
    tracker: Option<PositionTracker>,
    fixes: Vec<Vec<ImageFix>>,
    emitted: usize,
}

impl StreamingImage {
    /// Creates the stage for `cfg`, focusing with the session's nulling
    /// weight `tx_weight` on the second transmit path.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: ImageConfig, tx_weight: Complex64) -> Self {
        let engine = ImagingEngine::new(cfg);
        let wb = WindowBuffer::new(cfg.window, cfg.hop);
        let tracker = PositionTracker::new(PositionTrackerConfig::for_image(&cfg));
        Self {
            engine,
            tx_weight,
            wb,
            tracker: Some(tracker),
            fixes: Vec::new(),
            emitted: 0,
        }
    }

    /// The stage's configuration.
    pub fn cfg(&self) -> &ImageConfig {
        self.engine.cfg()
    }

    /// Imaging windows completed so far.
    pub fn n_frames(&self) -> usize {
        self.emitted
    }

    /// Feeds a batch of nulled channel samples (any length), invoking
    /// `on_frame(start_sample, fixes, image)` for each newly completed
    /// imaging window (the image slice is the engine's resident buffer,
    /// valid for the duration of the callback). Returns the number of
    /// new frames.
    pub fn push_with(
        &mut self,
        samples: &[Complex64],
        mut on_frame: impl FnMut(usize, &[ImageFix], &[f64]),
    ) -> usize {
        let engine = &mut self.engine;
        let tracker = self.tracker.as_mut().expect("stage already finished");
        let fixes = &mut self.fixes;
        let wt = self.tx_weight;
        let n = self.wb.push(samples, |start, win| {
            let frame = engine.process_window_fixes(win, wt);
            tracker.push_fixes(&frame);
            on_frame(start, &frame, engine.image());
            fixes.push(frame);
        });
        self.emitted += n;
        n
    }

    /// [`Self::push_with`] without a frame observer.
    pub fn push(&mut self, samples: &[Complex64]) -> usize {
        self.push_with(samples, |_, _, _| {})
    }

    /// Finalizes the stage into a report, draining the accumulated
    /// frames (the stage is empty afterwards and must not be pushed
    /// again).
    ///
    /// # Panics
    /// Panics if called twice.
    pub fn finish(&mut self) -> ImagingReport {
        let tracker = self.tracker.take().expect("finish() called twice");
        let grid = self.engine.cfg().grid;
        self.emitted = 0;
        ImagingReport::assemble(grid, std::mem::take(&mut self.fixes), tracker.finish())
    }
}

/// Per-session imaging state for *engine-shared* streaming: the serving
/// shard owns one [`ImagingEngine`] per configuration and every session
/// borrows it per batch, passing its own nulling weight.
#[derive(Clone, Debug)]
pub struct SharedStreamingImage {
    /// The full configuration this session expects of its engine.
    cfg: ImageConfig,
    tx_weight: Complex64,
    wb: WindowBuffer,
    emitted: usize,
}

impl SharedStreamingImage {
    /// Creates the per-session state for sessions processed by engines
    /// built from `cfg`.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: &ImageConfig, tx_weight: Complex64) -> Self {
        cfg.validate();
        Self {
            cfg: *cfg,
            tx_weight,
            wb: WindowBuffer::new(cfg.window, cfg.hop),
            emitted: 0,
        }
    }

    /// Feeds a batch through the shared `engine`, invoking
    /// `on_frame(start_sample, fixes)` per completed imaging window.
    /// Returns the number of new frames.
    ///
    /// # Panics
    /// Panics if `engine` was built for a different configuration.
    pub fn push_with(
        &mut self,
        engine: &mut ImagingEngine,
        samples: &[Complex64],
        mut on_frame: impl FnMut(usize, Vec<ImageFix>),
    ) -> usize {
        assert_eq!(
            *engine.cfg(),
            self.cfg,
            "shared engine built for a different configuration"
        );
        let wt = self.tx_weight;
        let n = self.wb.push(samples, |start, win| {
            on_frame(start, engine.process_window_fixes(win, wt));
        });
        self.emitted += n;
        n
    }

    /// Frames emitted so far.
    pub fn n_frames(&self) -> usize {
        self.emitted
    }

    /// Total samples pushed so far.
    pub fn n_seen(&self) -> usize {
        self.wb.n_seen()
    }

    /// The session's nulling weight.
    pub fn tx_weight(&self) -> Complex64 {
        self.tx_weight
    }

    /// The configuration this session expects of its shared engine.
    pub fn cfg(&self) -> &ImageConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_rf::{Point, Vec2};

    fn pacer_trace(cfg: &ImageConfig, n: usize, wt: Complex64) -> Vec<Complex64> {
        ImagingEngine::synthetic_subject_trace(
            cfg,
            n,
            Point::new(-1.8, 2.45),
            Vec2::new(1.0, 0.0),
            1.0,
            wt,
        )
    }

    #[test]
    fn stage_is_batch_shape_invariant() {
        let cfg = ImageConfig::fast_test();
        let wt = Complex64::new(-0.8, 0.4);
        let trace = pacer_trace(&cfg, cfg.window + 3 * cfg.hop, wt);

        let mut offline = StreamingImage::new(cfg, wt);
        offline.push(&trace);
        let reference = offline.finish();
        assert_eq!(reference.n_windows(), 4);

        for batch in [1usize, 17, 160, trace.len()] {
            let mut stage = StreamingImage::new(cfg, wt);
            let mut produced = 0;
            for chunk in trace.chunks(batch) {
                produced += stage.push(chunk);
            }
            assert_eq!(produced, reference.n_windows(), "batch {batch}");
            let report = stage.finish();
            assert_eq!(report, reference, "batch {batch}");
        }
    }

    #[test]
    fn frames_appear_incrementally() {
        let cfg = ImageConfig::fast_test();
        let wt = Complex64::ONE;
        let trace = pacer_trace(&cfg, cfg.window + cfg.hop, wt);
        let mut stage = StreamingImage::new(cfg, wt);
        assert_eq!(stage.push(&trace[..cfg.window - 1]), 0);
        assert_eq!(stage.n_frames(), 0);
        assert_eq!(stage.push(&trace[cfg.window - 1..cfg.window]), 1);
        assert_eq!(stage.push(&trace[cfg.window..]), 1);
        assert_eq!(stage.n_frames(), 2);
    }

    #[test]
    fn shared_stage_equals_owned_even_interleaved() {
        let cfg = ImageConfig::fast_test();
        let wts = [Complex64::new(0.9, -0.2), Complex64::new(-1.1, 0.3)];
        let n = cfg.window + 2 * cfg.hop;
        let traces = [pacer_trace(&cfg, n, wts[0]), {
            ImagingEngine::synthetic_subject_trace(
                &cfg,
                n,
                Point::new(1.9, 3.4),
                Vec2::new(-1.0, 0.0),
                0.7,
                wts[1],
            )
        }];

        let owned: Vec<Vec<Vec<ImageFix>>> = (0..2)
            .map(|s| {
                let mut stage = StreamingImage::new(cfg, wts[s]);
                stage.push(&traces[s]);
                stage.finish().fixes
            })
            .collect();

        let mut engine = ImagingEngine::new(cfg);
        let mut shared = [
            SharedStreamingImage::new(&cfg, wts[0]),
            SharedStreamingImage::new(&cfg, wts[1]),
        ];
        let mut got: [Vec<Vec<ImageFix>>; 2] = [Vec::new(), Vec::new()];
        let mut starts: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let chunk = 23;
        for lo in (0..n).step_by(chunk) {
            let hi = (lo + chunk).min(n);
            for s in 0..2 {
                shared[s].push_with(&mut engine, &traces[s][lo..hi], |start, fixes| {
                    starts[s].push(start);
                    got[s].push(fixes);
                });
            }
        }
        for s in 0..2 {
            assert_eq!(got[s], owned[s], "session {s} frames diverged");
            let expect: Vec<usize> = (0..got[s].len()).map(|k| k * cfg.hop).collect();
            assert_eq!(starts[s], expect);
            assert_eq!(shared[s].n_frames(), got[s].len());
            assert_eq!(shared[s].n_seen(), n);
        }
    }

    #[test]
    fn credible_fixes_drop_exactly_the_ghost_tracks_observations() {
        use crate::track2d::{PositionTracker, PositionTrackerConfig};

        let cfg = ImageConfig::fast_test();
        let tcfg = PositionTrackerConfig::for_image(&cfg);
        let mut tracker = PositionTracker::new(tcfg);
        let mk = |x: f64, y: f64| ImageFix {
            x_m: x,
            y_m: y,
            power_db: -30.0,
            snr_db: 12.0,
            ix: 0,
            iy: 0,
        };
        let mut fixes: Vec<Vec<ImageFix>> = Vec::new();
        let dt = tcfg.window_dt_s();
        for k in 0..10 {
            let x = -2.0 + 0.8 * k as f64 * dt;
            let mut frame = vec![mk(x, 2.0)];
            if k < 4 {
                frame.push(mk(-x, 2.0)); // mirror-side error windows
            }
            tracker.push_fixes(&frame);
            fixes.push(frame);
        }
        let report = ImagingReport::assemble(cfg.grid, fixes, tracker.finish());

        let ghosts = report.mirror_ghost_ids();
        assert_eq!(ghosts.len(), 1, "expected exactly one voted ghost");
        let credible = report.credible_fixes();
        // Raw fixes keep everything (the golden-trace view)…
        assert_eq!(report.n_fixes(), 14);
        // …while the credible view drops exactly the ghost's matched
        // observations and keeps every real fix.
        let ghost = report
            .tracks
            .iter()
            .find(|t| t.mirror_of.is_some())
            .unwrap();
        let dropped = ghost
            .history
            .iter()
            .filter(|p| p.observed.is_some())
            .count();
        let credible_total: usize = credible.iter().map(Vec::len).sum();
        assert_eq!(credible_total, report.n_fixes() - dropped);
        for (w, win) in credible.iter().enumerate() {
            assert!(
                win.iter()
                    .any(|f| (f.x_m - (-2.0 + 0.8 * w as f64 * dt)).abs() < 1e-9),
                "window {w} lost its real fix"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different configuration")]
    fn shared_stage_rejects_mismatched_engine() {
        let mut engine = ImagingEngine::new(ImageConfig::fast_test());
        let mut cfg = ImageConfig::fast_test();
        cfg.cfar.threshold_db += 1.0; // a non-windowing mismatch
        let mut shared = SharedStreamingImage::new(&cfg, Complex64::ONE);
        shared.push_with(&mut engine, &[Complex64::ZERO], |_, _| {});
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn push_after_finish_panics() {
        let cfg = ImageConfig::fast_test();
        let mut stage = StreamingImage::new(cfg, Complex64::ONE);
        stage.push(&pacer_trace(&cfg, cfg.window, Complex64::ONE));
        let _ = stage.finish();
        stage.push(&[Complex64::ZERO]);
    }
}
