//! `wivi-image` — through-wall 2-D imaging over the nulled residual.
//!
//! The paper's pipeline stops at the 1-D angle–time spectrogram
//! `A′[θ, n]`: *at what angle-of-motion* is each body. This crate
//! answers *where in the room* each body is, from exactly the same
//! nulled channel stream, by generalizing the §5.1 emulated-ISAR
//! aperture from far-field direction scoring to near-field holographic
//! backprojection (Holl & Reinhard's Wi-Fi holography and Zhong et
//! al.'s 2.4 GHz commodity through-wall imaging, both in PAPERS.md):
//!
//! * [`ImageConfig`] / [`GridSpec`] — the room grid and the aperture
//!   geometry (window, hop, assumed speed, device antenna positions).
//! * [`ImagingEngine`] — the resident backprojector: precomputed
//!   per-cell two-path round-trip steering tables, a reused image
//!   buffer, CA-CFAR detection ([`wivi_num::cfar`]) with sub-cell
//!   parabolic refinement and mirror-ghost suppression, emitting
//!   per-window [`ImageFix`]es.
//! * [`StreamingImage`] / [`SharedStreamingImage`] — batch-invariant
//!   streaming stages in the owned and the serving (engine-shared)
//!   shape.
//! * [`PositionTracker`] — gated optimal assignment plus per-axis
//!   constant-velocity Kalman filtering over the fixes, so tracks carry
//!   `(x, y)` in metres instead of bare angles.
//! * [`ImageThroughWall`] — the device extension:
//!   `WiViDevice::image{,_streaming}`, bitwise identical to each other
//!   for every batch size, and to a served `image`-mode session
//!   at every shard count.

pub mod config;
pub mod device_ext;
pub mod engine;
pub mod stage;
pub mod track2d;

pub use config::{GridSpec, ImageConfig};
pub use device_ext::{assert_device_geometry, nulling_tx_weight, ImageThroughWall};
pub use engine::{ImageFix, ImagingEngine};
pub use stage::{ImagingReport, SharedStreamingImage, StreamingImage};
pub use track2d::{
    PositionTrack, PositionTrackStatus, PositionTracker, PositionTrackerConfig,
    PositionTrackingSummary,
};
