//! Diagnostic: focusing response of a clean synthetic pacer.
use wivi_image::{ImageConfig, ImagingEngine};
use wivi_num::Complex64;
use wivi_rf::{Point, Vec2};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap())
        .collect();
    let (sx, sy, dir) = if args.len() >= 3 {
        (args[0], args[1], args[2])
    } else {
        (0.55, 2.45, 1.0)
    };
    let mut cfg = ImageConfig::fast_test();
    if let Ok(g) = std::env::var("G") {
        cfg.cfar.guard = g.parse().unwrap();
    }
    if let Ok(t) = std::env::var("T") {
        cfg.cfar.train = t.parse().unwrap();
    }
    if let Ok(d) = std::env::var("D") {
        cfg.cfar.threshold_db = d.parse().unwrap();
    }
    let mut engine = ImagingEngine::new(cfg);
    let wt = Complex64::new(-0.9, 0.3);
    let half_t = (cfg.window as f64 - 1.0) / 2.0 * cfg.sample_period_s;
    let subject = Point::new(sx, sy);
    let start = Point::new(subject.x - dir * half_t, subject.y);
    let trace = ImagingEngine::synthetic_subject_trace(
        &cfg,
        cfg.window,
        start,
        Vec2::new(dir, 0.0),
        1.0,
        wt,
    );
    let img = engine.process_window(&trace, wt).to_vec();
    let g = engine.grid();
    let mut idx: Vec<usize> = (0..img.len()).collect();
    idx.sort_by(|&a, &b| img[b].partial_cmp(&img[a]).unwrap());
    for &i in idx.iter().take(8) {
        let (ix, iy) = g.coords(i);
        let c = cfg.grid.cell_center(ix, iy);
        println!("({:+.3}, {:.2}) -> {:.3}", c.x, c.y, img[i]);
    }
    let mean = trace.iter().copied().sum::<Complex64>() / trace.len() as f64;
    let e: f64 = trace.iter().map(|h| (*h - mean).norm_sqr()).sum();
    println!("||h_c||^2 = {:.3}", e);
    let dets = wivi_num::ca_cfar_2d(&img, g, &cfg.cfar);
    println!("cfar: {} detections", dets.len());
    for d in dets.iter().take(8) {
        let c = cfg.grid.cell_center(d.ix, d.iy);
        println!("  det ({:+.3}, {:.2}) snr {:.1} dB", c.x, c.y, d.snr_db());
    }
    let fixes = engine.process_window_fixes(&trace, wt);
    for f in &fixes {
        println!(
            "  fix ({:+.3}, {:.2}) power {:.1} snr {:.1}",
            f.x_m, f.y_m, f.power_db, f.snr_db
        );
    }
    let mut sorted = img.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "image p50 {:.2} p75 {:.2} p90 {:.2} max {:.2}",
        sorted[sorted.len() / 2],
        sorted[sorted.len() * 3 / 4],
        sorted[sorted.len() * 9 / 10],
        sorted[sorted.len() - 1]
    );
}
