//! Diagnostic: end-to-end imaging of a real simulated through-wall
//! scene (full radio chain: nulling, noise, gait, wall attenuation).
use wivi_core::{WiViConfig, WiViDevice};
use wivi_image::{ImageConfig, ImageThroughWall};
use wivi_rf::{Material, Mover, Point, Scene, WaypointWalker};

fn main() {
    let n_subjects: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(11);
    let ya: f64 = std::env::var("YA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let yb: f64 = std::env::var("YB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.4);
    let duration = 6.0;

    let build = || {
        let mut s =
            Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small());
        s = s.with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-2.6, ya), Point::new(2.6, ya)],
            1.0,
        )));
        if n_subjects >= 2 {
            s = s.with_mover(Mover::human(WaypointWalker::new(
                vec![Point::new(2.4, yb), Point::new(-2.6, yb)],
                1.0,
            )));
        }
        s
    };
    let scene = build();
    let gt_scene = build();

    let mut dev = WiViDevice::new(scene, WiViConfig::fast_test(), seed);
    dev.calibrate();
    let mut cfg = ImageConfig::fast_test();
    if let Ok(d) = std::env::var("D") {
        cfg.cfar.threshold_db = d.parse().unwrap();
    }
    let t0 = std::time::Instant::now();
    let report = dev.image_with(duration, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "{} windows in {:.2}s wall ({:.0} samples/sec)",
        report.n_windows(),
        wall,
        duration * 312.5 / wall
    );

    let mut errs = Vec::new();
    let mut detected = 0usize;
    let mut total = 0usize;
    for (w, (t, fixes)) in report.times_s.iter().zip(&report.fixes).enumerate() {
        print!("w{w} t={t:.2}: ");
        for m in &gt_scene.movers {
            let p = m.position(*t);
            total += 1;
            let near = fixes
                .iter()
                .map(|f| (f.x_m - p.x).hypot(f.y_m - p.y))
                .fold(f64::INFINITY, f64::min);
            if near < 1.0 {
                detected += 1;
                errs.push(near);
            }
            print!("gt({:+.2},{:.2})e={near:.2} ", p.x, p.y);
        }
        for f in fixes {
            print!(
                "| fix({:+.2},{:.2}) {:.0}dB snr{:.0} ",
                f.x_m, f.y_m, f.power_db, f.snr_db
            );
        }
        println!();
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    println!(
        "detection {detected}/{total} = {:.2}, mean err {mean:.3} m, median {:.3} m, tracks {}",
        detected as f64 / total as f64,
        errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN),
        report.tracks.len()
    );
}
