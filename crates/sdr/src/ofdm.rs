//! OFDM physical layer.
//!
//! §7.1: "We implement standard Wi-Fi OFDM modulation in the UHD code;
//! each OFDM symbol consists of 64 subcarriers including the DC. The
//! nulling procedure is performed on a subcarrier basis. ... Since USRPs
//! cannot process signals in real-time at 20 MHz, we reduced the
//! transmitted signal bandwidth to 5 MHz."
//!
//! The channel model is frequency-flat *per subcarrier* (each path's phase
//! is evaluated at the subcarrier frequency), so transmission is computed
//! in the frequency domain; the time-domain IFFT/FFT round trip is still
//! performed because the nonlinearities — TX clipping and the receiver's
//! ADC — act on time-domain samples.

use wivi_num::fft::FftPlan;
use wivi_num::Complex64;

/// OFDM parameters.
#[derive(Clone, Copy, Debug)]
pub struct OfdmConfig {
    /// Number of subcarriers (power of two, includes DC).
    pub n_subcarriers: usize,
    /// Occupied bandwidth in Hz.
    pub bandwidth_hz: f64,
    /// Carrier (center) frequency in Hz.
    pub carrier_hz: f64,
}

impl OfdmConfig {
    /// The paper's PHY: 64 subcarriers over 5 MHz at 2.4 GHz.
    pub fn wivi_default() -> Self {
        Self {
            n_subcarriers: 64,
            bandwidth_hz: 5e6,
            carrier_hz: wivi_rf::CARRIER_HZ,
        }
    }

    /// A reduced 16-subcarrier configuration for fast unit tests. Same
    /// bandwidth, coarser frequency sampling.
    pub fn small() -> Self {
        Self {
            n_subcarriers: 16,
            bandwidth_hz: 5e6,
            carrier_hz: wivi_rf::CARRIER_HZ,
        }
    }

    /// Subcarrier spacing in Hz.
    pub fn subcarrier_spacing(&self) -> f64 {
        self.bandwidth_hz / self.n_subcarriers as f64
    }

    /// Absolute RF frequency of subcarrier `k` (`k = 0 .. n_subcarriers`),
    /// with the DC subcarrier at index `n_subcarriers / 2`.
    ///
    /// # Panics
    /// Panics if `k >= n_subcarriers`.
    pub fn subcarrier_freq(&self, k: usize) -> f64 {
        assert!(k < self.n_subcarriers, "subcarrier index out of range");
        let offset = k as f64 - (self.n_subcarriers / 2) as f64;
        self.carrier_hz + offset * self.subcarrier_spacing()
    }

    /// OFDM symbol duration (no cyclic prefix), seconds.
    pub fn symbol_duration(&self) -> f64 {
        self.n_subcarriers as f64 / self.bandwidth_hz
    }

    /// The known sounding preamble: one unit-magnitude symbol per
    /// subcarrier with Newman (quadratic, Zadoff–Chu-like) phases
    /// `φ_k = π·k²/N`. Fixed (not keyed) — both ends of a channel sounder
    /// share it, like an 802.11 LTF. The quadratic phase profile keeps the
    /// time-domain peak-to-average ratio near 1.3×, which is what lets the
    /// +12 dB power boost of Algorithm 1 stay inside the PA's linear range.
    pub fn preamble(&self) -> Vec<Complex64> {
        let n = self.n_subcarriers as f64;
        (0..self.n_subcarriers)
            .map(|k| Complex64::cis(std::f64::consts::PI * (k * k) as f64 / n))
            .collect()
    }
}

/// Frequency-domain symbols → time-domain waveform (unit-power preserving:
/// uses the unitary-style scaling `x = IFFT(X)·√N` so RMS(x) = RMS(X)).
pub fn modulate(symbols: &[Complex64]) -> Vec<Complex64> {
    let plan = FftPlan::new(symbols.len());
    let mut t = symbols.to_vec();
    modulate_in_place(&plan, &mut t);
    t
}

/// Time-domain waveform → frequency-domain symbols (inverse of
/// [`modulate`]).
pub fn demodulate(waveform: &[Complex64]) -> Vec<Complex64> {
    let plan = FftPlan::new(waveform.len());
    let mut f = waveform.to_vec();
    demodulate_in_place(&plan, &mut f);
    f
}

/// In-place, allocation-free [`modulate`] against a precomputed plan — the
/// per-channel-sample path of the streaming front-end (two transforms per
/// observed sample at 312.5 Hz).
///
/// # Panics
/// Panics if `buf.len()` differs from the planned length.
pub fn modulate_in_place(plan: &FftPlan, buf: &mut [Complex64]) {
    let n = buf.len() as f64;
    plan.inverse(buf);
    for z in buf.iter_mut() {
        *z = z.scale(n.sqrt());
    }
}

/// In-place, allocation-free [`demodulate`] against a precomputed plan.
///
/// # Panics
/// Panics if `buf.len()` differs from the planned length.
pub fn demodulate_in_place(plan: &FftPlan, buf: &mut [Complex64]) {
    let n = buf.len() as f64;
    plan.forward(buf);
    for z in buf.iter_mut() {
        *z = z.scale(1.0 / n.sqrt());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = OfdmConfig::wivi_default();
        assert_eq!(c.n_subcarriers, 64);
        assert_eq!(c.bandwidth_hz, 5e6);
        assert!((c.subcarrier_spacing() - 78_125.0).abs() < 1e-9);
        assert!((c.symbol_duration() - 12.8e-6).abs() < 1e-12);
    }

    #[test]
    fn dc_subcarrier_is_carrier() {
        let c = OfdmConfig::wivi_default();
        assert_eq!(c.subcarrier_freq(32), c.carrier_hz);
        assert!(c.subcarrier_freq(0) < c.carrier_hz);
        assert!(c.subcarrier_freq(63) > c.carrier_hz);
    }

    #[test]
    fn band_edges_span_bandwidth() {
        let c = OfdmConfig::wivi_default();
        let span = c.subcarrier_freq(63) - c.subcarrier_freq(0);
        assert!((span - (c.bandwidth_hz - c.subcarrier_spacing())).abs() < 1e-6);
    }

    #[test]
    fn preamble_is_unit_magnitude_and_deterministic() {
        let c = OfdmConfig::wivi_default();
        let p1 = c.preamble();
        let p2 = c.preamble();
        assert_eq!(p1.len(), 64);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(*a, *b);
            assert!((a.abs() - 1.0).abs() < 1e-12);
        }
        // Not all identical (it must exercise the band).
        assert!(p1.iter().any(|z| (*z - p1[0]).abs() > 1e-9));
    }

    #[test]
    fn modulate_demodulate_round_trip() {
        let c = OfdmConfig::wivi_default();
        let x = c.preamble();
        let y = demodulate(&modulate(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn modulation_preserves_power() {
        let c = OfdmConfig::wivi_default();
        let x = c.preamble();
        let t = modulate(&x);
        let pf: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let pt: f64 = t.iter().map(|z| z.norm_sqr()).sum();
        assert!((pf - pt).abs() < 1e-9 * pf);
    }

    #[test]
    fn in_place_matches_owned_bitwise() {
        let c = OfdmConfig::wivi_default();
        let plan = FftPlan::new(c.n_subcarriers);
        let x = c.preamble();

        let mut t = x.clone();
        modulate_in_place(&plan, &mut t);
        assert_eq!(t, modulate(&x));

        let mut f = t.clone();
        demodulate_in_place(&plan, &mut f);
        assert_eq!(f, demodulate(&t));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subcarrier_index_checked() {
        let _ = OfdmConfig::wivi_default().subcarrier_freq(64);
    }

    #[test]
    fn preamble_papr_is_low() {
        // The +12 dB boost must fit inside the PA linear range: peak
        // amplitude of the unit-RMS waveform must stay under ~1.5.
        for cfg in [OfdmConfig::wivi_default(), OfdmConfig::small()] {
            let t = modulate(&cfg.preamble());
            let rms = (t.iter().map(|z| z.norm_sqr()).sum::<f64>() / t.len() as f64).sqrt();
            let peak = t.iter().map(|z| z.abs()).fold(0.0, f64::max);
            assert!(
                peak / rms < 1.5,
                "PAPR {:.2} too high at N={}",
                peak / rms,
                cfg.n_subcarriers
            );
        }
    }
}
