//! Software-radio front-end: the USRP N210 stand-in.
//!
//! The paper's prototype is three USRP N210s sharing a clock — two
//! transmitters and one receiver acting as a single MIMO device, with
//! Wi-Fi-style OFDM implemented in the UHD driver (§7.1). This crate
//! simulates that radio against a `wivi-rf` [`Scene`](wivi_rf::Scene):
//!
//! * [`ofdm`] — 64-subcarrier OFDM over a 5 MHz channel (the paper reduced
//!   bandwidth from 20 MHz to 5 MHz so nulling could run in real time),
//!   with the IFFT/FFT symbol path and a known sounding preamble.
//! * [`adc`] — the receiver's saturating, quantizing ADC and the transmit
//!   chain's linear-range clipping. These two nonlinearities are *why*
//!   Wi-Vi needs analog-domain nulling: the flash saturates the ADC and
//!   buries through-wall reflections below the quantization floor (Ch. 1).
//! * [`frontend`] — the staged MIMO front-end: sound each TX antenna,
//!   install a per-subcarrier precoder, observe the residual channel, and
//!   manage TX power / RX gain the way Algorithm 1 requires.
//!
//! Everything above this crate (nulling, ISAR, MUSIC, gestures) consumes
//! only [`frontend::Observation`]s, so the seam to real hardware is this
//! crate's public API.

pub mod adc;
pub mod frontend;
pub mod ofdm;

pub use adc::{Adc, QuantizeOutcome};
pub use frontend::{MimoFrontend, Observation, ObservationStream, RadioConfig};
pub use ofdm::OfdmConfig;
