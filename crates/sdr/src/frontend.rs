//! The staged MIMO front-end (2 TX, 1 RX) over a simulated scene.
//!
//! This is the seam between the Wi-Vi algorithms and the "hardware": the
//! nulling/tracking code in `wivi-core` drives exactly the operations the
//! real UHD implementation performs —
//!
//! 1. [`MimoFrontend::sound`] — transmit the known preamble on *one*
//!    antenna and estimate the per-subcarrier channel (Algorithm 1's
//!    channel-estimation steps);
//! 2. [`MimoFrontend::set_precoder`] — install the per-subcarrier weight
//!    `p = −ĥ₁/ĥ₂` on the second antenna;
//! 3. [`MimoFrontend::observe`] — transmit on both antennas concurrently
//!    and measure the residual channel `h_res = h₁ + p·h₂` (+ movers);
//! 4. TX power boost / RX gain boost, subject to the PA's linear range and
//!    the ADC's dynamic range.
//!
//! Scene time advances with every operation, so humans keep moving while
//! the radio works — which is precisely why iterative nulling observes a
//! drifting residual, and why the emulated ISAR array sees successive
//! spatial positions.

use wivi_num::fft::FftPlan;
use wivi_num::rng::{complex_gaussian, Rng64};
use wivi_num::Complex64;
use wivi_rf::channel::{gain_from_paths, Path};
use wivi_rf::{Scene, SceneHandle};

use crate::adc::{clip_tx, Adc, QuantizeOutcome};
use crate::ofdm::{demodulate_in_place, modulate_in_place, OfdmConfig};

/// Radio parameters for the simulated front-end.
#[derive(Clone, Copy, Debug)]
pub struct RadioConfig {
    /// OFDM PHY parameters.
    pub ofdm: OfdmConfig,
    /// The receive ADC.
    pub adc: Adc,
    /// Thermal noise sigma at the antenna, in channel-gain units per
    /// subcarrier (`CN(0, σ²)`).
    pub noise_sigma: f64,
    /// Fast (per-measurement, iid) phase jitter of each TX chain,
    /// radians.
    pub phase_noise_std: f64,
    /// Slow per-TX-chain LO phase drift: a Wiener process with this
    /// standard deviation per √second, independent per transmit chain.
    /// Three USRPs share an external clock, but each analog chain's PLL
    /// still wanders; because nulling balances one chain *against* the
    /// other, it is the **differential** drift that slowly rotates the
    /// static channel away from the installed null. This floors the
    /// operational nulling depth over a trace in the ~40 dB regime of
    /// Fig. 7-7 and leaves the residual DC line visible in every
    /// A′[θ, n] figure ("minuscule errors in channel estimates during
    /// the nulling phase would still be registered as a residual DC",
    /// §5.1 fn. 4).
    pub phase_drift_std: f64,
    /// Nominal transmit amplitude per antenna (1.0 = the sounding level).
    pub tx_amplitude: f64,
    /// PA linear range: time-domain samples above this amplitude clip
    /// (§7.5: USRPs are linear to ≈ 20 mW; the 12 dB boost of Algorithm 1
    /// is sized to stay inside this).
    pub tx_linear_limit: f64,
    /// Rate at which `observe()` samples the channel for ISAR traces, Hz.
    /// The paper's emulated array uses 100 samples per 0.32 s ⇒ 312.5 Hz.
    pub channel_rate_hz: f64,
    /// Time consumed by one sounding exchange, seconds ("each iteration
    /// estimates the channel over few milliseconds", §4.1).
    pub sounding_dwell_s: f64,
}

impl RadioConfig {
    /// The paper's configuration: 64-subcarrier 5 MHz OFDM, 14-bit ADC,
    /// 312.5 Hz channel sampling.
    pub fn wivi_default() -> Self {
        Self {
            ofdm: OfdmConfig::wivi_default(),
            adc: Adc::usrp_n210(),
            noise_sigma: 6.0e-5,
            phase_noise_std: 0.001,
            phase_drift_std: 4.5e-3,
            tx_amplitude: 1.0,
            tx_linear_limit: 8.0,
            channel_rate_hz: 312.5,
            sounding_dwell_s: 2e-3,
        }
    }

    /// Reduced configuration (16 subcarriers) for fast unit tests.
    pub fn fast_test() -> Self {
        Self {
            ofdm: OfdmConfig::small(),
            ..Self::wivi_default()
        }
    }
}

/// One measurement: per-subcarrier channel estimates plus converter
/// telemetry.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Per-subcarrier channel estimate `ĥ[k]`, normalized to channel-gain
    /// units (independent of the currently configured TX power / RX gain).
    pub h: Vec<Complex64>,
    /// ADC outcome for the underlying time-domain block.
    pub outcome: QuantizeOutcome,
    /// Scene time at which the measurement was taken, seconds.
    pub time: f64,
}

impl Observation {
    /// Combines subcarriers into a single complex channel sample by plain
    /// averaging (§7.1: "the channel measurements across the different
    /// subcarriers are combined to improve the SNR"). Averaging is ~18 dB
    /// of noise gain at 64 subcarriers at the cost of a small coherence
    /// loss from the delay spread across the 5 MHz band.
    pub fn combined(&self) -> Complex64 {
        self.h.iter().copied().sum::<Complex64>() / self.h.len() as f64
    }

    /// `true` if the ADC clipped during this measurement.
    pub fn saturated(&self) -> bool {
        self.outcome.saturated()
    }

    /// Mean per-subcarrier channel power, `mean |ĥ[k]|²`.
    pub fn mean_power(&self) -> f64 {
        self.h.iter().map(|z| z.norm_sqr()).sum::<f64>() / self.h.len() as f64
    }
}

/// Which antennas drive one transmission block (see
/// [`MimoFrontend::transmit`]).
#[derive(Clone, Copy, Debug)]
enum TxMode {
    /// Preamble on one antenna only (channel sounding).
    Sound(usize),
    /// Both antennas concurrently; antenna 2 applies the precoder.
    Observe,
}

/// The simulated 3-antenna MIMO radio bound to a scene.
///
/// The scene is held through a [`SceneHandle`]: radios observing the
/// same room (fleet-style serving) share one immutable scene rather
/// than each owning a copy, and [`Self::scene_mut`] is copy-on-write —
/// mutating a shared scene clones a private copy first, so no radio can
/// perturb another's world.
pub struct MimoFrontend {
    scene: SceneHandle,
    cfg: RadioConfig,
    rng: Rng64,
    /// Linear RX amplitude gain ahead of the ADC.
    rx_gain: f64,
    /// Linear TX amplitude multiplier on top of `cfg.tx_amplitude`.
    tx_boost: f64,
    /// Per-subcarrier precoding weight for TX antenna 2 (`None` ⇒ no
    /// concurrent transmission configured yet).
    precoder: Option<Vec<Complex64>>,
    now: f64,
    /// Accumulated per-TX-chain LO phase drift (Wiener processes), radians.
    phase_walk: [f64; 2],
    /// FFT plan for the OFDM symbol length (shared by TX and RX chains).
    plan: FftPlan,
    /// The sounding preamble, computed once.
    preamble: Vec<Complex64>,
    /// Scratch: one OFDM block, reused by the per-antenna PA round trip and
    /// the receiver chain.
    scratch_block: Vec<Complex64>,
    /// Scratch: the superposed received spectrum.
    scratch_rx: Vec<Complex64>,
    /// Scratch: traced propagation paths.
    scratch_paths: Vec<Path>,
}

impl MimoFrontend {
    /// Binds a radio to `scene` with deterministic noise from `seed`.
    /// Accepts an owned [`Scene`] or a shared [`SceneHandle`] — sharing
    /// changes nothing about the radio's behavior, only who owns the
    /// room description.
    pub fn new(scene: impl Into<SceneHandle>, cfg: RadioConfig, seed: u64) -> Self {
        assert!(cfg.noise_sigma >= 0.0);
        assert!(cfg.tx_amplitude > 0.0 && cfg.tx_linear_limit > 0.0);
        assert!(cfg.channel_rate_hz > 0.0 && cfg.sounding_dwell_s > 0.0);
        let k = cfg.ofdm.n_subcarriers;
        Self {
            scene: scene.into(),
            cfg,
            rng: Rng64::seed_from_u64(seed),
            rx_gain: 1.0,
            tx_boost: 1.0,
            precoder: None,
            now: 0.0,
            phase_walk: [0.0; 2],
            plan: FftPlan::new(k),
            preamble: cfg.ofdm.preamble(),
            scratch_block: vec![Complex64::ZERO; k],
            scratch_rx: vec![Complex64::ZERO; k],
            scratch_paths: Vec::new(),
        }
    }

    /// Current scene time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Radio configuration.
    pub fn cfg(&self) -> &RadioConfig {
        &self.cfg
    }

    /// The bound scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Mutable access to the scene (e.g. to add movers between stages).
    /// Copy-on-write: if other radios share this scene through the same
    /// [`SceneHandle`], a private copy is cloned first and only this
    /// radio sees the change.
    pub fn scene_mut(&mut self) -> &mut Scene {
        self.scene.make_mut()
    }

    /// The scene handle, cheap to clone into further radios or session
    /// specs observing the same room.
    pub fn scene_handle(&self) -> &SceneHandle {
        &self.scene
    }

    /// Current RX amplitude gain.
    pub fn rx_gain(&self) -> f64 {
        self.rx_gain
    }

    /// Sets the RX amplitude gain.
    ///
    /// # Panics
    /// Panics if `gain <= 0`.
    pub fn set_rx_gain(&mut self, gain: f64) {
        assert!(gain > 0.0, "RX gain must be positive");
        self.rx_gain = gain;
    }

    /// Multiplies the RX gain by `db` decibels (power).
    pub fn boost_rx_gain_db(&mut self, db: f64) {
        self.rx_gain *= 10f64.powf(db / 20.0);
    }

    /// Current TX boost in dB over nominal.
    pub fn tx_boost_db(&self) -> f64 {
        20.0 * self.tx_boost.log10()
    }

    /// Sets the TX boost (dB over nominal). Algorithm 1's power-boosting
    /// step uses +12 dB.
    pub fn set_tx_boost_db(&mut self, db: f64) {
        self.tx_boost = 10f64.powf(db / 20.0);
    }

    /// Installs the per-subcarrier precoder for TX antenna 2.
    ///
    /// # Panics
    /// Panics if the length does not match the subcarrier count.
    pub fn set_precoder(&mut self, p: Vec<Complex64>) {
        assert_eq!(
            p.len(),
            self.cfg.ofdm.n_subcarriers,
            "precoder must have one weight per subcarrier"
        );
        self.precoder = Some(p);
    }

    /// Currently installed precoder, if any.
    pub fn precoder(&self) -> Option<&[Complex64]> {
        self.precoder.as_deref()
    }

    /// Removes the precoder (single-antenna operation).
    pub fn clear_precoder(&mut self) {
        self.precoder = None;
    }

    /// Advances scene time without transmitting.
    pub fn advance(&mut self, dt: f64) {
        self.advance_clock(dt);
    }

    /// Advances time and walks each TX chain's LO phase accordingly.
    fn advance_clock(&mut self, dt: f64) {
        assert!(dt >= 0.0);
        self.now += dt;
        if self.cfg.phase_drift_std > 0.0 && dt > 0.0 {
            for w in &mut self.phase_walk {
                *w +=
                    wivi_num::rng::normal(&mut self.rng, 0.0, self.cfg.phase_drift_std * dt.sqrt());
            }
        }
    }

    /// Transmits the sounding preamble on TX antenna `tx_idx` *only* and
    /// returns the measured per-subcarrier channel. Advances time by the
    /// sounding dwell.
    pub fn sound(&mut self, tx_idx: usize) -> Observation {
        assert!(tx_idx < 2, "Wi-Vi has exactly two transmit antennas");
        let obs = self.transmit(TxMode::Sound(tx_idx));
        self.advance_clock(self.cfg.sounding_dwell_s);
        obs
    }

    /// Transmits concurrently on both antennas — antenna 1 sends the
    /// preamble `x`, antenna 2 sends `p·x` — and measures the *residual*
    /// channel `h_res = h₁ + p·h₂`. Advances time by one channel-sample
    /// period.
    ///
    /// # Panics
    /// Panics if no precoder is installed.
    pub fn observe(&mut self) -> Observation {
        assert!(
            self.precoder.is_some(),
            "observe() requires a precoder; call set_precoder first"
        );
        let obs = self.transmit(TxMode::Observe);
        self.advance_clock(1.0 / self.cfg.channel_rate_hz);
        obs
    }

    /// Records a trace of `n` residual-channel samples at the channel
    /// rate, combining subcarriers per sample.
    pub fn record_trace(&mut self, n: usize) -> Vec<Complex64> {
        let mut out = Vec::with_capacity(n);
        self.record_trace_into(n, &mut out);
        out
    }

    /// Appends `n` subcarrier-combined residual-channel samples to `out`
    /// without allocating beyond the output's own growth — the batch
    /// streaming path calls this once per fixed-size batch into a reused
    /// buffer.
    pub fn record_trace_into(&mut self, n: usize, out: &mut Vec<Complex64>) {
        out.reserve(n);
        for _ in 0..n {
            let s = self.observe().combined();
            out.push(s);
        }
    }

    /// Streams `total` residual-channel observations in batches of
    /// `batch_len` — the front-end's real-time delivery shape. The stream
    /// borrows the front-end mutably, so the radio cannot be reconfigured
    /// mid-stream; scene time advances sample-by-sample exactly as in
    /// [`Self::observe`], and a fully drained stream leaves the front-end
    /// in the same state as `total` direct `observe()` calls.
    ///
    /// # Panics
    /// Panics if `batch_len == 0` or no precoder is installed.
    pub fn observe_stream(&mut self, total: usize, batch_len: usize) -> ObservationStream<'_> {
        assert!(batch_len > 0, "batch length must be positive");
        assert!(
            self.precoder.is_some(),
            "observe() requires a precoder; call set_precoder first"
        );
        ObservationStream {
            fe: self,
            remaining: total,
            batch_len,
        }
    }

    /// Full TX→RX simulation of one OFDM block.
    fn transmit(&mut self, mode: TxMode) -> Observation {
        let k = self.cfg.ofdm.n_subcarriers;
        let tx_scale = self.cfg.tx_amplitude * self.tx_boost;

        // Superpose the active antennas' contributions per subcarrier.
        self.scratch_rx.fill(Complex64::ZERO);
        for ant in 0..2 {
            match mode {
                TxMode::Sound(idx) if ant != idx => continue,
                _ => {}
            }
            // Per-chain LO phase: slow drift plus fast jitter. This is
            // what ultimately limits how long an installed null survives.
            let lo_phase = Complex64::cis(
                self.phase_walk[ant]
                    + wivi_num::rng::normal(&mut self.rng, 0.0, self.cfg.phase_noise_std),
            );
            for i in 0..k {
                let w = match (mode, ant) {
                    // Antenna 2 applies the installed precoding weight when
                    // both antennas transmit.
                    (TxMode::Observe, 1) => self.precoder.as_ref().unwrap()[i],
                    _ => Complex64::ONE,
                };
                self.scratch_block[i] = self.preamble[i] * w * lo_phase * tx_scale;
            }
            // PA: modulate, clip to the linear range, re-analyze. Under
            // normal operation nothing clips and this is a no-op round
            // trip; over-boosted transmissions distort here.
            modulate_in_place(&self.plan, &mut self.scratch_block);
            clip_tx(&mut self.scratch_block, self.cfg.tx_linear_limit);
            demodulate_in_place(&self.plan, &mut self.scratch_block);

            self.scene
                .trace_paths_into(ant, self.now, &mut self.scratch_paths);
            for i in 0..k {
                let h = gain_from_paths(&self.scratch_paths, self.cfg.ofdm.subcarrier_freq(i));
                self.scratch_rx[i] += h * self.scratch_block[i];
            }
        }

        // Receiver: time-domain antenna noise, analog gain, ADC.
        self.scratch_block.copy_from_slice(&self.scratch_rx);
        modulate_in_place(&self.plan, &mut self.scratch_block);
        for z in self.scratch_block.iter_mut() {
            *z = (*z + complex_gaussian(&mut self.rng, self.cfg.noise_sigma)).scale(self.rx_gain);
        }
        let outcome = self.cfg.adc.quantize_block(&mut self.scratch_block);
        demodulate_in_place(&self.plan, &mut self.scratch_block);

        // Normalize back to channel units.
        let norm = tx_scale * self.rx_gain;
        let h = (0..k)
            .map(|i| self.scratch_block[i] / self.preamble[i] / norm)
            .collect();
        Observation {
            h,
            outcome,
            time: self.now,
        }
    }
}

/// A borrowing iterator over fixed-size [`Observation`] batches — the
/// stand-in for the frame-chunked delivery a real UHD receive stream
/// provides. Produced by [`MimoFrontend::observe_stream`].
pub struct ObservationStream<'a> {
    fe: &'a mut MimoFrontend,
    remaining: usize,
    batch_len: usize,
}

impl ObservationStream<'_> {
    /// Observations not yet emitted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The configured (maximum) batch size.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Fills `out` (cleared first) with the next batch, returning how many
    /// observations were produced — `0` once the stream is exhausted. The
    /// allocation-conscious alternative to the `Iterator` impl: one output
    /// buffer serves the whole stream.
    pub fn next_batch_into(&mut self, out: &mut Vec<Observation>) -> usize {
        out.clear();
        let n = self.remaining.min(self.batch_len);
        out.reserve(n);
        for _ in 0..n {
            out.push(self.fe.observe());
        }
        self.remaining -= n;
        n
    }
}

impl Iterator for ObservationStream<'_> {
    type Item = Vec<Observation>;

    fn next(&mut self) -> Option<Vec<Observation>> {
        if self.remaining == 0 {
            return None;
        }
        let mut batch = Vec::new();
        self.next_batch_into(&mut batch);
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.div_ceil(self.batch_len);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_rf::{Material, Mover, Point, Scene, Stationary, WaypointWalker};

    fn quiet_cfg() -> RadioConfig {
        RadioConfig {
            noise_sigma: 0.0,
            phase_noise_std: 0.0,
            phase_drift_std: 0.0,
            ..RadioConfig::fast_test()
        }
    }

    fn test_scene() -> Scene {
        Scene::new(Material::HollowWall6In).with_office_clutter(Scene::conference_room_small())
    }

    #[test]
    fn sounding_recovers_true_channel_without_noise() {
        let scene = test_scene();
        let cfg = quiet_cfg();
        // High RX gain so quantization is negligible relative to the flash.
        let mut fe = MimoFrontend::new(scene, cfg, 1);
        fe.set_rx_gain(30.0);
        let obs = fe.sound(0);
        assert!(!obs.saturated());
        for kidx in 0..cfg.ofdm.n_subcarriers {
            let truth = fe
                .scene()
                .channel_gain(0, cfg.ofdm.subcarrier_freq(kidx), obs.time);
            let err = (obs.h[kidx] - truth).abs();
            assert!(
                err < 1e-4 * truth.abs().max(1e-9) + 1e-5,
                "subcarrier {kidx}: est {} vs truth {}",
                obs.h[kidx],
                truth
            );
        }
    }

    #[test]
    fn channels_differ_between_tx_antennas() {
        let mut fe = MimoFrontend::new(test_scene(), quiet_cfg(), 2);
        fe.set_rx_gain(30.0);
        let h1 = fe.sound(0).combined();
        let h2 = fe.sound(1).combined();
        assert!((h1 - h2).abs() > 1e-6);
    }

    #[test]
    fn manual_nulling_cancels_static_channel() {
        let mut fe = MimoFrontend::new(test_scene(), quiet_cfg(), 3);
        fe.set_rx_gain(30.0);
        let h1 = fe.sound(0);
        let h2 = fe.sound(1);
        let p: Vec<Complex64> = h1.h.iter().zip(&h2.h).map(|(a, b)| -(*a) / *b).collect();
        let before = h1.mean_power();
        fe.set_precoder(p);
        let after = fe.observe().mean_power();
        let reduction_db = 10.0 * (before / after).log10();
        assert!(
            reduction_db > 40.0,
            "noise-free nulling only achieved {reduction_db:.1} dB"
        );
    }

    #[test]
    fn noise_limits_nulling_depth() {
        let cfg = RadioConfig::fast_test();
        let mut fe = MimoFrontend::new(test_scene(), cfg, 4);
        fe.set_rx_gain(30.0);
        let h1 = fe.sound(0);
        let h2 = fe.sound(1);
        let p: Vec<Complex64> = h1.h.iter().zip(&h2.h).map(|(a, b)| -(*a) / *b).collect();
        fe.set_precoder(p);
        let before = h1.mean_power();
        let after = fe.observe().mean_power();
        let reduction_db = 10.0 * (before / after).log10();
        // Finite (estimate-error-limited), in the paper's observed range.
        assert!(
            (20.0..70.0).contains(&reduction_db),
            "reduction {reduction_db:.1} dB"
        );
    }

    #[test]
    fn excessive_rx_gain_saturates_adc() {
        let mut fe = MimoFrontend::new(test_scene(), quiet_cfg(), 5);
        fe.set_rx_gain(1e4);
        let obs = fe.sound(0);
        assert!(obs.saturated());
        assert!(obs.outcome.peak_relative > 1.0);
    }

    #[test]
    fn quantization_hides_weak_movers_at_low_gain() {
        // The flash-effect mechanism end-to-end: a human's reflection is
        // below the ADC step at unit gain but visible at high gain.
        let scene = Scene::new(Material::HollowWall6In)
            .with_mover(Mover::human(Stationary(Point::new(1.0, 4.0))));
        let cfg = quiet_cfg();
        let fe = MimoFrontend::new(scene, cfg, 6);

        // Human-only channel magnitude (ground truth, carrier):
        let human_amp: f64 = fe
            .scene()
            .trace_mover_paths(0, 0.0)
            .iter()
            .map(|p| p.amplitude)
            .sum();
        assert!(
            human_amp < cfg.adc.step() / 2.0,
            "test premise: human ({human_amp:.2e}) below LSB ({:.2e})",
            cfg.adc.step()
        );
        // At unit gain the time-domain samples of the human alone would
        // vanish; at 40 dB gain they are comfortably representable.
        assert!(human_amp * 100.0 > cfg.adc.step());
    }

    #[test]
    fn observe_advances_time_at_channel_rate() {
        let cfg = quiet_cfg();
        let mut fe = MimoFrontend::new(test_scene(), cfg, 7);
        fe.set_precoder(vec![Complex64::ZERO; cfg.ofdm.n_subcarriers]);
        let t0 = fe.now();
        let _ = fe.observe();
        let _ = fe.observe();
        assert!((fe.now() - t0 - 2.0 / cfg.channel_rate_hz).abs() < 1e-12);
    }

    #[test]
    fn trace_sees_moving_human_after_nulling() {
        let scene = test_scene().with_mover(Mover::human(WaypointWalker::new(
            vec![Point::new(-2.0, 3.0), Point::new(2.0, 3.0)],
            1.0,
        )));
        let cfg = RadioConfig::fast_test();
        let mut fe = MimoFrontend::new(scene, cfg, 8);
        fe.set_rx_gain(30.0);
        let h1 = fe.sound(0);
        let h2 = fe.sound(1);
        let p: Vec<Complex64> = h1.h.iter().zip(&h2.h).map(|(a, b)| -(*a) / *b).collect();
        fe.set_precoder(p);
        let trace = fe.record_trace(64);
        // The residual channel must vary over time (the human's phase
        // rotates) by more than the noise floor.
        let mean: Complex64 = trace.iter().copied().sum::<Complex64>() / trace.len() as f64;
        let var: f64 =
            trace.iter().map(|z| (*z - mean).norm_sqr()).sum::<f64>() / trace.len() as f64;
        assert!(
            var.sqrt() > cfg.noise_sigma / (cfg.ofdm.n_subcarriers as f64).sqrt(),
            "trace variation {} below combined noise",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk = || {
            let mut fe = MimoFrontend::new(test_scene(), RadioConfig::fast_test(), 99);
            fe.set_rx_gain(30.0);
            fe.sound(0).combined()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn tx_boost_changes_effective_snr_not_channel() {
        let cfg = RadioConfig::fast_test();
        let mut fe = MimoFrontend::new(test_scene(), cfg, 10);
        fe.set_rx_gain(30.0);
        let h_lo = fe.sound(0).combined();
        fe.set_tx_boost_db(12.0);
        let h_hi = fe.sound(0).combined();
        // Same channel (normalized), just less noisy.
        assert!(
            (h_lo - h_hi).abs() < 0.05 * h_lo.abs(),
            "boost changed normalized channel: {h_lo} vs {h_hi}"
        );
    }

    #[test]
    fn overdriven_pa_clips_and_distorts() {
        let cfg = quiet_cfg();
        let mut fe = MimoFrontend::new(test_scene(), cfg, 11);
        fe.set_rx_gain(30.0);
        let clean = fe.sound(0);
        fe.set_tx_boost_db(40.0); // way past the linear range
        let dirty = fe.sound(0);
        // Normalized estimates should now deviate due to clipping.
        let err: f64 = clean
            .h
            .iter()
            .zip(&dirty.h)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / clean.mean_power()
            / cfg.ofdm.n_subcarriers as f64;
        assert!(err > 1e-4, "clipping caused no distortion (err {err:.2e})");
    }

    #[test]
    #[should_panic(expected = "requires a precoder")]
    fn observe_without_precoder_panics() {
        let mut fe = MimoFrontend::new(test_scene(), quiet_cfg(), 12);
        let _ = fe.observe();
    }

    /// Builds a nulled front-end ready for observation.
    fn nulled_frontend(seed: u64) -> MimoFrontend {
        let mut fe = MimoFrontend::new(test_scene(), RadioConfig::fast_test(), seed);
        fe.set_rx_gain(30.0);
        let h1 = fe.sound(0);
        let h2 = fe.sound(1);
        let p: Vec<Complex64> = h1.h.iter().zip(&h2.h).map(|(a, b)| -(*a) / *b).collect();
        fe.set_precoder(p);
        fe
    }

    #[test]
    fn batched_stream_matches_direct_observation_exactly() {
        // The streaming contract: draining batches produces the identical
        // observation sequence (times, channels, telemetry) as one-shot
        // recording, regardless of the batch size.
        let total = 50;
        let mut fe = nulled_frontend(21);
        let direct: Vec<Observation> = (0..total).map(|_| fe.observe()).collect();

        for batch_len in [1usize, 7, 16, 64] {
            let mut fe2 = nulled_frontend(21);
            let mut streamed: Vec<Observation> = Vec::new();
            for batch in fe2.observe_stream(total, batch_len) {
                assert!(batch.len() <= batch_len);
                streamed.extend(batch);
            }
            assert_eq!(streamed.len(), total);
            for (a, b) in direct.iter().zip(&streamed) {
                assert_eq!(a.time, b.time, "batch_len {batch_len}");
                assert_eq!(a.h, b.h, "batch_len {batch_len}");
            }
            assert_eq!(fe.now(), fe2.now());
        }
    }

    #[test]
    fn stream_next_batch_into_reuses_one_buffer() {
        let mut fe = nulled_frontend(22);
        let mut stream = fe.observe_stream(10, 4);
        assert_eq!(stream.remaining(), 10);
        assert_eq!(stream.batch_len(), 4);
        let mut buf = Vec::new();
        let mut sizes = Vec::new();
        loop {
            let n = stream.next_batch_into(&mut buf);
            if n == 0 {
                break;
            }
            sizes.push(n);
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn record_trace_into_appends_to_reused_buffer() {
        let mut fe = nulled_frontend(23);
        let expect = fe.record_trace(12);
        let mut fe2 = nulled_frontend(23);
        let mut buf = Vec::new();
        fe2.record_trace_into(8, &mut buf);
        fe2.record_trace_into(4, &mut buf);
        assert_eq!(buf, expect);
    }

    #[test]
    #[should_panic(expected = "batch length must be positive")]
    fn stream_rejects_zero_batch() {
        let mut fe = nulled_frontend(24);
        let _ = fe.observe_stream(10, 0);
    }
}
