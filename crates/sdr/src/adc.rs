//! Converter nonlinearities: the receive ADC and transmit clipping.
//!
//! These two blocks are the physical reason Wi-Vi exists:
//!
//! * The **ADC** has finite dynamic range. "Reflections off the wall
//!   overwhelm the receiver's analog to digital converter (ADC),
//!   preventing it from registering the minute variations due to
//!   reflections from objects behind the wall" (Ch. 1). We model an
//!   N-bit uniform mid-tread quantizer with hard saturation at ±full
//!   scale, applied independently to I and Q.
//! * The **TX chain** is linear only up to a point. "The linear transmit
//!   power range for USRPs is around 20 mW; beyond this power the signal
//!   starts being clipped" (§7.5). We model hard amplitude clipping at a
//!   configurable linear limit; the 12 dB power-boost step of Algorithm 1
//!   is chosen to stay just inside it.

use wivi_num::Complex64;

/// What happened to a block of samples in the converter.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuantizeOutcome {
    /// Fraction of samples whose I or Q clipped at full scale.
    pub saturation_fraction: f64,
    /// Peak input magnitude relative to full scale (>1 ⇒ saturation).
    pub peak_relative: f64,
}

impl QuantizeOutcome {
    /// `true` if any sample saturated.
    pub fn saturated(&self) -> bool {
        self.saturation_fraction > 0.0
    }
}

/// An N-bit saturating uniform quantizer with full scale ±`full_scale`
/// on each of I and Q (the USRP N210's ADC is 14-bit).
#[derive(Clone, Copy, Debug)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates an ADC.
    ///
    /// # Panics
    /// Panics unless `2 <= bits <= 32` and `full_scale > 0`.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((2..=32).contains(&bits), "unreasonable ADC width {bits}");
        assert!(full_scale > 0.0, "full scale must be positive");
        Self { bits, full_scale }
    }

    /// The N210's converter: 14 bits, unit full scale.
    pub fn usrp_n210() -> Self {
        Self::new(14, 1.0)
    }

    /// Resolution (LSB step) of one rail.
    pub fn step(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Full-scale amplitude.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Quantizes one real rail: clamp to ±full scale, round to the LSB grid.
    fn quantize_rail(&self, x: f64) -> (f64, bool) {
        let clipped = x.abs() >= self.full_scale;
        let clamped = x.clamp(-self.full_scale, self.full_scale);
        let q = (clamped / self.step()).round() * self.step();
        // Rounding can land exactly on +FS+step/2 → clamp again.
        (q.clamp(-self.full_scale, self.full_scale), clipped)
    }

    /// Quantizes a complex sample (I and Q independently).
    pub fn quantize(&self, z: Complex64) -> (Complex64, bool) {
        let (re, sat_re) = self.quantize_rail(z.re);
        let (im, sat_im) = self.quantize_rail(z.im);
        (Complex64::new(re, im), sat_re || sat_im)
    }

    /// Quantizes a buffer in place and reports saturation statistics.
    pub fn quantize_block(&self, buf: &mut [Complex64]) -> QuantizeOutcome {
        let mut saturated = 0usize;
        let mut peak: f64 = 0.0;
        for z in buf.iter_mut() {
            peak = peak.max(z.re.abs().max(z.im.abs()));
            let (q, sat) = self.quantize(*z);
            *z = q;
            saturated += usize::from(sat);
        }
        QuantizeOutcome {
            saturation_fraction: if buf.is_empty() {
                0.0
            } else {
                saturated as f64 / buf.len() as f64
            },
            peak_relative: peak / self.full_scale,
        }
    }
}

/// Hard amplitude clipping of the transmit waveform at `limit` (complex
/// magnitude). Returns the fraction of clipped samples.
pub fn clip_tx(buf: &mut [Complex64], limit: f64) -> f64 {
    assert!(limit > 0.0, "clip limit must be positive");
    let mut clipped = 0usize;
    for z in buf.iter_mut() {
        let a = z.abs();
        if a > limit {
            *z = z.scale(limit / a);
            clipped += 1;
        }
    }
    if buf.is_empty() {
        0.0
    } else {
        clipped as f64 / buf.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_signals_quantize_to_grid() {
        let adc = Adc::new(8, 1.0);
        let step = adc.step();
        let (q, sat) = adc.quantize(Complex64::new(0.4999 * step, -1.4 * step));
        assert!(!sat);
        assert!((q.re - 0.0).abs() < 1e-12 || (q.re - step).abs() < 1e-12);
        assert!((q.im + step).abs() < 1e-12);
    }

    #[test]
    fn signals_below_half_lsb_vanish() {
        // The flash-effect mechanism: reflections below the quantization
        // floor are unrepresentable.
        let adc = Adc::usrp_n210();
        let tiny = adc.step() * 0.49;
        let (q, sat) = adc.quantize(Complex64::new(tiny, -tiny));
        assert!(!sat);
        assert_eq!(q, Complex64::ZERO);
    }

    #[test]
    fn saturation_clamps_and_reports() {
        let adc = Adc::new(12, 1.0);
        let (q, sat) = adc.quantize(Complex64::new(3.0, -0.5));
        assert!(sat);
        assert_eq!(q.re, 1.0);
        assert!(q.im != -1.0 || q.im == -0.5); // im untouched by re clipping
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let adc = Adc::new(10, 1.0);
        for i in 0..1000 {
            let x = -0.999 + 0.002 * i as f64 * 0.999;
            if x.abs() >= 1.0 {
                continue;
            }
            let (q, _) = adc.quantize(Complex64::from_re(x));
            assert!(
                (q.re - x).abs() <= adc.step() / 2.0 + 1e-12,
                "error too large at {x}"
            );
        }
    }

    #[test]
    fn quantizer_is_monotone() {
        let adc = Adc::new(6, 1.0);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..500 {
            let x = -1.2 + i as f64 * 0.005;
            let (q, _) = adc.quantize(Complex64::from_re(x));
            assert!(q.re >= prev, "non-monotone at {x}");
            prev = q.re;
        }
    }

    #[test]
    fn block_outcome_statistics() {
        let adc = Adc::new(8, 1.0);
        let mut buf = vec![
            Complex64::new(0.5, 0.0),
            Complex64::new(2.0, 0.0), // saturates
            Complex64::new(0.1, 0.1),
            Complex64::new(0.0, -3.0), // saturates
        ];
        let out = adc.quantize_block(&mut buf);
        assert_eq!(out.saturation_fraction, 0.5);
        assert!(out.saturated());
        assert!((out.peak_relative - 3.0).abs() < 1e-12);
    }

    #[test]
    fn more_bits_mean_finer_steps() {
        assert!(Adc::new(14, 1.0).step() < Adc::new(8, 1.0).step());
        assert!((Adc::new(14, 1.0).step() - 2.0 / 16384.0).abs() < 1e-15);
    }

    #[test]
    fn tx_clipping_preserves_phase() {
        let mut buf = vec![
            Complex64::from_polar(5.0, 1.0),
            Complex64::from_polar(0.5, -2.0),
        ];
        let frac = clip_tx(&mut buf, 2.0);
        assert_eq!(frac, 0.5);
        assert!((buf[0].abs() - 2.0).abs() < 1e-12);
        assert!((buf[0].arg() - 1.0).abs() < 1e-12);
        assert!((buf[1].abs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_clipping_below_limit() {
        let mut buf = vec![Complex64::new(0.1, 0.2); 16];
        let orig = buf.clone();
        assert_eq!(clip_tx(&mut buf, 1.0), 0.0);
        assert_eq!(buf, orig);
    }

    #[test]
    #[should_panic(expected = "unreasonable ADC width")]
    fn rejects_absurd_bit_width() {
        let _ = Adc::new(1, 1.0);
    }
}
