//! Property-based tests for the radio front-end's converters.

use proptest::prelude::*;
use wivi_num::Complex64;
use wivi_sdr::adc::clip_tx;
use wivi_sdr::Adc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantizer_error_bounded_in_range(x in -0.999f64..0.999, bits in 4u32..16) {
        let adc = Adc::new(bits, 1.0);
        let (q, sat) = adc.quantize(Complex64::from_re(x));
        prop_assert!(!sat);
        prop_assert!((q.re - x).abs() <= adc.step() / 2.0 + 1e-12);
    }

    #[test]
    fn quantizer_saturates_out_of_range(x in 1.0f64..100.0) {
        let adc = Adc::new(12, 1.0);
        let (q, sat) = adc.quantize(Complex64::from_re(x));
        prop_assert!(sat);
        prop_assert_eq!(q.re, 1.0);
        let (qn, satn) = adc.quantize(Complex64::from_re(-x));
        prop_assert!(satn);
        prop_assert_eq!(qn.re, -1.0);
    }

    #[test]
    fn quantizer_is_monotone(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let adc = Adc::new(8, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (qlo, _) = adc.quantize(Complex64::from_re(lo));
        let (qhi, _) = adc.quantize(Complex64::from_re(hi));
        prop_assert!(qlo.re <= qhi.re);
    }

    #[test]
    fn quantizer_is_idempotent(x in -1.5f64..1.5) {
        let adc = Adc::new(10, 1.0);
        let (q1, _) = adc.quantize(Complex64::from_re(x));
        let (q2, _) = adc.quantize(q1);
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn tx_clip_bounds_amplitude_and_keeps_phase(
        re in -10.0f64..10.0, im in -10.0f64..10.0, limit in 0.1f64..5.0,
    ) {
        let z = Complex64::new(re, im);
        let mut buf = vec![z];
        clip_tx(&mut buf, limit);
        prop_assert!(buf[0].abs() <= limit + 1e-12);
        if z.abs() > 1e-9 {
            // Phase preserved.
            let dphi = (buf[0].arg() - z.arg()).abs();
            prop_assert!(dphi < 1e-9 || (dphi - std::f64::consts::TAU).abs() < 1e-9);
        }
    }
}
