//! Property-style tests for the radio front-end's converters, driven by a
//! deterministic [`Rng64`] sample sweep (no third-party property-testing
//! crates are available offline).

use wivi_num::rng::Rng64;
use wivi_num::Complex64;
use wivi_sdr::adc::clip_tx;
use wivi_sdr::Adc;

const CASES: u64 = 128;

#[test]
fn quantizer_error_bounded_in_range() {
    let mut rng = Rng64::seed_from_u64(301);
    for _ in 0..CASES {
        let x = rng.gen_range(-0.999, 0.999);
        let bits = 4 + rng.gen_below(12) as u32;
        let adc = Adc::new(bits, 1.0);
        let (q, sat) = adc.quantize(Complex64::from_re(x));
        assert!(!sat);
        assert!((q.re - x).abs() <= adc.step() / 2.0 + 1e-12);
    }
}

#[test]
fn quantizer_saturates_out_of_range() {
    let mut rng = Rng64::seed_from_u64(302);
    for _ in 0..CASES {
        let x = rng.gen_range(1.0, 100.0);
        let adc = Adc::new(12, 1.0);
        let (q, sat) = adc.quantize(Complex64::from_re(x));
        assert!(sat);
        assert_eq!(q.re, 1.0);
        let (qn, satn) = adc.quantize(Complex64::from_re(-x));
        assert!(satn);
        assert_eq!(qn.re, -1.0);
    }
}

#[test]
fn quantizer_is_monotone() {
    let mut rng = Rng64::seed_from_u64(303);
    for _ in 0..CASES {
        let a = rng.gen_range(-2.0, 2.0);
        let b = rng.gen_range(-2.0, 2.0);
        let adc = Adc::new(8, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (qlo, _) = adc.quantize(Complex64::from_re(lo));
        let (qhi, _) = adc.quantize(Complex64::from_re(hi));
        assert!(qlo.re <= qhi.re);
    }
}

#[test]
fn quantizer_is_idempotent() {
    let mut rng = Rng64::seed_from_u64(304);
    for _ in 0..CASES {
        let x = rng.gen_range(-1.5, 1.5);
        let adc = Adc::new(10, 1.0);
        let (q1, _) = adc.quantize(Complex64::from_re(x));
        let (q2, _) = adc.quantize(q1);
        assert_eq!(q1, q2);
    }
}

#[test]
fn tx_clip_bounds_amplitude_and_keeps_phase() {
    let mut rng = Rng64::seed_from_u64(305);
    for _ in 0..CASES {
        let z = Complex64::new(rng.gen_range(-10.0, 10.0), rng.gen_range(-10.0, 10.0));
        let limit = rng.gen_range(0.1, 5.0);
        let mut buf = vec![z];
        clip_tx(&mut buf, limit);
        assert!(buf[0].abs() <= limit + 1e-12);
        if z.abs() > 1e-9 {
            // Phase preserved.
            let dphi = (buf[0].arg() - z.arg()).abs();
            assert!(dphi < 1e-9 || (dphi - std::f64::consts::TAU).abs() < 1e-9);
        }
    }
}
