//! Sliding-window views over cumulative metrics: rolling p50/p99 and
//! rates that answer "what is latency *now*", next to the since-boot
//! aggregates the cumulative registry keeps.
//!
//! Design (DESIGN.md §15): a [`WindowedHistogram`] wraps an ordinary
//! [`Histogram`] and keeps a short ring of *cumulative* snapshots
//! ("ticks"), one roughly per [`tick interval`](WindowedHistogram::with_params).
//! A rolling view over the last `W` ns is the current cumulative state
//! minus the newest tick at least `W` old — a bucket-wise saturating
//! difference ([`HistogramSnapshot::diff`]). Because cumulative
//! snapshots merge element-wise, *diff commutes with merge*: the diff
//! of merged cumulatives equals the merge of per-shard diffs, so
//! rolling quantiles inherit the same order- and partition-invariance
//! the cumulative ones have. No per-sample timestamping, no decay
//! math — recording stays the untouched three-`fetch_add` hot path and
//! only the ~1 Hz tick takes a snapshot.
//!
//! Ticking is cooperative: shard workers call
//! [`maybe_tick`](WindowedHistogram::maybe_tick) once per batch round
//! (a cheap atomic compare against the last tick time when it is not
//! due). If ticks stall — an idle server records nothing anyway — the
//! rolling view degrades gracefully to "since the last activity".
//! When the process is younger than the window the baseline is empty
//! and the rolling view equals the cumulative one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use crate::spans::clock_ns;

/// Default spacing between retained cumulative snapshots.
pub const DEFAULT_TICK_NS: u64 = 1_000_000_000; // 1 s
/// Default retention horizon — enough for a 60 s window plus slack.
pub const DEFAULT_RETAIN_NS: u64 = 90_000_000_000; // 90 s
/// The two windows the serving stack exports by convention.
pub const WINDOW_10S_NS: u64 = 10_000_000_000;
/// See [`WINDOW_10S_NS`].
pub const WINDOW_60S_NS: u64 = 60_000_000_000;

struct Ticks<T> {
    /// `(tick time ns, cumulative state at that time)`, ascending.
    ring: VecDeque<(u64, T)>,
}

impl<T> Ticks<T> {
    fn new() -> Self {
        Self {
            ring: VecDeque::new(),
        }
    }

    fn push(&mut self, now_ns: u64, state: T, retain_ns: u64) {
        self.ring.push_back((now_ns, state));
        while let Some(&(t, _)) = self.ring.front() {
            // Keep one tick older than the horizon so a full-width
            // window always has a baseline.
            if self.ring.len() > 1 && now_ns.saturating_sub(t) > retain_ns {
                self.ring.pop_front();
            } else {
                break;
            }
        }
    }

    /// The newest tick at or before `now - window` (the rolling
    /// baseline), or `None` when the history is younger than the
    /// window.
    fn baseline(&self, window_ns: u64, now_ns: u64) -> Option<&T> {
        let cutoff = now_ns.saturating_sub(window_ns);
        self.ring
            .iter()
            .rev()
            .find(|(t, _)| *t <= cutoff)
            .map(|(_, s)| s)
    }
}

/// A histogram plus a ring of cumulative snapshots giving rolling
/// quantiles over arbitrary trailing windows.
pub struct WindowedHistogram {
    hist: Histogram,
    ticks: Mutex<Ticks<HistogramSnapshot>>,
    /// Last tick time, checked lock-free so the per-round
    /// [`maybe_tick`](Self::maybe_tick) is one relaxed load when not
    /// due.
    last_tick_ns: AtomicU64,
    tick_ns: u64,
    retain_ns: u64,
}

impl WindowedHistogram {
    /// Wraps `hist` with the default 1 s tick / 90 s retention.
    pub fn new(hist: Histogram) -> Self {
        Self::with_params(hist, DEFAULT_TICK_NS, DEFAULT_RETAIN_NS)
    }

    /// Wraps `hist` with explicit tick spacing and retention horizon.
    pub fn with_params(hist: Histogram, tick_ns: u64, retain_ns: u64) -> Self {
        Self {
            hist,
            ticks: Mutex::new(Ticks::new()),
            last_tick_ns: AtomicU64::new(0),
            tick_ns: tick_ns.max(1),
            retain_ns,
        }
    }

    /// The wrapped histogram (recording goes straight through it).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Takes a cumulative snapshot if one is due; cheap no-op
    /// otherwise. Call from any periodic loop (shard workers call it
    /// once per batch round).
    pub fn maybe_tick(&self) {
        self.maybe_tick_at(clock_ns());
    }

    /// [`maybe_tick`](Self::maybe_tick) with an explicit clock (tests).
    pub fn maybe_tick_at(&self, now_ns: u64) {
        // Lock-free early-out for the common not-due case; the real
        // decision repeats under the ring lock so the time update and
        // the push are atomic together — a winner cannot be preempted
        // between them and insert an older tick after a newer one (the
        // ring must stay ascending for baseline() and retention).
        // ordering: Relaxed everywhere on last_tick_ns — it is only a
        // hint out here, and under the lock the Mutex orders it.
        let last = self.last_tick_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.tick_ns && last != 0 {
            return;
        }
        let mut ticks = self.ticks.lock().expect("window ticks poisoned");
        let last = self.last_tick_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.tick_ns && last != 0 {
            return; // another ticker won while we took the lock
        }
        self.last_tick_ns.store(now_ns, Ordering::Relaxed);
        let snap = self.hist.snapshot();
        ticks.push(now_ns, snap, self.retain_ns);
    }

    /// The samples recorded in the trailing `window_ns`: current
    /// cumulative state minus the newest tick at least that old. When
    /// the history is younger than the window this equals the
    /// cumulative snapshot.
    pub fn rolling(&self, window_ns: u64) -> HistogramSnapshot {
        self.rolling_at(window_ns, clock_ns())
    }

    /// [`rolling`](Self::rolling) with an explicit clock (tests).
    pub fn rolling_at(&self, window_ns: u64, now_ns: u64) -> HistogramSnapshot {
        let current = self.hist.snapshot();
        let ticks = self.ticks.lock().expect("window ticks poisoned");
        match ticks.baseline(window_ns, now_ns) {
            Some(base) => current.diff(base),
            None => current,
        }
    }
}

/// A counter plus tick history giving trailing-window deltas and rates
/// (the `/healthz` shed rate).
pub struct WindowedCounter {
    counter: Counter,
    ticks: Mutex<Ticks<u64>>,
    last_tick_ns: AtomicU64,
    tick_ns: u64,
    retain_ns: u64,
}

impl WindowedCounter {
    /// Wraps `counter` with the default 1 s tick / 90 s retention.
    pub fn new(counter: Counter) -> Self {
        Self::with_params(counter, DEFAULT_TICK_NS, DEFAULT_RETAIN_NS)
    }

    /// Wraps `counter` with explicit tick spacing and retention.
    pub fn with_params(counter: Counter, tick_ns: u64, retain_ns: u64) -> Self {
        Self {
            counter,
            ticks: Mutex::new(Ticks::new()),
            last_tick_ns: AtomicU64::new(0),
            tick_ns: tick_ns.max(1),
            retain_ns,
        }
    }

    /// The wrapped counter.
    pub fn counter(&self) -> &Counter {
        &self.counter
    }

    /// Takes a tick if one is due (see
    /// [`WindowedHistogram::maybe_tick`]).
    pub fn maybe_tick(&self) {
        self.maybe_tick_at(clock_ns());
    }

    /// [`maybe_tick`](Self::maybe_tick) with an explicit clock (tests).
    pub fn maybe_tick_at(&self, now_ns: u64) {
        // See WindowedHistogram::maybe_tick_at: due-check and push are
        // one critical section so the ring stays ascending.
        // ordering: Relaxed on last_tick_ns — advisory outside the
        // lock, Mutex-ordered inside it.
        let last = self.last_tick_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.tick_ns && last != 0 {
            return;
        }
        let mut ticks = self.ticks.lock().expect("window ticks poisoned");
        let last = self.last_tick_ns.load(Ordering::Relaxed);
        if now_ns.saturating_sub(last) < self.tick_ns && last != 0 {
            return;
        }
        self.last_tick_ns.store(now_ns, Ordering::Relaxed);
        let v = self.counter.value();
        ticks.push(now_ns, v, self.retain_ns);
    }

    /// Increments in the trailing `window_ns`.
    pub fn rolling(&self, window_ns: u64) -> u64 {
        self.rolling_at(window_ns, clock_ns())
    }

    /// [`rolling`](Self::rolling) with an explicit clock (tests).
    pub fn rolling_at(&self, window_ns: u64, now_ns: u64) -> u64 {
        let current = self.counter.value();
        let ticks = self.ticks.lock().expect("window ticks poisoned");
        match ticks.baseline(window_ns, now_ns) {
            Some(&base) => current.saturating_sub(base),
            None => current,
        }
    }

    /// Increments per second over the trailing `window_ns`.
    pub fn rate_per_sec(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.rolling(window_ns) as f64 * 1e9 / window_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    const S: u64 = 1_000_000_000;

    fn windowed(r: &Registry, name: &str) -> WindowedHistogram {
        WindowedHistogram::with_params(r.histogram(name), S, 90 * S)
    }

    #[test]
    fn rolling_excludes_samples_older_than_the_window() {
        let r = Registry::new();
        let w = windowed(&r, "lat");
        // t=1s: a burst of slow samples, then tick.
        for _ in 0..100 {
            w.histogram().record(10_000);
        }
        w.maybe_tick_at(S);
        // t=5..=14s: steady fast samples, ticking each second.
        for t in 5..=14u64 {
            for _ in 0..10 {
                w.histogram().record(100);
            }
            w.maybe_tick_at(t * S);
        }
        // A 10 s window at t=15s spans (5s, 15s]: only the fast phase,
        // and of it only the 9 batches ticked *after* the 5 s cutoff.
        let roll = w.rolling_at(10 * S, 15 * S);
        assert_eq!(roll.count, 90, "slow burst must age out");
        assert!(roll.quantile(99.0) < 150.0, "p99 {}", roll.quantile(99.0));
        // The cumulative view still sees everything.
        let cum = w.histogram().snapshot();
        assert_eq!(cum.count, 200);
        assert!(cum.quantile(99.0) > 5_000.0);
        // A 60 s window sees both phases.
        let wide = w.rolling_at(60 * S, 15 * S);
        assert_eq!(wide.count, 200);
    }

    #[test]
    fn young_history_falls_back_to_cumulative() {
        let r = Registry::new();
        let w = windowed(&r, "lat");
        w.histogram().record(42);
        let roll = w.rolling_at(10 * S, S / 2);
        assert_eq!(roll.count, 1, "no baseline yet ⇒ cumulative");
    }

    #[test]
    fn rolling_diff_commutes_with_merge_across_shards() {
        // The invariance the serving export relies on: merging per-shard
        // rolling views equals the rolling view of the merged stream.
        let r = Registry::new();
        let shards: Vec<WindowedHistogram> =
            (0..3).map(|i| windowed(&r, &format!("s{i}"))).collect();
        let samples: Vec<u64> = (0..300u64).map(|i| (i * 2654435761) % 50_000).collect();
        // Phase 1 (before the window), spread round-robin; tick at 1s.
        for (i, &v) in samples.iter().take(150).enumerate() {
            shards[i % 3].histogram().record(v);
        }
        for s in &shards {
            s.maybe_tick_at(S);
        }
        // Phase 2 (inside the window).
        for (i, &v) in samples.iter().skip(150).enumerate() {
            shards[i % 3].histogram().record(v);
        }
        // Merge of per-shard rolling views at t=8s, window 5s.
        let mut merged = HistogramSnapshot::empty();
        for s in &shards {
            merged.merge(&s.rolling_at(5 * S, 8 * S));
        }
        // Reference: one histogram fed only phase 2.
        let reference = {
            let h = r.histogram("ref");
            for &v in samples.iter().skip(150) {
                h.record(v);
            }
            h.snapshot()
        };
        assert_eq!(merged, reference, "diff must commute with merge");
    }

    #[test]
    fn ticks_retain_a_baseline_beyond_the_horizon() {
        let r = Registry::new();
        let w = windowed(&r, "lat");
        for t in 1..=200u64 {
            w.histogram().record(t);
            w.maybe_tick_at(t * S);
        }
        // 200 ticks at 1 s spacing with a 90 s horizon: the ring stays
        // bounded but always keeps one tick ≥ the horizon old.
        let roll = w.rolling_at(60 * S, 200 * S);
        assert_eq!(roll.count, 60, "rolling 60 s must see the last 60 samples");
    }

    #[test]
    fn windowed_counter_rates() {
        let r = Registry::new();
        let wc = WindowedCounter::with_params(r.counter("shed"), S, 90 * S);
        wc.counter().add(50);
        wc.maybe_tick_at(S);
        wc.counter().add(7);
        assert_eq!(wc.rolling_at(10 * S, 11 * S), 7);
        assert_eq!(wc.rolling_at(60 * S, 11 * S), 57, "young history ⇒ total");
        assert_eq!(wc.counter().value(), 57);
    }

    #[test]
    fn concurrent_tickers_keep_the_ring_ascending() {
        // Threads racing maybe_tick_at with interleaved clocks: the
        // ring must come out strictly ascending (baseline()'s reverse
        // scan and retention pruning both rely on it), with no
        // duplicate tick times.
        let r = Registry::new();
        let w = WindowedHistogram::with_params(r.histogram("lat"), S, 1000 * S);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let w = &w;
                scope.spawn(move || {
                    for step in 0..200u64 {
                        w.histogram().record(1);
                        // Every thread walks the same clock but hits
                        // each instant in its own order.
                        w.maybe_tick_at((step + t * 7) % 200 * S + S);
                    }
                });
            }
        });
        let ticks = w.ticks.lock().unwrap();
        let times: Vec<u64> = ticks.ring.iter().map(|(t, _)| *t).collect();
        assert!(!times.is_empty());
        assert!(
            times.windows(2).all(|p| p[0] < p[1]),
            "tick ring out of order: {times:?}"
        );
    }

    #[test]
    fn maybe_tick_is_idempotent_within_the_interval() {
        let r = Registry::new();
        let w = windowed(&r, "lat");
        w.histogram().record(1);
        w.maybe_tick_at(S);
        w.maybe_tick_at(S + 1); // not due: must not add a tick
        w.histogram().record(2);
        w.maybe_tick_at(2 * S);
        let ticks = w.ticks.lock().unwrap();
        assert_eq!(ticks.ring.len(), 2);
        assert_eq!(ticks.ring[0].1.count, 1);
        assert_eq!(ticks.ring[1].1.count, 2);
    }
}
