//! The span flight recorder: fixed-capacity per-thread ring buffers of
//! structured span records, drained as one time-ordered stream via
//! [`wivi_num::merge_streams`].
//!
//! Semantics (DESIGN.md §13):
//!
//! * [`span`]/[`span_with`] return a guard; dropping it records
//!   `{start_ns, dur_ns, name, arg, thread}` into the calling thread's
//!   ring. When the `WIVI_OBS` switch is off the guard is empty and the
//!   whole path is one static load and a branch.
//! * Each ring holds [`ring_capacity`] records (`WIVI_OBS_RING`
//!   overrides, default 4096) and **overwrites oldest** when full —
//!   flight-recorder semantics: after an incident the last N spans per
//!   thread are always there, and a hot loop can never grow memory
//!   unboundedly. Overwritten records are counted, never silently lost
//!   ([`overwritten`]).
//! * Records append at span *end*, so a thread's ring is ascending in
//!   completion time (`start_ns + dur_ns`) even when spans nest.
//!   [`drain`] therefore merges rings keyed by completion time with the
//!   thread slot as tie-break tag — the same deterministic k-way merge
//!   the serving engine uses for session events.
//!
//! Timestamps are nanoseconds since the first use of the recorder in
//! this process ([`clock_ns`]), from a single shared monotonic origin,
//! so cross-thread span times are directly comparable.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use wivi_num::merge::{merge_streams, TimedStream};
use wivi_num::probe::{enabled, thread_slot};

/// Default per-thread ring capacity, in records.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One completed span (or instantaneous event, `dur_ns == 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Start time, ns since the process clock origin.
    pub start_ns: u64,
    /// Duration in ns (0 for events).
    pub dur_ns: u64,
    /// Static span name, e.g. `"session.step"`.
    pub name: &'static str,
    /// Caller argument (session id, window index, …).
    pub arg: u64,
    /// Request trace id ([`crate::trace::UNTRACED`] = 0 when the span
    /// was opened outside any trace context).
    pub trace: u64,
    /// Recording thread's [`thread_slot`].
    pub thread: u32,
}

impl SpanRecord {
    /// Completion time, ns — the key rings are ordered by.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// ns since the recorder's process-wide monotonic origin.
#[inline]
pub fn clock_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    // u64 math throughout: `as_nanos()` would drag u128 multiplies into
    // the span hot path, and u64 holds ~584 years of process uptime.
    let d = origin.elapsed();
    d.as_secs()
        .saturating_mul(1_000_000_000)
        .saturating_add(u64::from(d.subsec_nanos()))
}

/// The per-thread ring capacity in effect (`WIVI_OBS_RING`, read once).
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WIVI_OBS_RING")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

struct RingInner {
    /// Stored records; grows to capacity then stays fixed.
    buf: Vec<SpanRecord>,
    /// Next write index once `buf` is at capacity.
    next: usize,
}

struct Ring {
    thread: u32,
    /// [`ring_capacity`], cached at construction — the push path must
    /// not pay a `OnceLock` load per record.
    cap: usize,
    /// Spinlock over `inner`. Uncontended in steady state — the owning
    /// thread takes it per record, [`drain`] briefly per collection —
    /// and a raw CAS + release store costs about half an uncontended
    /// futex mutex round-trip, which matters inside the 100 ns span
    /// budget. Contention is rare and bounded (a drain copying a full
    /// ring holds it for ~µs), so spinning never degenerates.
    locked: AtomicBool,
    inner: UnsafeCell<RingInner>,
    overwritten: AtomicU64,
}

// SAFETY: `inner` is only reached through `lock()`, whose guard provides
// mutual exclusion (acquire CAS in, release store out).
unsafe impl Sync for Ring {}

struct RingGuard<'a>(&'a Ring);

impl std::ops::Deref for RingGuard<'_> {
    type Target = RingInner;
    fn deref(&self) -> &RingInner {
        // SAFETY: the guard holds the spinlock.
        unsafe { &*self.0.inner.get() }
    }
}

impl std::ops::DerefMut for RingGuard<'_> {
    fn deref_mut(&mut self) -> &mut RingInner {
        // SAFETY: the guard holds the spinlock.
        unsafe { &mut *self.0.inner.get() }
    }
}

impl Drop for RingGuard<'_> {
    fn drop(&mut self) {
        // ordering: Release — publishes every write made under the
        // guard to the next thread whose Acquire CAS takes the lock.
        self.0.locked.store(false, Ordering::Release);
    }
}

impl Ring {
    #[inline]
    fn lock(&self) -> RingGuard<'_> {
        // ordering: Acquire on success pairs with the guard's Release
        // unlock, making the previous holder's ring writes visible;
        // Relaxed on failure is fine — a failed CAS publishes nothing
        // and the loop just retries.
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        RingGuard(self)
    }

    fn push(&self, rec: SpanRecord) {
        let mut r = self.lock();
        if r.buf.len() < self.cap {
            r.buf.push(rec);
        } else {
            let next = r.next;
            r.buf[next] = rec;
            r.next = if next + 1 == self.cap { 0 } else { next + 1 };
            // ordering: Relaxed — a plain drop tally; the ring contents
            // it describes are already protected by the spinlock.
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies out in insertion (completion-time) order and clears.
    fn take_ordered(&self) -> Vec<SpanRecord> {
        let mut r = self.lock();
        let out = Self::ordered_copy(&r);
        r.buf.clear();
        r.next = 0;
        out
    }

    /// Copies out in order *without* clearing — the incident capture
    /// path, which must not steal spans from a later [`drain`].
    fn copy_ordered(&self) -> Vec<SpanRecord> {
        let r = self.lock();
        Self::ordered_copy(&r)
    }

    fn ordered_copy(r: &RingInner) -> Vec<SpanRecord> {
        // `next` only advances once the buffer is at capacity, so it
        // being nonzero is exactly "the ring wrapped".
        let mut out = Vec::with_capacity(r.buf.len());
        if r.next > 0 {
            out.extend_from_slice(&r.buf[r.next..]);
            out.extend_from_slice(&r.buf[..r.next]);
        } else {
            out.extend_from_slice(&r.buf);
        }
        out
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: Arc<Ring> = {
        let ring = Arc::new(Ring {
            thread: thread_slot() as u32,
            cap: ring_capacity(),
            locked: AtomicBool::new(false),
            inner: UnsafeCell::new(RingInner { buf: Vec::new(), next: 0 }),
            overwritten: AtomicU64::new(0),
        });
        rings().lock().expect("span recorder poisoned").push(Arc::clone(&ring));
        ring
    };
}

/// An open span; records itself into the flight recorder on drop.
/// Empty (a no-op) when observability is off at open time.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    open: Option<(&'static str, u64, u64, u64)>, // (name, arg, trace, start_ns)
}

impl Span {
    /// Closes the span now (equivalent to dropping it).
    pub fn done(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, arg, trace, start_ns)) = self.open.take() {
            let end = clock_ns();
            // One thread-local access does both the ring lookup and the
            // thread tag — the ring already knows whose it is.
            MY_RING.with(|r| {
                r.push(SpanRecord {
                    start_ns,
                    dur_ns: end.saturating_sub(start_ns),
                    name,
                    arg,
                    trace,
                    thread: r.thread,
                });
            });
        }
    }
}

/// Opens a span named `name` (no argument).
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, 0)
}

/// Opens a span named `name` carrying `arg` (session id, window index).
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> Span {
    span_traced(name, arg, 0)
}

/// Opens a span carrying both `arg` and a request `trace` id — the
/// recording end of [`crate::trace::TraceContext`]. Pass trace `0`
/// (untraced) to get exactly [`span_with`].
#[inline]
pub fn span_traced(name: &'static str, arg: u64, trace: u64) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    Span {
        open: Some((name, arg, trace, clock_ns())),
    }
}

/// Records an instantaneous event (`dur_ns == 0`).
#[inline]
pub fn event(name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    let now = clock_ns();
    MY_RING.with(|r| {
        r.push(SpanRecord {
            start_ns: now,
            dur_ns: 0,
            name,
            arg,
            trace: 0,
            thread: r.thread,
        });
    });
}

/// Drains every thread's ring into one stream ordered by
/// `(completion time, thread slot)`, clearing the rings. Uses the same
/// deterministic k-way merge as the serving event stream.
pub fn drain() -> Vec<SpanRecord> {
    let streams: Vec<TimedStream<SpanRecord>> = rings()
        .lock()
        .expect("span recorder poisoned")
        .iter()
        .map(|r| TimedStream {
            tag: r.thread as u64,
            items: r.take_ordered(),
        })
        .collect();
    merge_streams(&streams, |rec| rec.end_ns() as f64)
        .into_iter()
        .map(|(_, rec)| rec)
        .collect()
}

/// A copy of every ring's current contents, merged into one
/// time-ordered stream *without clearing anything* — the read used by
/// `/tracez` and incident capture, which must not steal spans from a
/// later [`drain`].
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let streams: Vec<TimedStream<SpanRecord>> = rings()
        .lock()
        .expect("span recorder poisoned")
        .iter()
        .map(|r| TimedStream {
            tag: r.thread as u64,
            items: r.copy_ordered(),
        })
        .collect();
    merge_streams(&streams, |rec| rec.end_ns() as f64)
        .into_iter()
        .map(|(_, rec)| rec)
        .collect()
}

// ---------------------------------------------------------------------
// Incident buffer: the flight-recorder dump an SLO breach triggers.

/// Default bound on retained incidents (`WIVI_OBS_INCIDENTS`
/// overrides).
pub const DEFAULT_INCIDENT_CAPACITY: usize = 32;

/// Spans kept per incident — the *newest* records across all rings at
/// capture time; older context is cut so a burst of breaches cannot
/// hold megabytes of span copies alive.
pub const INCIDENT_SPAN_CAP: usize = 512;

/// One captured flight-recorder dump: the spans that were in the rings
/// when an SLO breach (or any other trigger) fired.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Monotone capture sequence number (process-wide).
    pub seq: u64,
    /// Static trigger name, e.g. `"slo.hop_budget"`.
    pub reason: &'static str,
    /// The offending entity (session id for SLO breaches).
    pub arg: u64,
    /// Trace id of the offending request (0 when untraced).
    pub trace: u64,
    /// The measured value that crossed the budget, in ns.
    pub worst_ns: u64,
    /// Capture time, ns on the [`clock_ns`] scale.
    pub at_ns: u64,
    /// The newest ≤ [`INCIDENT_SPAN_CAP`] spans at capture time,
    /// completion-time ordered.
    pub spans: Vec<SpanRecord>,
}

fn incident_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WIVI_OBS_INCIDENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_INCIDENT_CAPACITY)
    })
}

fn incidents_store() -> &'static Mutex<std::collections::VecDeque<Incident>> {
    static STORE: OnceLock<Mutex<std::collections::VecDeque<Incident>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(std::collections::VecDeque::new()))
}

/// Captures a flight-recorder dump: copies the newest spans from every
/// ring into the bounded incident buffer (drop-oldest when full).
/// A no-op with the observability switch off. Returns the capture's
/// sequence number, or `None` when disabled.
pub fn capture_incident(reason: &'static str, arg: u64, trace: u64, worst_ns: u64) -> Option<u64> {
    if !enabled() {
        return None;
    }
    static SEQ: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — fetch_add alone guarantees unique, monotone
    // sequence numbers; the incident payload travels under the
    // incident-buffer mutex, not via this atomic.
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut spans = snapshot_spans();
    if spans.len() > INCIDENT_SPAN_CAP {
        spans.drain(..spans.len() - INCIDENT_SPAN_CAP);
    }
    let incident = Incident {
        seq,
        reason,
        arg,
        trace,
        worst_ns,
        at_ns: clock_ns(),
        spans,
    };
    let mut store = incidents_store().lock().expect("incident buffer poisoned");
    if store.len() >= incident_capacity() {
        store.pop_front();
    }
    store.push_back(incident);
    Some(seq)
}

/// The retained incidents, oldest first (a copy; the buffer keeps
/// them).
pub fn incidents() -> Vec<Incident> {
    incidents_store()
        .lock()
        .expect("incident buffer poisoned")
        .iter()
        .cloned()
        .collect()
}

/// Empties the incident buffer (tests and explicit operator reset).
pub fn clear_incidents() {
    incidents_store()
        .lock()
        .expect("incident buffer poisoned")
        .clear();
}

/// Total records overwritten (dropped to make room) across all rings
/// since process start.
pub fn overwritten() -> u64 {
    rings()
        .lock()
        .expect("span recorder poisoned")
        .iter()
        // ordering: Relaxed — a drop tally read for reporting only.
        .map(|r| r.overwritten.load(Ordering::Relaxed))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wivi_num::probe::set_enabled;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        set_enabled(Some(false));
        drop(span("quiet"));
        event("quiet.event", 1);
        set_enabled(None);
        assert!(
            !drain().iter().any(|r| r.name.starts_with("quiet")),
            "disabled span must not record"
        );
    }

    #[test]
    fn spans_record_and_drain_ordered_across_threads() {
        let _g = crate::test_guard();
        set_enabled(Some(true));
        let _ = drain(); // start clean
        {
            let s = span_with("outer", 7);
            drop(span("inner"));
            std::thread::sleep(std::time::Duration::from_millis(1));
            s.done();
        }
        std::thread::scope(|sc| {
            for t in 0..3 {
                sc.spawn(move || {
                    for i in 0..5 {
                        drop(span_with("worker", t * 10 + i));
                    }
                });
            }
        });
        event("marker", 42);
        set_enabled(None);

        let recs = drain();
        assert!(recs.iter().any(|r| r.name == "outer" && r.arg == 7));
        assert!(recs.iter().any(|r| r.name == "inner"));
        assert_eq!(recs.iter().filter(|r| r.name == "worker").count(), 15);
        let marker = recs.iter().find(|r| r.name == "marker").unwrap();
        assert_eq!((marker.arg, marker.dur_ns), (42, 0));
        // Globally ordered by completion time.
        for w in recs.windows(2) {
            assert!(w[0].end_ns() <= w[1].end_ns(), "drain out of order");
        }
        // Nested: inner completes before outer, outer started first.
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert!(outer.dur_ns >= 1_000_000, "outer slept ≥ 1 ms");

        // Drain cleared everything.
        assert!(drain().is_empty());
    }

    #[test]
    fn traced_spans_carry_ids_and_snapshot_does_not_steal() {
        let _g = crate::test_guard();
        set_enabled(Some(true));
        let _ = drain();
        drop(span_traced("traced.step", 5, 0xfeed));
        drop(span_with("untraced", 1));
        let peek = snapshot_spans();
        assert!(peek
            .iter()
            .any(|r| r.name == "traced.step" && r.trace == 0xfeed));
        assert!(peek.iter().any(|r| r.name == "untraced" && r.trace == 0));
        // Peeking is non-destructive: drain still sees everything.
        let recs = drain();
        set_enabled(None);
        assert!(recs
            .iter()
            .any(|r| r.name == "traced.step" && r.trace == 0xfeed));
        assert!(recs.iter().any(|r| r.name == "untraced"));
    }

    #[test]
    fn incident_capture_is_bounded_and_preserves_rings() {
        let _g = crate::test_guard();
        set_enabled(Some(true));
        clear_incidents();
        let _ = drain();
        drop(span_traced("slow.step", 9, 0xabc));
        let seq = capture_incident("slo.hop_budget", 9, 0xabc, 500_000_000)
            .expect("enabled capture returns a seq");
        let inc = incidents();
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].seq, seq);
        assert_eq!(
            (inc[0].reason, inc[0].arg, inc[0].trace, inc[0].worst_ns),
            ("slo.hop_budget", 9, 0xabc, 500_000_000)
        );
        assert!(inc[0].spans.iter().any(|r| r.name == "slow.step"));
        // Capture did not consume the rings.
        assert!(drain().iter().any(|r| r.name == "slow.step"));

        // The buffer is bounded drop-oldest.
        for i in 0..2 * DEFAULT_INCIDENT_CAPACITY as u64 {
            capture_incident("flood", i, 0, 0);
        }
        let inc = incidents();
        assert!(inc.len() <= DEFAULT_INCIDENT_CAPACITY);
        assert_eq!(
            inc.last().unwrap().arg,
            2 * DEFAULT_INCIDENT_CAPACITY as u64 - 1
        );
        for w in inc.windows(2) {
            assert!(w[0].seq < w[1].seq, "incidents stay ordered");
        }
        clear_incidents();
        // Force-off (None would re-arm the env read, which may say on
        // when the suite itself runs under WIVI_OBS=1).
        set_enabled(Some(false));
        assert!(
            capture_incident("off", 0, 0, 0).is_none(),
            "disabled ⇒ no capture"
        );
        assert!(incidents().is_empty());
        set_enabled(None);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = crate::test_guard();
        set_enabled(Some(true));
        let _ = drain();
        let before = overwritten();
        let cap = ring_capacity();
        // Overflow this thread's ring by half its capacity again.
        for i in 0..(cap + cap / 2) as u64 {
            event("flood", i);
        }
        set_enabled(None);
        let recs: Vec<SpanRecord> = drain()
            .into_iter()
            .filter(|r| r.name == "flood" && r.thread == thread_slot() as u32)
            .collect();
        assert_eq!(recs.len(), cap, "ring keeps exactly its capacity");
        // The survivors are the *newest* cap records, still in order.
        assert_eq!(recs.first().unwrap().arg, (cap / 2) as u64);
        assert_eq!(recs.last().unwrap().arg, (cap + cap / 2 - 1) as u64);
        assert_eq!(overwritten() - before, (cap / 2) as u64);
    }
}
